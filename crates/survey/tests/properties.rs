//! Property-based tests of the survey systems (via the in-tree
//! `propcheck` engine).

use dui_netsim::packet::{Addr, FlowKey};
use dui_stats::{prop_assert, prop_assert_eq, prop_check};
use dui_survey::flowradar::FlowRadar;
use dui_survey::sp_pifo::SpPifo;

prop_check! {
    fn sp_pifo_conserves_packets(g) {
        let ranks = g.vec(0..300, |g| g.u64(0..10_000));
        let mut sp = SpPifo::new(8, 16);
        for &r in &ranks {
            sp.enqueue(r);
        }
        let mut dequeued = 0u64;
        while sp.dequeue().is_some() {
            dequeued += 1;
        }
        prop_assert_eq!(sp.admitted, dequeued);
        prop_assert_eq!(sp.admitted + sp.dropped, ranks.len() as u64);
        prop_assert!(sp.is_empty());
    }

    fn sp_pifo_dequeues_respect_queue_order(g) {
        // Whatever the admission pattern, strict priority means a dequeue
        // never serves a lower-priority queue while a higher one is
        // non-empty — observable as: draining yields each queue's FIFO
        // subsequences in queue order. Weak check: fully drained output
        // has the same multiset as admitted input.
        let ranks = g.vec(1..100, |g| g.u64(0..1_000));
        let mut sp = SpPifo::new(4, 1024);
        for &r in &ranks {
            sp.enqueue(r);
        }
        let mut out = Vec::new();
        while let Some(r) = sp.dequeue() {
            out.push(r);
        }
        let mut a = out.clone();
        let mut b = ranks.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "no packet invented or lost below capacity");
    }

    fn sp_pifo_min_rank_is_true_min(g) {
        let ranks = g.vec(1..50, |g| g.u64(0..500));
        let mut sp = SpPifo::new(4, 1024);
        for &r in &ranks {
            sp.enqueue(r);
        }
        let min = sp.min_rank().unwrap();
        prop_assert_eq!(min, *ranks.iter().min().unwrap());
    }

    fn flowradar_decode_never_exceeds_inserted(g) {
        let n_flows = g.usize(1..300);
        let pkts_per_flow = g.u32(1..5);
        let mut fr = FlowRadar::new(2048, 256, 3, 7);
        for i in 0..n_flows {
            let k = FlowKey::tcp(
                Addr::new(198, 18, (i >> 8) as u8, i as u8),
                (1024 + i % 60_000) as u16,
                Addr::new(10, 0, 0, 1),
                443,
            );
            for _ in 0..pkts_per_flow {
                fr.on_packet(&k);
            }
        }
        let r = fr.decode();
        prop_assert!(r.decoded.len() as u64 <= fr.flows_inserted);
        prop_assert_eq!(
            r.decoded.len() as u64 + r.undecoded_flows,
            fr.flows_inserted
        );
        // Decoded digests are distinct.
        let distinct: std::collections::HashSet<u64> =
            r.decoded.iter().map(|&(d, _)| d).collect();
        prop_assert_eq!(distinct.len(), r.decoded.len());
    }

    fn flowradar_bloom_fill_monotone(g) {
        let n_a = g.usize(1..200);
        let extra = g.usize(0..200);
        let insert = |n: usize| {
            let mut fr = FlowRadar::new(1024, 256, 3, 7);
            for i in 0..n {
                let k = FlowKey::tcp(
                    Addr::new(198, 18, (i >> 8) as u8, i as u8),
                    (1024 + i % 60_000) as u16,
                    Addr::new(10, 0, 0, 1),
                    443,
                );
                fr.on_packet(&k);
            }
            fr.bloom_fill()
        };
        prop_assert!(insert(n_a + extra) >= insert(n_a) - 1e-12);
    }
}
