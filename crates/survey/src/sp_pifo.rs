//! SP-PIFO (Alcoz et al., NSDI'20): approximating a PIFO (push-in
//! first-out, i.e. perfect rank ordering) with the strict-priority FIFO
//! queues available in commodity switches.
//!
//! The mechanism: each of the `k` queues keeps a *bound* — the rank of
//! the last packet it admitted. An arriving packet scans queues from
//! lowest priority (large ranks) to highest (small ranks) and is pushed
//! into the first queue whose bound is ≤ its rank (*push-up*: the bound
//! rises to the packet's rank). If even the highest-priority queue's
//! bound exceeds the rank, an **inversion** has happened — a smaller rank
//! will be dequeued after larger ones already admitted — and SP-PIFO
//! reacts by *push-down*: all bounds decrease by the overshoot.
//!
//! The design assumption the HotNets'19 paper calls out (§3.2): "the
//! proposed heuristic is based on the assumption that given a rank
//! distribution, the order in which packet ranks arrive is random. An
//! attacker could send packet sequences of particular ranks, resulting in
//! packets being delayed or even dropped." [`adversarial_sequence`]
//! generates exactly such a sequence: a saw-tooth that repeatedly drives
//! every bound up with ascending ranks, then slams a high-priority packet
//! into the inverted structure.

use std::collections::VecDeque;

/// An SP-PIFO scheduler over `k` strict-priority queues.
///
/// ```
/// use dui_survey::sp_pifo::SpPifo;
///
/// let mut sp = SpPifo::new(4, 16);
/// sp.enqueue(300);
/// sp.enqueue(10);
/// // Adaptation has separated the ranks: the small rank leaves first.
/// assert_eq!(sp.dequeue(), Some(10));
/// assert_eq!(sp.dequeue(), Some(300));
/// ```
#[derive(Debug, Clone)]
pub struct SpPifo {
    /// queues[0] has the highest priority (dequeued first, lowest ranks).
    queues: Vec<VecDeque<u64>>,
    /// Admission bound per queue.
    bounds: Vec<i64>,
    /// Per-queue capacity (packets); full queues tail-drop.
    capacity: usize,
    /// Packets dropped because their target queue was full.
    pub dropped: u64,
    /// Push-down events (inversions detected at admission).
    pub push_downs: u64,
    /// Total packets admitted.
    pub admitted: u64,
}

impl SpPifo {
    /// `k` queues of `capacity` packets each.
    pub fn new(k: usize, capacity: usize) -> Self {
        assert!(k >= 1, "need at least one queue");
        assert!(capacity >= 1, "queues must hold at least one packet");
        SpPifo {
            queues: vec![VecDeque::new(); k],
            bounds: vec![0; k],
            capacity,
            dropped: 0,
            push_downs: 0,
            admitted: 0,
        }
    }

    /// Number of queues.
    pub fn k(&self) -> usize {
        self.queues.len()
    }

    /// Current bounds (for inspection).
    pub fn bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// Packets currently enqueued.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Is the scheduler empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue a packet with `rank` (smaller = higher priority).
    pub fn enqueue(&mut self, rank: u64) {
        let r = rank as i64;
        // Scan lowest priority (last queue) -> highest (first queue).
        for i in (1..self.queues.len()).rev() {
            if r >= self.bounds[i] {
                self.admit(i, rank, r);
                return;
            }
        }
        // Highest-priority queue: admit; if the bound is violated this is
        // an inversion -> push-down all bounds by the overshoot.
        let overshoot = self.bounds[0] - r;
        if overshoot > 0 {
            self.push_downs += 1;
            for b in &mut self.bounds {
                *b -= overshoot;
            }
            // Admit without raising the (just lowered) bound above r.
            self.admit_no_bound_update(0, rank);
        } else {
            self.admit(0, rank, r);
        }
    }

    fn admit(&mut self, i: usize, rank: u64, r: i64) {
        if self.queues[i].len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.bounds[i] = r;
        self.queues[i].push_back(rank);
        self.admitted += 1;
    }

    fn admit_no_bound_update(&mut self, i: usize, rank: u64) {
        if self.queues[i].len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.queues[i].push_back(rank);
        self.admitted += 1;
    }

    /// Dequeue the next packet (strict priority across queues, FIFO
    /// within).
    pub fn dequeue(&mut self) -> Option<u64> {
        for q in &mut self.queues {
            if let Some(r) = q.pop_front() {
                return Some(r);
            }
        }
        None
    }

    /// Smallest rank currently enqueued (what a perfect PIFO would serve).
    pub fn min_rank(&self) -> Option<u64> {
        self.queues.iter().flat_map(|q| q.iter().copied()).min()
    }
}

/// Drive a rank sequence through an SP-PIFO in bursts of `batch` arrivals
/// followed by `batch` services (so a standing queue exists — with one
/// packet at a time, ordering is trivially perfect) and count *dequeue
/// inversions*: services where the dequeued rank exceeds the smallest
/// rank waiting (a perfect PIFO would have served someone else).
/// Returns `(inversions, services, drops)`.
pub fn measure_inversions(
    ranks: &[u64],
    k: usize,
    capacity: usize,
    batch: usize,
) -> (u64, u64, u64) {
    assert!(batch >= 1);
    let mut sp = SpPifo::new(k, capacity);
    let mut inversions = 0;
    let mut services = 0;
    for chunk in ranks.chunks(batch) {
        for &r in chunk {
            sp.enqueue(r);
        }
        for _ in 0..chunk.len() {
            let min = sp.min_rank();
            let Some(served) = sp.dequeue() else { break };
            services += 1;
            if let Some(min) = min {
                if served > min {
                    inversions += 1;
                }
            }
        }
    }
    (inversions, services, sp.dropped)
}

/// The attack sequence of §3.2: repeated strictly *descending* rank runs
/// — the worst case for SP-PIFO's push-up/push-down adaptation. Each
/// arrival undercuts every queue bound, forcing a push-down and landing
/// behind already-admitted larger ranks in the same FIFO, so almost every
/// service is an inversion. A random arrival order with the same rank
/// *distribution* behaves far better — exactly the randomness assumption
/// the attacker violates.
pub fn adversarial_sequence(teeth: usize, run: usize, _burst: usize, max_rank: u64) -> Vec<u64> {
    assert!(run >= 1);
    let mut out = Vec::with_capacity(teeth * run);
    for _ in 0..teeth {
        for i in 0..run {
            let frac = 1.0 - i as f64 / run as f64;
            out.push((frac * max_rank as f64) as u64);
        }
    }
    out
}

/// A rank sequence with the same *distribution* as
/// [`adversarial_sequence`] but randomly shuffled — the benign baseline
/// SP-PIFO was designed for.
pub fn shuffled_sequence(
    teeth: usize,
    ascent: usize,
    burst: usize,
    max_rank: u64,
    rng: &mut dui_stats::Rng,
) -> Vec<u64> {
    let mut seq = adversarial_sequence(teeth, ascent, burst, max_rank);
    rng.shuffle(&mut seq);
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_stats::Rng;

    #[test]
    fn strict_priority_ordering_within_bounds() {
        let mut sp = SpPifo::new(4, 16);
        sp.enqueue(10);
        sp.enqueue(200);
        sp.enqueue(3000);
        // Ranks landed in different queues; dequeue order follows rank.
        let a = sp.dequeue().unwrap();
        let b = sp.dequeue().unwrap();
        let c = sp.dequeue().unwrap();
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }

    #[test]
    fn ascending_ranks_never_invert() {
        let ranks: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let (inv, served, dropped) = measure_inversions(&ranks, 8, 64, 16);
        assert_eq!(inv, 0, "monotone arrivals are PIFO-perfect");
        assert!(served > 0);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn push_down_counted() {
        let mut sp = SpPifo::new(2, 16);
        sp.enqueue(100); // raises a bound
        sp.enqueue(50); // below the low queue's bound? depends; force it:
        sp.enqueue(1000);
        sp.enqueue(0); // certainly below every raised bound -> push-down
        assert!(sp.push_downs >= 1);
    }

    #[test]
    fn full_queue_drops() {
        let mut sp = SpPifo::new(1, 2);
        sp.enqueue(1);
        sp.enqueue(2);
        sp.enqueue(3);
        assert_eq!(sp.dropped, 1);
        assert_eq!(sp.len(), 2);
    }

    #[test]
    fn adversarial_sequence_inverts_far_more_than_shuffled() {
        let teeth = 100;
        let (run, burst, max_rank) = (24, 0, 10_000);
        let adv = adversarial_sequence(teeth, run, burst, max_rank);
        let mut rng = Rng::new(5);
        let rnd = shuffled_sequence(teeth, run, burst, max_rank, &mut rng);
        let (adv_inv, adv_served, _) = measure_inversions(&adv, 8, 64, 12);
        let (rnd_inv, rnd_served, _) = measure_inversions(&rnd, 8, 64, 12);
        let adv_rate = adv_inv as f64 / adv_served.max(1) as f64;
        let rnd_rate = rnd_inv as f64 / rnd_served.max(1) as f64;
        assert!(
            adv_rate > 2.0 * rnd_rate,
            "adversarial {adv_rate:.3} vs shuffled {rnd_rate:.3}"
        );
    }

    #[test]
    fn min_rank_tracks_contents() {
        let mut sp = SpPifo::new(4, 8);
        assert_eq!(sp.min_rank(), None);
        sp.enqueue(42);
        sp.enqueue(7);
        assert_eq!(sp.min_rank(), Some(7));
    }

    #[test]
    fn empty_dequeue_none() {
        let mut sp = SpPifo::new(3, 4);
        assert_eq!(sp.dequeue(), None);
        assert!(sp.is_empty());
    }
}
