//! # dui-survey
//!
//! The *other* vulnerable systems the HotNets'19 paper surveys in §3.2
//! and §4, each implemented from its own paper's published algorithm and
//! paired with the attack the survey sketches:
//!
//! | Module | System | Paper's sketched attack |
//! |---|---|---|
//! | [`sp_pifo`] | SP-PIFO (NSDI'20): PIFO approximation on strict-priority queues | "an attacker could send packet sequences of particular ranks, resulting in packets being delayed or even dropped" |
//! | [`flowradar`] | FlowRadar (NSDI'16)-style Bloom/IBLT flow telemetry | "an attacker can pollute, or even saturate a bloom filter, resulting in inaccurate network statistics" |
//! | [`dapper`] | DAPPER (SOSR'17): in-network TCP performance diagnosis | "an attacker can implicate either of these three [sender/network/receiver] for performance problems by manipulating TCP packets" |
//! | [`ron`] | RON (SOSP'01): resilient overlay routing on active probes | "an attacker in the path between two nodes could drop or delay RON's probes, so as to divert traffic to another next-hop" |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dapper;
pub mod flowradar;
pub mod ron;
pub mod sp_pifo;

pub use dapper::{Bottleneck, DapperDiagnoser};
pub use flowradar::FlowRadar;
pub use ron::RonOverlay;
pub use sp_pifo::SpPifo;
