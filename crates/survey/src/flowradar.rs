//! FlowRadar-style flow telemetry (Li et al., NSDI'16): a Bloom filter to
//! detect new flows plus an IBLT-like *counting table* whose cells each
//! hold `(flow-xor, flow-count, packet-count)`; flow sets are recovered
//! by peeling singleton cells.
//!
//! The HotNets'19 survey (§3.2): "these data structures are vulnerable
//! against adversarial inputs because they are often dimensioned for the
//! average case, rather than the worst case. An attacker can pollute, or
//! even saturate a bloom filter, resulting in inaccurate network
//! statistics." [`saturation_flows`] builds exactly that attack: a swarm
//! of spoofed 5-tuples that drives the decode success rate to the floor
//! while legitimate traffic alone decodes perfectly.

use dui_netsim::packet::FlowKey;
use dui_stats::rng::mix64;

/// One counting-table cell.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    flow_xor: u64,
    flow_count: u64,
    packet_count: u64,
}

/// The FlowRadar encoder/decoder.
#[derive(Debug, Clone)]
pub struct FlowRadar {
    bloom: Vec<bool>,
    cells: Vec<Cell>,
    hashes: usize,
    salt: u64,
    /// Distinct flows inserted (ground truth, for evaluation).
    pub flows_inserted: u64,
}

/// Outcome of decoding.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// Fully peeled `(flow digest, packet count)` pairs.
    pub decoded: Vec<(u64, u64)>,
    /// Flows left entangled in the table (decode failure mass).
    pub undecoded_flows: u64,
}

impl FlowRadar {
    /// `bloom_bits` Bloom bits, `cells` counting cells, `hashes` hash
    /// functions, keyed by `salt`.
    pub fn new(bloom_bits: usize, cells: usize, hashes: usize, salt: u64) -> Self {
        assert!(bloom_bits > 0 && cells > 0 && hashes > 0);
        FlowRadar {
            bloom: vec![false; bloom_bits],
            cells: vec![Cell::default(); cells],
            hashes,
            salt,
            flows_inserted: 0,
        }
    }

    fn digest(&self, key: &FlowKey) -> u64 {
        key.digest(self.salt)
    }

    fn cell_index(&self, digest: u64, i: usize) -> usize {
        (mix64(digest, i as u64 + 1) % self.cells.len() as u64) as usize
    }

    fn bloom_index(&self, digest: u64, i: usize) -> usize {
        (mix64(digest, 0xB100_0000 + i as u64) % self.bloom.len() as u64) as usize
    }

    /// Is the flow already present in the Bloom filter?
    pub fn seen(&self, key: &FlowKey) -> bool {
        let d = self.digest(key);
        (0..self.hashes).all(|i| self.bloom[self.bloom_index(d, i)])
    }

    /// Record one packet of `key`.
    pub fn on_packet(&mut self, key: &FlowKey) {
        let d = self.digest(key);
        let is_new = !self.seen(key);
        if is_new {
            self.flows_inserted += 1;
            for i in 0..self.hashes {
                let b = self.bloom_index(d, i);
                self.bloom[b] = true;
            }
            for i in 0..self.hashes {
                let c = self.cell_index(d, i);
                self.cells[c].flow_xor ^= d;
                self.cells[c].flow_count += 1;
            }
        }
        for i in 0..self.hashes {
            let c = self.cell_index(d, i);
            self.cells[c].packet_count += 1;
        }
    }

    /// Fraction of Bloom bits set (saturation indicator).
    pub fn bloom_fill(&self) -> f64 {
        self.bloom.iter().filter(|&&b| b).count() as f64 / self.bloom.len() as f64
    }

    /// Peel the counting table: repeatedly find a singleton cell
    /// (`flow_count == 1`), emit its flow, and remove it from its other
    /// cells. Standard IBLT decode; fails (leaves flows entangled) once
    /// load exceeds the peeling threshold.
    pub fn decode(&self) -> DecodeResult {
        let mut cells = self.cells.clone();
        let mut decoded = Vec::new();
        while let Some(idx) = cells.iter().position(|c| c.flow_count == 1) {
            let d = cells[idx].flow_xor;
            // The packet count attributed to this flow: divide the
            // singleton's packets... in real FlowRadar, packet counts are
            // solved jointly; here the singleton's count is exact only if
            // no other flow shares the cell, which peeling guarantees.
            let pkts = cells[idx].packet_count;
            decoded.push((d, pkts));
            for i in 0..self.hashes {
                let c = self.cell_index(d, i);
                cells[c].flow_xor ^= d;
                cells[c].flow_count = cells[c].flow_count.saturating_sub(1);
                cells[c].packet_count = cells[c].packet_count.saturating_sub(pkts);
            }
        }
        let undecoded = self.flows_inserted.saturating_sub(decoded.len() as u64);
        DecodeResult {
            decoded,
            undecoded_flows: undecoded,
        }
    }

    /// Decode success rate in `[0, 1]`.
    pub fn decode_rate(&self) -> f64 {
        if self.flows_inserted == 0 {
            return 1.0;
        }
        let r = self.decode();
        r.decoded.len() as f64 / self.flows_inserted as f64
    }
}

/// The §3.2 saturation attack: `n` spoofed flows (distinct 5-tuples from
/// one host's address block — cheap to fabricate, no connections needed).
pub fn saturation_flows(n: usize, seed: u64) -> Vec<FlowKey> {
    use dui_netsim::packet::Addr;
    let mut rng = dui_stats::Rng::new(seed);
    (0..n)
        .map(|i| {
            FlowKey::tcp(
                Addr(0xCB00_0000 | rng.next_u32() & 0xFFFF),
                (1024 + (i % 60_000)) as u16,
                Addr(0x0A00_0000 | (rng.next_u32() & 0xFFFF)),
                80,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::Addr;

    fn legit_flows(n: usize) -> Vec<FlowKey> {
        (0..n)
            .map(|i| {
                FlowKey::tcp(
                    Addr::new(198, 18, (i >> 8) as u8, i as u8),
                    5000 + (i % 1000) as u16,
                    Addr::new(10, 0, 0, 1),
                    443,
                )
            })
            .collect()
    }

    #[test]
    fn dimensioned_for_average_case_decodes_fully() {
        // 200 flows into 600 cells (k=3): classic IBLT load ~0.33, decodes.
        let mut fr = FlowRadar::new(4096, 600, 3, 7);
        for k in legit_flows(200) {
            for _ in 0..5 {
                fr.on_packet(&k);
            }
        }
        // A Bloom false positive can absorb the odd flow (~0.25% FP rate
        // here) — that is the filter working as designed.
        assert!(fr.flows_inserted >= 198);
        let r = fr.decode();
        assert_eq!(r.undecoded_flows, 0, "average-case load decodes fully");
        assert_eq!(r.decoded.len() as u64, fr.flows_inserted);
    }

    #[test]
    fn packet_counts_recovered_exactly() {
        let mut fr = FlowRadar::new(4096, 600, 3, 7);
        let flows = legit_flows(50);
        for (i, k) in flows.iter().enumerate() {
            for _ in 0..=(i % 7) {
                fr.on_packet(k);
            }
        }
        let r = fr.decode();
        assert_eq!(r.decoded.len() as u64, fr.flows_inserted);
        if fr.flows_inserted == 50 {
            let total: u64 = r.decoded.iter().map(|&(_, c)| c).sum();
            let expected: u64 = (0..50).map(|i| (i % 7) as u64 + 1).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn bloom_dedupes_flows() {
        let mut fr = FlowRadar::new(4096, 600, 3, 7);
        let k = legit_flows(1)[0];
        for _ in 0..100 {
            fr.on_packet(&k);
        }
        assert_eq!(fr.flows_inserted, 1);
    }

    #[test]
    fn saturation_attack_destroys_decoding() {
        let mut fr = FlowRadar::new(4096, 600, 3, 7);
        for k in legit_flows(200) {
            fr.on_packet(&k);
        }
        assert!(fr.decode_rate() > 0.99);
        // The attacker pours in 2000 spoofed flows: the structure is
        // dimensioned for ~hundreds, and peeling collapses.
        for k in saturation_flows(2000, 1) {
            fr.on_packet(&k);
        }
        let rate = fr.decode_rate();
        assert!(
            rate < 0.10,
            "saturated table must fail to decode: rate {rate}"
        );
        assert!(fr.bloom_fill() > 0.5, "bloom driven toward saturation");
    }

    #[test]
    fn attack_cost_scales_with_cells() {
        // Doubling the table raises the flows needed — quantifying the
        // "dimensioned for the average case" observation.
        let rate_after = |cells: usize, attack: usize| {
            let mut fr = FlowRadar::new(8192, cells, 3, 7);
            for k in legit_flows(100) {
                fr.on_packet(&k);
            }
            for k in saturation_flows(attack, 2) {
                fr.on_packet(&k);
            }
            fr.decode_rate()
        };
        let small = rate_after(600, 1200);
        let big = rate_after(2400, 1200);
        assert!(
            big > small + 0.2,
            "bigger table resists the same attack: {small:.2} vs {big:.2}"
        );
    }
}
