//! RON-style resilient overlay routing (Andersen et al., SOSP'01): a
//! small overlay of nodes that continuously probe each other and steer
//! traffic either directly or via a one-hop relay, whichever the probes
//! say is healthier.
//!
//! The HotNets'19 survey (§3.2): "an attacker in the path between two
//! nodes could drop or delay RON's probes, so as to divert traffic to
//! another next-hop." The decision state is reconstructed here exactly:
//! per-path loss estimated from an exponentially-weighted window of probe
//! outcomes, route = argmin over {direct, via r} of loss-then-latency —
//! so a MitM dropping only *probes* (a few tiny packets!) moves entire
//! traffic aggregates onto a path of the attacker's choosing.

use dui_stats::Rng;

/// Probe-derived state of one overlay path.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// EWMA probe loss in `[0, 1]`.
    pub loss: f64,
    /// EWMA probe RTT (seconds).
    pub rtt: f64,
    alpha: f64,
}

impl PathStats {
    fn new(rtt0: f64) -> Self {
        PathStats {
            loss: 0.0,
            rtt: rtt0,
            alpha: 0.1,
        }
    }

    fn observe(&mut self, delivered: bool, rtt: f64) {
        self.loss = (1.0 - self.alpha) * self.loss + self.alpha * f64::from(!delivered as u8);
        if delivered {
            self.rtt = (1.0 - self.alpha) * self.rtt + self.alpha * rtt;
        }
    }

    /// RON's routing score: loss dominates, latency tie-breaks.
    fn score(&self) -> f64 {
        self.loss * 1000.0 + self.rtt
    }
}

/// Route choice for one ordered node pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Direct Internet path.
    Direct,
    /// Via the given relay node.
    Relay(usize),
}

/// A RON overlay over `n` nodes with ground-truth path qualities and an
/// optional probe-dropping MitM.
pub struct RonOverlay {
    n: usize,
    /// Ground truth loss of the direct path i→j (row-major n×n).
    true_loss: Vec<f64>,
    /// Ground truth RTT of the direct path i→j (seconds).
    true_rtt: Vec<f64>,
    /// Probe-estimated stats per ordered pair.
    stats: Vec<PathStats>,
    /// MitM: extra probability that a *probe* (not data) on path i→j is
    /// dropped by the attacker.
    probe_drop: Vec<f64>,
    rng: Rng,
}

impl RonOverlay {
    /// Build an overlay: all direct paths healthy with `base_rtt` seconds
    /// RTT and zero loss.
    pub fn new(n: usize, base_rtt: f64, seed: u64) -> Self {
        assert!(n >= 3, "RON needs at least 3 nodes for relaying");
        RonOverlay {
            n,
            true_loss: vec![0.0; n * n],
            true_rtt: vec![base_rtt; n * n],
            stats: (0..n * n).map(|_| PathStats::new(base_rtt)).collect(),
            probe_drop: vec![0.0; n * n],
            rng: Rng::new(seed),
        }
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    /// Set the genuine quality of the direct path `i → j`.
    pub fn set_true_path(&mut self, i: usize, j: usize, loss: f64, rtt: f64) {
        let idx = self.idx(i, j);
        self.true_loss[idx] = loss;
        self.true_rtt[idx] = rtt;
    }

    /// The MitM: drop probes on `i → j` with probability `p` (data
    /// untouched — the whole point of the attack's stealth).
    pub fn set_probe_drop(&mut self, i: usize, j: usize, p: f64) {
        let idx = self.idx(i, j);
        self.probe_drop[idx] = p;
    }

    /// Run one round of all-pairs probing.
    pub fn probe_round(&mut self) {
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let idx = self.idx(i, j);
                let genuine_ok = !self.rng.chance(self.true_loss[idx]);
                let attacker_ok = !self.rng.chance(self.probe_drop[idx]);
                let delivered = genuine_ok && attacker_ok;
                let rtt = self.true_rtt[idx];
                self.stats[idx].observe(delivered, rtt);
            }
        }
    }

    /// Estimated stats of path `i → j`.
    pub fn path(&self, i: usize, j: usize) -> &PathStats {
        &self.stats[self.idx(i, j)]
    }

    /// RON's route decision for `src → dst`: direct vs best one-hop relay.
    pub fn route(&self, src: usize, dst: usize) -> Route {
        let direct = self.path(src, dst).score();
        let mut best = Route::Direct;
        let mut best_score = direct;
        for r in 0..self.n {
            if r == src || r == dst {
                continue;
            }
            let via = self.path(src, r).score() + self.path(r, dst).score();
            if via < best_score {
                best_score = via;
                best = Route::Relay(r);
            }
        }
        best
    }

    /// Ground-truth delivery probability of the route currently chosen
    /// for `src → dst` (what users actually experience).
    pub fn true_delivery(&self, src: usize, dst: usize) -> f64 {
        match self.route(src, dst) {
            Route::Direct => 1.0 - self.true_loss[self.idx(src, dst)],
            Route::Relay(r) => {
                (1.0 - self.true_loss[self.idx(src, r)]) * (1.0 - self.true_loss[self.idx(r, dst)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_overlay_routes_direct() {
        let mut ron = RonOverlay::new(4, 0.02, 1);
        for _ in 0..200 {
            ron.probe_round();
        }
        assert_eq!(ron.route(0, 1), Route::Direct);
        assert!((ron.true_delivery(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn genuine_failure_recovered_via_relay() {
        // The legitimate use case RON exists for: the direct path really
        // degrades, and the overlay reroutes around it.
        let mut ron = RonOverlay::new(4, 0.02, 2);
        ron.set_true_path(0, 1, 0.5, 0.02);
        for _ in 0..300 {
            ron.probe_round();
        }
        match ron.route(0, 1) {
            Route::Relay(_) => {}
            Route::Direct => panic!("RON should route around 50% loss"),
        }
        assert!(ron.true_delivery(0, 1) > 0.95, "relay path is clean");
    }

    #[test]
    fn probe_dropping_diverts_healthy_traffic() {
        // The §3.2 attack: the direct path is PERFECT; the MitM drops only
        // probes. RON diverts to a relay of the attacker's choosing.
        let mut ron = RonOverlay::new(4, 0.02, 3);
        ron.set_probe_drop(0, 1, 0.6);
        for _ in 0..300 {
            ron.probe_round();
        }
        match ron.route(0, 1) {
            Route::Relay(_) => {}
            Route::Direct => panic!("probe dropping must divert the route"),
        }
        // The direct path was genuinely fine: pure manipulation.
        assert!(
            (ron.path(0, 1).loss - 0.6).abs() < 0.15,
            "estimate poisoned"
        );
    }

    #[test]
    fn attacker_can_steer_toward_a_specific_relay() {
        // Degrade probe estimates of every relay except the one the
        // attacker controls (node 2): traffic herds through it.
        let mut ron = RonOverlay::new(5, 0.02, 4);
        ron.set_probe_drop(0, 1, 0.6);
        for r in [3usize, 4] {
            ron.set_probe_drop(0, r, 0.5); // poison alternative first legs
        }
        for _ in 0..400 {
            ron.probe_round();
        }
        assert_eq!(ron.route(0, 1), Route::Relay(2), "herded through node 2");
    }

    #[test]
    fn latency_tiebreak_prefers_faster_relay() {
        let mut ron = RonOverlay::new(4, 0.02, 5);
        ron.set_probe_drop(0, 1, 0.9);
        // Relay 2 legs are faster than relay 3 legs.
        ron.set_true_path(0, 2, 0.0, 0.01);
        ron.set_true_path(2, 1, 0.0, 0.01);
        ron.set_true_path(0, 3, 0.0, 0.05);
        ron.set_true_path(3, 1, 0.0, 0.05);
        for _ in 0..400 {
            ron.probe_round();
        }
        assert_eq!(ron.route(0, 1), Route::Relay(2));
    }
}
