//! DAPPER-style in-network TCP performance diagnosis (Ghasemi, Benson,
//! Rexford — SOSR'17): watching a connection's headers from a vantage
//! point in the network, classify whether its throughput is limited by
//! the **sender** (not enough data offered), the **network** (congestion
//! window / loss bound), or the **receiver** (advertised window bound).
//!
//! The HotNets'19 survey (§3.2): "an attacker can implicate either of
//! these three for performance problems by manipulating TCP packets, and
//! falsely trigger the recourses suggested by the authors." The
//! manipulation is trivially available to a MitM: rewriting the receive
//! window in ACKs (e.g. `dui_attacks::primitives::WindowClamper`) makes a
//! congested path look receiver-limited; injecting duplicate ACKs makes a
//! healthy sender look network-limited.

use dui_netsim::packet::{Header, Packet};
use dui_netsim::time::{SimDuration, SimTime};
use dui_tcp::seq::{seq_dist, seq_gt};

/// DAPPER's diagnosis for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The application offers too little data (idle gaps between sends).
    Sender,
    /// Loss / congestion window limits throughput.
    Network,
    /// The advertised receive window limits throughput.
    Receiver,
    /// Not enough evidence yet.
    Unknown,
}

/// Streaming per-connection state for the diagnoser.
#[derive(Debug, Clone)]
pub struct DapperDiagnoser {
    /// Highest data sequence seen (next expected send).
    snd_nxt: Option<u32>,
    /// Highest cumulative ACK seen.
    ack: Option<u32>,
    /// Latest advertised receive window (bytes).
    rwnd: u32,
    /// Retransmission events observed (repeated data sequence).
    pub retransmissions: u64,
    /// Data segments observed.
    pub data_segments: u64,
    /// Duplicate-ACK events observed.
    pub dup_acks: u64,
    last_ack_value: Option<u32>,
    /// Time of the previous data segment.
    last_data_at: Option<SimTime>,
    /// Idle gaps (data-to-data spacing above the idle threshold).
    pub idle_gaps: u64,
    /// Samples of flight-size / rwnd utilization.
    rwnd_pressure: u64,
    rwnd_samples: u64,
    /// A data gap longer than this, while the window is open, implicates
    /// the sender.
    pub idle_threshold: SimDuration,
}

impl Default for DapperDiagnoser {
    fn default() -> Self {
        Self::new()
    }
}

impl DapperDiagnoser {
    /// Fresh diagnoser.
    pub fn new() -> Self {
        DapperDiagnoser {
            snd_nxt: None,
            ack: None,
            rwnd: u32::MAX,
            retransmissions: 0,
            data_segments: 0,
            dup_acks: 0,
            last_ack_value: None,
            last_data_at: None,
            idle_gaps: 0,
            rwnd_pressure: 0,
            rwnd_samples: 0,
            idle_threshold: SimDuration::from_millis(300),
        }
    }

    /// Feed one packet observed at the vantage point. `toward_receiver`
    /// marks the data direction (the caller knows the flow orientation).
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet, toward_receiver: bool) {
        let Header::Tcp {
            seq,
            ack,
            flags,
            window,
        } = pkt.header
        else {
            return;
        };
        if toward_receiver && pkt.payload > 0 {
            self.data_segments += 1;
            if let Some(t) = self.last_data_at {
                if now.since(t) > self.idle_threshold {
                    self.idle_gaps += 1;
                }
            }
            self.last_data_at = Some(now);
            match self.snd_nxt {
                Some(nxt) if !seq_gt(seq.wrapping_add(pkt.payload), nxt) => {
                    // Sequence does not advance the frontier: retransmission.
                    self.retransmissions += 1;
                }
                _ => {
                    self.snd_nxt = Some(seq.wrapping_add(pkt.payload));
                }
            }
            // Flight-size vs advertised window (receiver pressure).
            if let (Some(nxt), Some(acked)) = (self.snd_nxt, self.ack) {
                let flight = seq_dist(acked, nxt);
                self.rwnd_samples += 1;
                if self.rwnd != 0 && flight as u64 * 10 >= self.rwnd as u64 * 8 {
                    self.rwnd_pressure += 1; // ≥80% of the window in flight
                }
            }
        } else if !toward_receiver && flags.ack {
            self.rwnd = window;
            match self.last_ack_value {
                Some(prev) if prev == ack => self.dup_acks += 1,
                _ => {}
            }
            self.last_ack_value = Some(ack);
            match self.ack {
                Some(prev) if !seq_gt(ack, prev) => {}
                _ => self.ack = Some(ack),
            }
        }
    }

    /// Loss rate proxy: retransmitted fraction of data segments.
    pub fn retx_rate(&self) -> f64 {
        if self.data_segments == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.data_segments as f64
        }
    }

    /// Fraction of samples where the flight filled ≥80% of the advertised
    /// window.
    pub fn rwnd_pressure_rate(&self) -> f64 {
        if self.rwnd_samples == 0 {
            0.0
        } else {
            self.rwnd_pressure as f64 / self.rwnd_samples as f64
        }
    }

    /// Idle-gap rate per data segment.
    pub fn idle_rate(&self) -> f64 {
        if self.data_segments == 0 {
            0.0
        } else {
            self.idle_gaps as f64 / self.data_segments as f64
        }
    }

    /// DAPPER's classification, in its precedence order: receiver-window
    /// pressure first (cheap to check and most actionable), then
    /// network (loss / dup-ACKs), then sender idleness.
    pub fn diagnose(&self) -> Bottleneck {
        if self.data_segments < 20 {
            return Bottleneck::Unknown;
        }
        if self.rwnd_pressure_rate() > 0.5 {
            return Bottleneck::Receiver;
        }
        if self.retx_rate() > 0.01 || self.dup_acks as f64 / self.data_segments as f64 > 0.2 {
            return Bottleneck::Network;
        }
        if self.idle_rate() > 0.05 {
            return Bottleneck::Sender;
        }
        Bottleneck::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::{Addr, FlowKey, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::tcp(Addr::new(1, 1, 1, 1), 100, Addr::new(2, 2, 2, 2), 80)
    }

    fn data(seq: u32) -> Packet {
        Packet::tcp(key(), seq, 0, TcpFlags::default(), 1000)
    }

    fn ack_pkt(ack: u32, window: u32) -> Packet {
        let mut p = Packet::tcp(
            key().reversed(),
            0,
            ack,
            TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            0,
        );
        if let Header::Tcp { window: w, .. } = &mut p.header {
            *w = window;
        }
        p
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn smooth_acked_stream_is_unclassified() {
        // Steady pipeline, immediate acks, huge window: nothing to blame.
        let mut d = DapperDiagnoser::new();
        for i in 0..100u32 {
            d.on_packet(t(i as u64 * 10), &data(1 + i * 1000), true);
            d.on_packet(
                t(i as u64 * 10 + 5),
                &ack_pkt(1 + i * 1000 + 1000, 1 << 20),
                false,
            );
        }
        assert_eq!(d.diagnose(), Bottleneck::Unknown);
        assert_eq!(d.retransmissions, 0);
    }

    #[test]
    fn idle_sender_implicated() {
        let mut d = DapperDiagnoser::new();
        for i in 0..40u32 {
            // 400 ms between sends: application-limited.
            d.on_packet(t(i as u64 * 400), &data(1 + i * 1000), true);
            d.on_packet(
                t(i as u64 * 400 + 5),
                &ack_pkt(1 + i * 1000 + 1000, 1 << 20),
                false,
            );
        }
        assert_eq!(d.diagnose(), Bottleneck::Sender);
    }

    #[test]
    fn lossy_path_implicates_network() {
        let mut d = DapperDiagnoser::new();
        let mut seq = 1u32;
        for i in 0..100u32 {
            d.on_packet(t(i as u64 * 10), &data(seq), true);
            if i % 10 == 0 {
                // Retransmit the same segment.
                d.on_packet(t(i as u64 * 10 + 3), &data(seq), true);
            }
            seq = seq.wrapping_add(1000);
            d.on_packet(t(i as u64 * 10 + 5), &ack_pkt(seq, 1 << 20), false);
        }
        assert_eq!(d.diagnose(), Bottleneck::Network);
    }

    #[test]
    fn tiny_advertised_window_implicates_receiver() {
        let mut d = DapperDiagnoser::new();
        let mut seq = 1u32;
        let mut acked = 1u32;
        for i in 0..100u32 {
            d.on_packet(t(i as u64 * 10), &data(seq), true);
            seq = seq.wrapping_add(1000);
            // The receiver acks slowly and advertises a 1-segment window:
            // flight stays pinned at the window.
            if i % 2 == 0 {
                acked = acked.wrapping_add(1000);
            }
            d.on_packet(t(i as u64 * 10 + 5), &ack_pkt(acked, 1200), false);
        }
        assert_eq!(d.diagnose(), Bottleneck::Receiver);
    }

    #[test]
    fn window_clamping_attack_flips_diagnosis() {
        // The §3.2 attack: a healthy, pipelined connection; the MitM
        // rewrites ACK windows down. DAPPER flips from Unknown/healthy to
        // Receiver — implicating an innocent endpoint.
        let run = |clamp: Option<u32>| {
            let mut d = DapperDiagnoser::new();
            let mut seq = 1u32;
            let mut acked = 1u32;
            for i in 0..100u32 {
                d.on_packet(t(i as u64 * 10), &data(seq), true);
                seq = seq.wrapping_add(1000);
                if i % 3 != 0 {
                    acked = acked.wrapping_add(1000);
                }
                let honest_window = 1 << 20;
                let w = clamp.unwrap_or(honest_window);
                d.on_packet(t(i as u64 * 10 + 5), &ack_pkt(acked, w), false);
            }
            d.diagnose()
        };
        assert_ne!(run(None), Bottleneck::Receiver);
        assert_eq!(run(Some(2000)), Bottleneck::Receiver);
    }

    #[test]
    fn dup_ack_injection_implicates_network() {
        // Healthy stream + attacker-injected duplicate ACKs.
        let mut d = DapperDiagnoser::new();
        let mut seq = 1u32;
        for i in 0..100u32 {
            d.on_packet(t(i as u64 * 10), &data(seq), true);
            seq = seq.wrapping_add(1000);
            d.on_packet(t(i as u64 * 10 + 5), &ack_pkt(seq, 1 << 20), false);
            // Injected duplicates of the same cumulative ACK.
            d.on_packet(t(i as u64 * 10 + 6), &ack_pkt(seq, 1 << 20), false);
        }
        assert_eq!(d.diagnose(), Bottleneck::Network);
    }

    #[test]
    fn needs_evidence_before_accusing() {
        let mut d = DapperDiagnoser::new();
        d.on_packet(t(0), &data(1), true);
        assert_eq!(d.diagnose(), Bottleneck::Unknown);
    }
}
