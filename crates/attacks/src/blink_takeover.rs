//! The §3.1 Blink takeover: a host-privilege attacker floods the victim
//! prefix with spoofed, always-active TCP flows; once its flows dominate
//! the flow selector it emits a synchronized burst of fake retransmissions
//! and Blink "detects a failure" that never happened.
//!
//! Note the property the paper stresses: "the attacker does not need to
//! establish TCP connections with the victim network" — the host below
//! never completes (or even starts) a handshake; it just emits segments.

use crate::privilege::{AttackDescriptor, Privilege, Target};
use dui_flowgen::MaliciousFlowSet;
use dui_netsim::packet::{Packet, TcpFlags};
use dui_netsim::prelude::{Ctx, NodeLogic};
use dui_netsim::time::{SimDuration, SimTime};
use std::any::Any;

/// Descriptor for the attack.
pub fn descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "blink-takeover",
        section: "§3.1",
        privilege: Privilege::Host,
        target: Target::Infrastructure,
        summary:
            "fake TCP retransmissions capture Blink's flow sample and trigger spurious rerouting",
    }
}

/// Attack phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// Keep flows alive with plausible (advancing-seq) segments so they
    /// get — and keep — selector cells.
    Infiltrate,
    /// Emit repeated-sequence segments: the failure signal.
    Trigger,
}

/// Parameters of the takeover.
#[derive(Debug, Clone)]
pub struct BlinkTakeover {
    /// The spoofed flow population.
    pub flows: MaliciousFlowSet,
    /// When to start sending at all.
    pub start: SimTime,
    /// When to switch from infiltration to the retransmission burst.
    pub trigger_at: SimTime,
    /// How long the retransmission burst lasts.
    pub trigger_duration: SimDuration,
}

/// A compromised host executing a [`BlinkTakeover`].
pub struct MaliciousRetxHost {
    attack: BlinkTakeover,
    /// Per-flow current sequence numbers.
    seqs: Vec<u32>,
    /// Packets sent.
    pub sent: u64,
    started: bool,
}

const TOKEN_TICK: u64 = 1;

impl MaliciousRetxHost {
    /// Build the host logic for an attack.
    pub fn new(attack: BlinkTakeover) -> Self {
        let n = attack.flows.len();
        MaliciousRetxHost {
            attack,
            seqs: (0..n as u32).map(|i| 1_000 + i * 50_000).collect(),
            sent: 0,
            started: false,
        }
    }

    fn phase(&self, now: SimTime) -> PhaseKind {
        if now >= self.attack.trigger_at
            && now < self.attack.trigger_at + self.attack.trigger_duration
        {
            PhaseKind::Trigger
        } else {
            PhaseKind::Infiltrate
        }
    }

    fn emit_round(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let phase = self.phase(now);
        for (i, key) in self.attack.flows.keys.clone().into_iter().enumerate() {
            let seq = match phase {
                PhaseKind::Infiltrate => {
                    // Advance: looks like a live flow making progress.
                    self.seqs[i] = self.seqs[i].wrapping_add(1460);
                    self.seqs[i]
                }
                // Repeat the last sequence: a retransmission to any
                // observer tracking per-flow sequence state.
                PhaseKind::Trigger => self.seqs[i],
            };
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 1460);
            ctx.send(pkt);
            self.sent += 1;
        }
    }
}

impl NodeLogic for MaliciousRetxHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let delay = self.attack.start.since(ctx.now());
        ctx.set_timer(delay.max(SimDuration::from_nanos(1)), TOKEN_TICK);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {
        // Spoofed flows: nothing legitimate ever comes back; ignore.
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        if !self.started && ctx.now() < self.attack.start {
            ctx.set_timer(
                self.attack
                    .start
                    .since(ctx.now())
                    .max(SimDuration::from_nanos(1)),
                TOKEN_TICK,
            );
            return;
        }
        self.started = true;
        self.emit_round(ctx);
        // During the trigger burst, send fast enough that every flow
        // retransmits within Blink's 800 ms window.
        let interval = match self.phase(ctx.now()) {
            PhaseKind::Infiltrate => self.attack.flows.keepalive,
            PhaseKind::Trigger => SimDuration::from_millis(200),
        };
        ctx.set_timer(interval, TOKEN_TICK);
    }

    fn state_digest(&self, d: &mut dui_stats::digest::StateDigest) {
        d.write_len(self.attack.flows.keys.len());
        for k in &self.attack.flows.keys {
            d.write_u32(k.src.0);
            d.write_u32(k.dst.0);
            d.write_u16(k.sport);
            d.write_u16(k.dport);
        }
        d.write_u64(self.attack.flows.keepalive.as_nanos());
        d.write_u64(self.attack.start.0);
        d.write_u64(self.attack.trigger_at.0);
        d.write_u64(self.attack.trigger_duration.as_nanos());
        d.write_len(self.seqs.len());
        for &s in &self.seqs {
            d.write_u32(s);
        }
        d.write_u64(self.sent);
        d.write_bool(self.started);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The §5-V (obfuscation) ablation, quantified: how many spoofed flows
/// must the attacker fabricate to cover at least `target_cells` distinct
/// selector cells?
///
/// * **Known salt** (Kerckhoff worst case: the switch uses a public or
///   guessable hash key): the attacker computes each candidate 5-tuple's
///   cell offline and keeps only useful ones — `target_cells` flows
///   suffice, one per cell.
/// * **Secret salt**: cells are opaque, so the attacker blindly samples
///   5-tuples and pays the coupon-collector tax (~`n·ln n` candidates for
///   full coverage), and — worse — cannot *discard* the redundant flows,
///   since it cannot tell which are redundant. It must keep (and fund)
///   every flow it generated.
///
/// Returns the number of flows the attacker must operate.
pub fn flows_needed_for_coverage(
    params: &dui_blink::selector::BlinkParams,
    prefix: dui_netsim::packet::Prefix,
    target_cells: usize,
    salt_known: bool,
    seed: u64,
) -> usize {
    use dui_blink::selector::FlowSelector;
    use dui_flowgen::flows::random_key_in_prefix;
    let selector = FlowSelector::new(*params);
    let mut rng = dui_stats::Rng::new(seed);
    let mut covered = std::collections::HashSet::new();
    let mut kept = 0usize;
    let mut sport = 10_000u16;
    let mut attempts = 0usize;
    while covered.len() < target_cells {
        attempts += 1;
        assert!(attempts < 2_000_000, "coverage unreachable");
        sport = sport.wrapping_add(13).max(1024);
        let key = random_key_in_prefix(prefix, &mut rng, sport);
        let cell = selector.index_of(&key);
        if salt_known {
            // Offline check against the known hash: keep only new cells.
            if covered.insert(cell) {
                kept += 1;
            }
        } else {
            // Blind: every generated flow must be kept alive.
            covered.insert(cell);
            kept += 1;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_flowgen::MaliciousFlowSetConfig;
    use dui_netsim::packet::{Addr, Prefix};
    use dui_netsim::prelude::*;
    use dui_stats::Rng;

    #[test]
    fn infiltration_advances_trigger_repeats() {
        let cfg = MaliciousFlowSetConfig {
            prefix: Prefix::new(Addr::new(10, 0, 0, 0), 24),
            count: 3,
            keepalive: SimDuration::from_millis(500),
        };
        let flows = MaliciousFlowSet::generate(&cfg, &mut Rng::new(1));
        let attack = BlinkTakeover {
            flows,
            start: SimTime::ZERO,
            trigger_at: SimTime::from_secs(5),
            trigger_duration: SimDuration::from_secs(2),
        };
        let host = MaliciousRetxHost::new(attack);
        assert_eq!(host.phase(SimTime::from_secs(1)), PhaseKind::Infiltrate);
        assert_eq!(host.phase(SimTime::from_secs(6)), PhaseKind::Trigger);
        assert_eq!(host.phase(SimTime::from_secs(8)), PhaseKind::Infiltrate);
    }

    #[test]
    fn salt_secrecy_multiplies_attack_cost() {
        use dui_blink::selector::BlinkParams;
        use dui_netsim::packet::Prefix;
        let params = BlinkParams::default();
        let prefix = Prefix::new(Addr::new(10, 0, 0, 0), 16);
        let known = flows_needed_for_coverage(&params, prefix, 32, true, 1);
        let secret = flows_needed_for_coverage(&params, prefix, 32, false, 1);
        assert_eq!(known, 32, "known salt: one flow per target cell");
        assert!(
            secret >= 40,
            "secret salt: blind sampling costs extra flows, got {secret}"
        );
        // Full coverage magnifies the gap (coupon collector).
        let known_full = flows_needed_for_coverage(&params, prefix, 64, true, 2);
        let secret_full = flows_needed_for_coverage(&params, prefix, 64, false, 2);
        assert_eq!(known_full, 64);
        assert!(
            secret_full as f64 >= 2.5 * 64.0,
            "full coverage blind ~ n ln n: got {secret_full}"
        );
    }

    #[test]
    fn host_emits_spoofed_traffic_into_network() {
        // h_attacker - r - victim; count packets arriving for the prefix.
        let mut b = TopologyBuilder::new();
        let atk = b.host("atk", Addr::new(198, 18, 0, 1));
        let r = b.router("r");
        let v = b.host("v", Addr::new(10, 0, 0, 1));
        b.link(
            atk,
            r,
            Bandwidth::mbps(100),
            SimDuration::from_millis(1),
            256,
        );
        b.link(r, v, Bandwidth::mbps(100), SimDuration::from_millis(1), 256);
        let mut sim = Simulator::new(b.build(), 1);
        sim.set_logic(r, Box::new(RouterLogic::new()));
        sim.set_logic(v, Box::new(SinkHost::new()));
        sim.announce_prefix(Prefix::new(Addr::new(10, 0, 0, 0), 24), v);

        let cfg = MaliciousFlowSetConfig {
            prefix: Prefix::new(Addr::new(10, 0, 0, 0), 24),
            count: 10,
            keepalive: SimDuration::from_millis(500),
        };
        let flows = MaliciousFlowSet::generate(&cfg, &mut Rng::new(2));
        sim.set_logic(
            atk,
            Box::new(MaliciousRetxHost::new(BlinkTakeover {
                flows,
                start: SimTime::ZERO,
                trigger_at: SimTime::from_secs(100),
                trigger_duration: SimDuration::from_secs(1),
            })),
        );
        sim.run_until(SimTime::from_secs(5));
        let sink: &mut SinkHost = sim.logic_mut(v);
        // 10 flows, ~2 packets/s each, 5 s ≈ 100 packets.
        assert!(sink.total_packets > 50, "got {}", sink.total_packets);
        assert_eq!(sink.flow_count(), 10, "all spoofed 5-tuples distinct");
    }
}
