//! The §4.1 Pytheas attacks, as scenario-level configurators.
//!
//! The measurement-poisoning logic itself lives in `dui-pytheas` (bots are
//! just sessions that lie); this module binds those knobs to the threat
//! model — which privilege enables which variant — and provides the
//! MitM packet-level throttle used in end-to-end runs.

use crate::primitives::Throttler;
use crate::privilege::{AttackDescriptor, Privilege, Target};
use dui_netsim::link::LinkTap;
use dui_netsim::packet::Addr;
use dui_pytheas::engine::{EngineConfig, PoisonStrategy, Throttle};

/// Descriptor for the botnet variant.
pub fn botnet_descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "pytheas-botnet-poison",
        section: "§4.1",
        privilege: Privilege::Host,
        target: Target::Endpoints,
        summary: "bot sessions report fake QoE, driving group-wide decisions for honest clients",
    }
}

/// Descriptor for the CDN-throttle variant.
pub fn throttle_descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "pytheas-cdn-throttle",
        section: "§4.1",
        privilege: Privilege::Mitm,
        target: Target::Endpoints,
        summary: "throttling one CDN's flows herds whole groups onto other sites",
    }
}

/// Host-privilege: a fraction of the group's sessions are bots reporting
/// adversarially.
#[derive(Debug, Clone, Copy)]
pub struct BotnetPoisoning {
    /// Fraction of sessions the attacker controls.
    pub fraction: f64,
    /// What the bots report.
    pub strategy: PoisonStrategy,
}

impl BotnetPoisoning {
    /// Apply to an engine configuration (after a privilege check).
    pub fn apply(&self, cfg: &mut EngineConfig, have: Privilege) -> Result<(), String> {
        botnet_descriptor().check_privilege(have)?;
        cfg.poison_fraction = self.fraction;
        cfg.poison = self.strategy;
        Ok(())
    }
}

/// MitM-privilege: throttle the flows of one CDN arm.
#[derive(Debug, Clone, Copy)]
pub struct CdnThrottleAttack {
    /// The arm (CDN site) to degrade.
    pub arm: usize,
    /// Quality multiplier experienced by affected sessions.
    pub factor: f64,
    /// Fraction of the arm's sessions crossing the compromised links.
    pub reach: f64,
}

impl CdnThrottleAttack {
    /// Apply to an engine configuration (after a privilege check).
    pub fn apply(&self, cfg: &mut EngineConfig, have: Privilege) -> Result<(), String> {
        throttle_descriptor().check_privilege(have)?;
        cfg.throttle = Some(Throttle {
            arm: self.arm,
            factor: self.factor,
            affected_fraction: self.reach,
        });
        Ok(())
    }

    /// The packet-level embodiment for end-to-end runs: a token-bucket
    /// throttler for traffic from one CDN address.
    pub fn as_tap(&self, cdn_addr: Addr, rate_bytes_per_sec: f64) -> Box<dyn LinkTap> {
        Box::new(Throttler::new(
            Box::new(move |p| p.key.src == cdn_addr),
            rate_bytes_per_sec,
            rate_bytes_per_sec / 4.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_pytheas::engine::{make_groups, AcceptAll, PytheasEngine};
    use dui_pytheas::qoe::QoeModel;

    #[test]
    fn botnet_requires_only_host_privilege() {
        let atk = BotnetPoisoning {
            fraction: 0.2,
            strategy: PoisonStrategy::Promote { down: 1, up: 2 },
        };
        let mut cfg = EngineConfig::default();
        assert!(atk.apply(&mut cfg, Privilege::Host).is_ok());
        assert_eq!(cfg.poison_fraction, 0.2);
    }

    #[test]
    fn throttle_requires_mitm() {
        let atk = CdnThrottleAttack {
            arm: 1,
            factor: 0.3,
            reach: 0.8,
        };
        let mut cfg = EngineConfig::default();
        assert!(atk.apply(&mut cfg, Privilege::Host).is_err());
        assert!(atk.apply(&mut cfg, Privilege::Mitm).is_ok());
        assert!(cfg.throttle.is_some());
    }

    #[test]
    fn end_to_end_botnet_attack_composes() {
        let atk = BotnetPoisoning {
            fraction: 0.25,
            strategy: PoisonStrategy::Promote { down: 1, up: 0 },
        };
        let mut cfg = EngineConfig::default();
        atk.apply(&mut cfg, Privilege::Host).unwrap();
        let model = QoeModel::new(vec![0.4, 0.85, 0.7], 0.05);
        let mut engine = PytheasEngine::new(model, cfg, &make_groups(1), 1);
        let qoe = engine.run(300, &mut AcceptAll);
        assert!(qoe < 0.8, "poisoned run should underperform: {qoe}");
    }
}
