//! The classic spoofed SYN flood, aimed at a host that keeps per-flow
//! state for half-open connections (§2's state-exhaustion class of
//! adversarial inputs).
//!
//! [`SynFloodHost`] sprays TCP SYNs at a victim address from source
//! addresses drawn uniformly out of a spoof prefix, each on a fresh
//! 5-tuple. A listener that allocates state per SYN (like `dui-tcp`'s
//! `TcpHost` with the RFC 9293 lifecycle enabled) parks one SYN-RCVD
//! entry per spoofed tuple; the SYN-ACKs go back to addresses nobody
//! answers from, so the entries only drain through the listener's
//! SYN-RCVD reaper. The defense knobs under test are the listener's
//! `listen_backlog` cap and `syn_rcvd_timeout`.

use dui_netsim::node::NodeLogic;
use dui_netsim::packet::{Addr, FlowKey, Packet, Prefix, TcpFlags};
use dui_netsim::sim::Ctx;
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use dui_stats::Rng;
use std::any::Any;

/// Parameters of a spoofed SYN flood.
#[derive(Debug, Clone, Copy)]
pub struct SynFloodConfig {
    /// The address the SYNs are aimed at.
    pub victim: Addr,
    /// Destination port of every SYN.
    pub dport: u16,
    /// Spoofed source addresses are drawn uniformly from this prefix.
    pub spoof_prefix: Prefix,
    /// SYNs per second while the flood is on.
    pub rate_per_sec: u64,
    /// When the flood starts.
    pub start: SimTime,
    /// How long it runs.
    pub duration: SimDuration,
    /// Seed of the spoofed-tuple stream.
    pub seed: u64,
}

impl Default for SynFloodConfig {
    fn default() -> Self {
        SynFloodConfig {
            victim: Addr::new(10, 0, 0, 1),
            dport: 80,
            // TEST-NET-2: guaranteed to collide with no legitimate flow.
            spoof_prefix: Prefix::new(Addr::new(198, 51, 100, 0), 24),
            rate_per_sec: 1000,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            seed: 0,
        }
    }
}

const TOKEN_TICK: u64 = 1;

/// Host logic that runs a [`SynFloodConfig`] flood.
pub struct SynFloodHost {
    cfg: SynFloodConfig,
    rng: Rng,
    /// SYNs emitted so far.
    pub sent: u64,
}

impl SynFloodHost {
    /// Build the attacker host.
    pub fn new(cfg: SynFloodConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        SynFloodHost { cfg, rng, sent: 0 }
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.cfg.rate_per_sec.max(1))
    }

    fn spoofed_key(&mut self) -> FlowKey {
        let p = self.cfg.spoof_prefix;
        let hosts = 1u64 << (32 - p.len as u32);
        let src = Addr(p.addr.0 | (self.rng.below(hosts) as u32));
        let sport = 1024 + (self.rng.below(64_511) as u16);
        FlowKey::tcp(src, sport, self.cfg.victim, self.cfg.dport)
    }
}

impl NodeLogic for SynFloodHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let delay = self.cfg.start.since(ctx.now());
        ctx.set_timer(delay.max(SimDuration::from_nanos(1)), TOKEN_TICK);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {
        // Nothing legitimate ever returns to a spoofing attacker.
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        let now = ctx.now();
        if now < self.cfg.start {
            ctx.set_timer(
                self.cfg.start.since(now).max(SimDuration::from_nanos(1)),
                TOKEN_TICK,
            );
            return;
        }
        if now >= self.cfg.start + self.cfg.duration {
            return;
        }
        let key = self.spoofed_key();
        let isn = self.rng.next_u32();
        let flags = TcpFlags {
            syn: true,
            ..TcpFlags::default()
        };
        ctx.send(Packet::tcp(key, isn, 0, flags, 0));
        self.sent += 1;
        ctx.set_timer(self.interval(), TOKEN_TICK);
    }

    fn state_digest(&self, d: &mut StateDigest) {
        for w in self.rng.state() {
            d.write_u64(w);
        }
        d.write_u32(self.cfg.victim.0);
        d.write_u16(self.cfg.dport);
        d.write_u32(self.cfg.spoof_prefix.addr.0);
        d.write_u8(self.cfg.spoof_prefix.len);
        d.write_u64(self.cfg.rate_per_sec);
        d.write_u64(self.cfg.start.0);
        d.write_u64(self.cfg.duration.as_nanos());
        d.write_u64(self.sent);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spoofed_keys_stay_in_the_prefix_and_vary() {
        let mut h = SynFloodHost::new(SynFloodConfig::default());
        let mut keys = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let k = h.spoofed_key();
            assert!(h.cfg.spoof_prefix.contains(k.src), "{:?}", k.src);
            assert_eq!(k.dst, h.cfg.victim);
            assert!(k.sport >= 1024);
            keys.insert((k.src.0, k.sport));
        }
        assert!(keys.len() > 90, "spoofed tuples barely vary: {}", keys.len());
    }

    #[test]
    fn flood_rate_sets_the_tick_interval() {
        let h = SynFloodHost::new(SynFloodConfig {
            rate_per_sec: 4000,
            ..Default::default()
        });
        assert_eq!(h.interval(), SimDuration::from_nanos(250_000));
    }
}
