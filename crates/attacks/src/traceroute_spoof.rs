//! The §4.3 traceroute attack from the *MitM* position: rewriting the
//! source claims of ICMP time-exceeded replies as they cross a
//! compromised link. (The operator-privilege variant — answering probes
//! with arbitrary fictions at the router itself — is
//! `dui_nethide::rewriter::FictionRewriter`.)
//!
//! "Since there is no authentication of these ICMP replies, any attacker
//! who can manipulate them can control the path that traceroute displays."

use crate::privilege::{AttackDescriptor, Privilege, Target};
use dui_netsim::link::{Dir, LinkTap, TapAction};
use dui_netsim::packet::{Addr, Header, Packet};
use dui_netsim::time::SimTime;
use std::collections::HashMap;

/// Descriptor for the attack.
pub fn descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "traceroute-spoof",
        section: "§4.3",
        privilege: Privilege::Mitm,
        target: Target::Endpoints,
        summary:
            "rewriting unauthenticated ICMP time-exceeded replies fakes the topology users see",
    }
}

/// Rewrites the claimed source of time-exceeded replies crossing the tap.
pub struct IcmpSpoofTap {
    /// Real claimed address → what to show instead.
    pub substitutions: HashMap<Addr, Addr>,
    /// Replies rewritten so far.
    pub rewritten: u64,
}

impl IcmpSpoofTap {
    /// Tap substituting the given address claims.
    pub fn new(substitutions: HashMap<Addr, Addr>) -> Self {
        IcmpSpoofTap {
            substitutions,
            rewritten: 0,
        }
    }
}

impl LinkTap for IcmpSpoofTap {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if let Header::IcmpTimeExceeded { reported_by, .. } = &mut pkt.header {
            if let Some(&fake) = self.substitutions.get(reported_by) {
                *reported_by = fake;
                pkt.key.src = fake;
                self.rewritten += 1;
            }
        }
        TapAction::Forward
    }

    fn label(&self) -> &str {
        "icmp-spoof"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_nethide::traceroute::TracerouteProber;
    use dui_netsim::prelude::*;

    #[test]
    fn mitm_rewrites_what_traceroute_sees() {
        // h1 - r1 - r2 - h2, tap on the h1-r1 link rewriting r2's claims.
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
        let l0 = b.link(
            h1,
            r1,
            Bandwidth::mbps(100),
            SimDuration::from_millis(1),
            32,
        );
        b.link(
            r1,
            r2,
            Bandwidth::mbps(100),
            SimDuration::from_millis(1),
            32,
        );
        b.link(
            r2,
            h2,
            Bandwidth::mbps(100),
            SimDuration::from_millis(1),
            32,
        );
        let topo = b.build();
        let r1_addr = topo.node(r1).addr;
        let r2_addr = topo.node(r2).addr;
        let fake = Addr::new(66, 6, 6, 6);
        let mut sim = Simulator::new(topo, 1);
        sim.set_logic(r1, Box::new(RouterLogic::new()));
        sim.set_logic(r2, Box::new(RouterLogic::new()));
        sim.set_logic(h2, Box::new(SinkHost::new()));
        sim.set_logic(
            h1,
            Box::new(TracerouteProber::new(Addr::new(10, 0, 0, 2), 8)),
        );
        let mut subs = HashMap::new();
        subs.insert(r2_addr, fake);
        // Replies travel toward h1: direction B->A on the h1-r1 link.
        sim.install_tap(l0, Dir::BtoA, Box::new(IcmpSpoofTap::new(subs)));
        sim.run_until(SimTime::from_secs(10));
        let p: &mut TracerouteProber = sim.logic_mut(h1);
        assert!(p.result.reached);
        assert_eq!(p.result.hops[0], Some(r1_addr), "r1 claim untouched");
        assert_eq!(p.result.hops[1], Some(fake), "r2 claim rewritten");
    }
}
