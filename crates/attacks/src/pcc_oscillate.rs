//! The §4.2 PCC oscillation attack: a MitM tap that tracks a PCC flow's
//! sending rate, infers its monitor-interval experiments, and drops just
//! enough packets during above-baseline (`+ε`) phases that the sender
//! "sees the same utility with both larger and smaller rates". PCC then
//! escalates ε to its 5% cap and oscillates forever.
//!
//! Knowledge assumptions match the paper (Kerckhoff): the attacker knows
//! PCC's utility function and ε schedule, and can estimate monitor
//! intervals from packet timing on the wire; it cannot read sender state.

use crate::privilege::{AttackDescriptor, Privilege, Target};
use dui_netsim::link::{Dir, LinkTap, TapAction};
use dui_netsim::packet::{FlowKey, Packet};
use dui_netsim::time::{SimDuration, SimTime};
use dui_pcc::utility::{allegro_utility, UtilityParams};
use std::collections::VecDeque;

/// Descriptor for the attack.
pub fn descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "pcc-oscillate",
        section: "§4.2",
        privilege: Privilege::Mitm,
        target: Target::Endpoints,
        summary: "selective drops equalize PCC's A/B utilities, pinning rates at ±5% oscillation",
    }
}

/// The equalizer tap.
pub struct PccEqualizerTap {
    /// Flow under attack (forward = data direction).
    key: FlowKey,
    utility: UtilityParams,
    /// Recent packet (time, size) observations for instantaneous rate.
    window: VecDeque<(SimTime, u32)>,
    /// Rate-estimation window length (should be ≲ one monitor interval).
    window_len: SimDuration,
    /// Rolling samples of the short-window rate; the baseline estimate is
    /// their median — robust to the ±ε trial excursions (which are
    /// symmetric around the base rate) and self-centering as the victim
    /// drifts.
    rate_samples: VecDeque<(SimTime, f64)>,
    /// Span of the rolling median.
    median_span: SimDuration,
    /// Observation period: the tap watches silently for this long (letting
    /// the victim converge), then freezes its baseline estimate and starts
    /// dropping — pinning the victim oscillating ±5% around the locked
    /// rate, per §4.2.
    arm_after: SimDuration,
    first_seen: Option<SimTime>,
    armed: bool,
    /// Pin the victim to this rate (bytes/s) instead of the learned
    /// baseline. The paper's endgame: "not only is PCC's logic neutralized
    /// … it is effectively a tool for the attacker" — the victim converges
    /// to whatever rate the attacker chose and oscillates ±5% around it.
    pub pin_to: Option<f64>,
    /// Coherent modulation of the pin target: `(fraction, period)` — the
    /// target alternates ±fraction every half period. Applied identically
    /// across flows, this synchronizes their swings and produces the
    /// "sizable traffic fluctuations at the destination" of §4.2.
    pub sway: Option<(f64, SimDuration)>,
    /// Error-diffusion accumulator: drops are spaced deterministically so
    /// each monitor interval sees almost exactly the intended loss
    /// fraction (per-packet coin flips would let the victim escape on
    /// measurement noise).
    drop_debt: f64,
    /// Packets dropped so far.
    pub dropped: u64,
    /// Packets observed so far.
    pub observed: u64,
}

impl PccEqualizerTap {
    /// Attack `key` (data direction). `window_len` should be at or below
    /// the victim's monitor-interval length (estimable from the RTT, per
    /// the paper).
    pub fn new(key: FlowKey, window_len: SimDuration, seed: u64) -> Self {
        Self::with_arm_delay(key, window_len, SimDuration::from_secs(10), seed)
    }

    /// Like [`PccEqualizerTap::new`] with an explicit observe-then-attack
    /// delay.
    pub fn with_arm_delay(
        key: FlowKey,
        window_len: SimDuration,
        arm_after: SimDuration,
        seed: u64,
    ) -> Self {
        PccEqualizerTap {
            key,
            utility: UtilityParams::default(),
            window: VecDeque::new(),
            window_len,
            rate_samples: VecDeque::new(),
            median_span: SimDuration::from_millis(600),
            arm_after,
            first_seen: None,
            armed: false,
            pin_to: None,
            sway: None,
            // Seed kept for API stability: drop spacing is deterministic,
            // but the debt starts at a seed-derived phase so parallel taps
            // do not drop in lockstep.
            drop_debt: (seed % 97) as f64 / 97.0,
            dropped: 0,
            observed: 0,
        }
    }

    /// Current baseline rate estimate (bytes/s): the rolling median of
    /// short-window rates.
    pub fn baseline(&self) -> f64 {
        if self.rate_samples.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.rate_samples.iter().map(|&(_, r)| r).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    fn record_rate_sample(&mut self, now: SimTime, rate: f64) {
        // At most one sample per 5 ms keeps the median cheap.
        if let Some(&(t, _)) = self.rate_samples.back() {
            if now.since(t) < SimDuration::from_millis(5) {
                return;
            }
        }
        self.rate_samples.push_back((now, rate));
        while let Some(&(t, _)) = self.rate_samples.front() {
            if now.since(t) > self.median_span {
                self.rate_samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The rate the attacker is herding the victim toward at time `now`.
    fn target(&self, now: SimTime) -> f64 {
        let base = self.pin_to.unwrap_or_else(|| self.baseline());
        match self.sway {
            Some((frac, period)) if period > SimDuration::ZERO => {
                let phase = (now.as_nanos() / (period.as_nanos().max(1) / 2)) % 2;
                if phase == 0 {
                    base * (1.0 + frac)
                } else {
                    base * (1.0 - frac)
                }
            }
            _ => base,
        }
    }

    fn instantaneous_rate(&self, now: SimTime) -> f64 {
        // K packets span K-1 inter-arrival gaps: exclude the oldest
        // packet's bytes so the estimate is unbiased for paced traffic.
        let Some(&(t0, first_size)) = self.window.front() else {
            return 0.0;
        };
        let span = now.since(t0).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self.window.iter().map(|&(_, s)| s as u64).sum();
        (bytes - first_size as u64) as f64 / span
    }

    /// Drop probability for a packet observed at instantaneous `rate`.
    ///
    /// Two modes:
    ///
    /// * **Mirror equalizer** (`pin_to = None`) — the paper's §4.2 attack
    ///   verbatim: only above-baseline (`+ε`) phases are touched, dropped
    ///   just enough that their utility equals the *mirrored* low trial
    ///   `u(2·r* − rate)`. Each A/B pair ties, decisions stay
    ///   inconclusive, ε escalates to 5% and the victim oscillates around
    ///   `r*` forever. Loss appears **only** in `+ε` phases — exactly the
    ///   signature the §5 loss-pattern monitor looks for.
    /// * **Drag-to-target** (`pin_to = Some(target)`) — our extension: a
    ///   descending utility gradient above the target herds the victim to
    ///   an attacker-chosen rate (and the sway option modulates that
    ///   target to create destination-level fluctuations).
    fn drop_probability(&self, rate: f64, now: SimTime) -> f64 {
        match self.pin_to {
            None => self.mirror_drop(rate),
            Some(_) => self.drag_drop(rate, self.target(now)),
        }
    }

    fn mirror_drop(&self, rate: f64) -> f64 {
        let base = self.baseline();
        if base <= 0.0 || rate <= base * 1.005 {
            return 0.0; // at/below baseline: leave untouched
        }
        // Mirror the trial: a +ε phase is made to look exactly like the
        // matching −ε phase.
        let mirror = (2.0 * base - rate).max(0.5 * base);
        let u_target = allegro_utility(mirror / 125_000.0, 0.0, &self.utility);
        self.bisect_drop(rate, u_target)
    }

    /// Sub-knee penalty applied to above-base intervals while herding the
    /// victim downward. Dropping *below* the utility knee keeps per-MI
    /// loss-quantization noise small relative to the induced utility gap
    /// (on the knee's cliff, α·σ' amplifies ±1-packet noise past any
    /// signal, and decisions turn incoherent).
    const DRAG_PENALTY: f64 = 0.035;

    fn drag_drop(&self, rate: f64, target: f64) -> f64 {
        let base = self.baseline();
        if base <= 0.0 {
            return 0.0;
        }
        if base > target * 1.05 {
            // Descent phase: make every above-base trial lose decisively
            // (but stay below the 5% loss knee), so "down" wins each
            // experiment and the victim steps toward the target.
            if rate > base * 1.002 {
                Self::DRAG_PENALTY
            } else {
                0.0
            }
        } else {
            // Hold phase: equalize A/B pairs around the target — the
            // victim oscillates ±ε_max there, per §4.2.
            let mirror = (2.0 * target - rate).max(0.5 * target);
            if rate <= target * 1.005 {
                return 0.0;
            }
            let u_target = allegro_utility(mirror / 125_000.0, 0.0, &self.utility);
            self.bisect_drop(rate, u_target)
        }
    }

    fn bisect_drop(&self, rate: f64, u_target: f64) -> f64 {
        let x = rate / 125_000.0;
        if allegro_utility(x, 0.0, &self.utility) <= u_target {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.0f64, 0.5f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if allegro_utility(x, mid, &self.utility) > u_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl PccEqualizerTap {
    /// Equalizing drop probability against the learned baseline (test
    /// convenience; mirror mode).
    pub fn equalizing_drop(&self, rate: f64) -> f64 {
        self.mirror_drop(rate)
    }
}

impl LinkTap for PccEqualizerTap {
    fn intercept(
        &mut self,
        now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if pkt.key != self.key || pkt.payload == 0 {
            return TapAction::Forward;
        }
        self.observed += 1;
        if self.first_seen.is_none() {
            self.first_seen = Some(now);
        }
        if !self.armed {
            if let Some(t0) = self.first_seen {
                if now.since(t0) >= self.arm_after {
                    self.armed = true;
                }
            }
        }
        self.window.push_back((now, pkt.size));
        while let Some(&(t0, _)) = self.window.front() {
            if now.since(t0) > self.window_len {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let rate = self.instantaneous_rate(now);
        self.record_rate_sample(now, rate);
        if !self.armed {
            return TapAction::Forward; // passive phase: learn, never drop
        }
        let p = self.drop_probability(rate, now);
        self.drop_debt += p;
        if self.drop_debt >= 1.0 {
            self.drop_debt -= 1.0;
            self.dropped += 1;
            TapAction::Drop
        } else {
            TapAction::Forward
        }
    }

    fn label(&self) -> &str {
        "pcc-equalizer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::{Addr, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::tcp(Addr::new(10, 0, 0, 1), 5001, Addr::new(10, 0, 0, 2), 5001)
    }

    fn feed(tap: &mut PccEqualizerTap, start_ms: u64, rate_bps: f64, dur_ms: u64) -> (u64, u64) {
        // Feed packets at `rate_bps` bytes/s for `dur_ms`.
        let size = 1040u32;
        let gap_ns = (size as f64 / rate_bps * 1e9) as u64;
        let mut t = start_ms * 1_000_000;
        let mut fwd = 0;
        let mut drop = 0;
        while t < (start_ms + dur_ms) * 1_000_000 {
            let mut p = Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000);
            match tap.intercept(SimTime(t), Dir::AtoB, &mut p, &mut Vec::new()) {
                TapAction::Forward => fwd += 1,
                TapAction::Drop => drop += 1,
                _ => {}
            }
            t += gap_ns;
        }
        (fwd, drop)
    }

    #[test]
    fn ignores_other_flows() {
        let mut tap = PccEqualizerTap::new(key(), SimDuration::from_millis(25), 1);
        let other = FlowKey::tcp(Addr::new(9, 9, 9, 9), 1, Addr::new(8, 8, 8, 8), 2);
        let mut p = Packet::tcp(other, 1, 0, TcpFlags::default(), 1000);
        assert_eq!(
            tap.intercept(SimTime(0), Dir::AtoB, &mut p, &mut Vec::new()),
            TapAction::Forward
        );
        assert_eq!(tap.observed, 0);
    }

    #[test]
    fn learns_baseline_from_steady_traffic() {
        let mut tap = PccEqualizerTap::new(key(), SimDuration::from_millis(25), 2);
        feed(&mut tap, 0, 250_000.0, 2000);
        let b = tap.baseline();
        assert!((b - 250_000.0).abs() / 250_000.0 < 0.15, "baseline = {b}");
    }

    #[test]
    fn drops_above_baseline_spares_below() {
        let mut tap = PccEqualizerTap::with_arm_delay(
            key(),
            SimDuration::from_millis(25),
            SimDuration::from_secs(4),
            3,
        );
        // Learn a baseline at 250 kB/s (tap arms after 4 s).
        feed(&mut tap, 0, 250_000.0, 5000);
        // A +5% phase gets dropped on...
        let (_, dropped_high) = feed(&mut tap, 5000, 262_500.0, 1000);
        // ...then re-anchor the baseline and run a −5% phase: spared.
        feed(&mut tap, 6000, 250_000.0, 2000);
        let (_, dropped_low) = feed(&mut tap, 8000, 237_500.0, 1000);
        assert!(
            dropped_high > 0,
            "high phase must be attacked: {dropped_high}"
        );
        assert_eq!(dropped_low, 0, "low phase must be left alone");
    }

    #[test]
    fn equalizing_drop_is_moderate() {
        let mut tap = PccEqualizerTap::new(key(), SimDuration::from_millis(25), 4);
        feed(&mut tap, 0, 250_000.0, 3000);
        let p = tap.equalizing_drop(262_500.0);
        // Somewhere between 0 and ~2*eps_max + knee slack.
        assert!(p > 0.0 && p < 0.12, "p = {p}");
    }
}
