//! The threat model of §2: attacker privileges, capabilities, and targets.
//!
//! Following Kerckhoff's principle (as the paper does), every attacker is
//! assumed to know the victim system's algorithms and parameters; the
//! privilege level only constrains *where they can touch traffic*.

use std::fmt;

/// Attacker privilege levels (§2.1, Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Privilege {
    /// Compromised host(s): manipulate/inject traffic those hosts send or
    /// receive.
    Host,
    /// Man in the middle on one or more links: record, modify, drop,
    /// delay, inject on those links; cannot break encryption.
    Mitm,
    /// Full control of the network: all of the above anywhere, plus
    /// configuration changes.
    Operator,
}

/// What a privilege is being asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Observe traffic on a link the attacker does not terminate.
    RecordOnPath,
    /// Modify/drop/delay traffic on a link.
    ModifyOnPath,
    /// Inject traffic from a compromised host.
    InjectFromHost,
    /// Inject traffic at an arbitrary network location.
    InjectAnywhere,
    /// Change device configuration (routing tables, data-plane programs,
    /// ICMP behavior).
    Reconfigure,
}

impl Privilege {
    /// Whether this privilege grants `cap` (§2.1's capability matrix).
    pub fn grants(&self, cap: Capability) -> bool {
        use Capability::*;
        match self {
            Privilege::Host => matches!(cap, InjectFromHost),
            Privilege::Mitm => matches!(cap, RecordOnPath | ModifyOnPath | InjectFromHost),
            Privilege::Operator => true,
        }
    }

    /// All privileges, weakest first.
    pub fn all() -> [Privilege; 3] {
        [Privilege::Host, Privilege::Mitm, Privilege::Operator]
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privilege::Host => write!(f, "host"),
            Privilege::Mitm => write!(f, "man-in-the-middle"),
            Privilege::Operator => write!(f, "operator"),
        }
    }
}

/// Attack targets (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Devices that forward traffic (routers, data-driven data planes).
    Infrastructure,
    /// Endpoints and the applications/protocols running on them.
    Endpoints,
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Infrastructure => write!(f, "network infrastructure"),
            Target::Endpoints => write!(f, "endpoints"),
        }
    }
}

/// Metadata describing one attack implementation (for the experiment
/// harness and reports).
#[derive(Debug, Clone)]
pub struct AttackDescriptor {
    /// Short name ("blink-takeover").
    pub name: &'static str,
    /// Paper section ("§3.1").
    pub section: &'static str,
    /// Minimum privilege required.
    pub privilege: Privilege,
    /// What it targets.
    pub target: Target,
    /// One-line summary.
    pub summary: &'static str,
}

impl AttackDescriptor {
    /// Assert that an attacker at `have` may run this attack (used by the
    /// scenario builder to keep experiments honest about the threat model).
    pub fn check_privilege(&self, have: Privilege) -> Result<(), String> {
        if have >= self.privilege {
            Ok(())
        } else {
            Err(format!(
                "attack '{}' needs {} privilege, attacker has {}",
                self.name, self.privilege, have
            ))
        }
    }
}

/// The catalogue of implemented attacks.
pub fn catalogue() -> Vec<AttackDescriptor> {
    vec![
        AttackDescriptor {
            name: "blink-takeover",
            section: "§3.1",
            privilege: Privilege::Host,
            target: Target::Infrastructure,
            summary: "fake TCP retransmissions capture Blink's flow sample and trigger spurious rerouting",
        },
        AttackDescriptor {
            name: "pytheas-botnet-poison",
            section: "§4.1",
            privilege: Privilege::Host,
            target: Target::Endpoints,
            summary: "bot sessions report fake QoE, driving group-wide decisions for honest clients",
        },
        AttackDescriptor {
            name: "pytheas-cdn-throttle",
            section: "§4.1",
            privilege: Privilege::Mitm,
            target: Target::Endpoints,
            summary: "throttling one CDN's flows herds whole groups onto other sites",
        },
        AttackDescriptor {
            name: "pcc-oscillate",
            section: "§4.2",
            privilege: Privilege::Mitm,
            target: Target::Endpoints,
            summary: "selective drops equalize PCC's A/B utilities, pinning rates at ±5% oscillation",
        },
        AttackDescriptor {
            name: "operator-bounce",
            section: "§4.1",
            privilege: Privilege::Operator,
            target: Target::Endpoints,
            summary: "data-plane program ping-pongs selected traffic between devices to inflate latency",
        },
        AttackDescriptor {
            name: "traceroute-spoof",
            section: "§4.3",
            privilege: Privilege::Mitm,
            target: Target::Endpoints,
            summary: "rewriting unauthenticated ICMP time-exceeded replies fakes the topology users see",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_ordering_is_strength() {
        assert!(Privilege::Host < Privilege::Mitm);
        assert!(Privilege::Mitm < Privilege::Operator);
    }

    #[test]
    fn capability_matrix() {
        use Capability::*;
        assert!(Privilege::Host.grants(InjectFromHost));
        assert!(!Privilege::Host.grants(ModifyOnPath));
        assert!(!Privilege::Host.grants(Reconfigure));
        assert!(Privilege::Mitm.grants(RecordOnPath));
        assert!(Privilege::Mitm.grants(ModifyOnPath));
        assert!(!Privilege::Mitm.grants(Reconfigure));
        assert!(!Privilege::Mitm.grants(InjectAnywhere));
        for c in [
            RecordOnPath,
            ModifyOnPath,
            InjectFromHost,
            InjectAnywhere,
            Reconfigure,
        ] {
            assert!(Privilege::Operator.grants(c));
        }
    }

    #[test]
    fn privilege_check_enforced() {
        let cat = catalogue();
        let pcc = cat.iter().find(|a| a.name == "pcc-oscillate").unwrap();
        assert!(pcc.check_privilege(Privilege::Host).is_err());
        assert!(pcc.check_privilege(Privilege::Mitm).is_ok());
        assert!(pcc.check_privilege(Privilege::Operator).is_ok());
    }

    #[test]
    fn catalogue_covers_all_case_studies() {
        let cat = catalogue();
        assert!(cat.len() >= 5);
        assert!(cat.iter().any(|a| a.target == Target::Infrastructure));
        assert!(cat.iter().any(|a| a.target == Target::Endpoints));
        for p in Privilege::all() {
            let _ = p.to_string();
        }
    }
}
