//! # dui-attacks
//!
//! The paper's primary contribution, as a library: a typed **threat
//! model** for adversarial inputs to data-driven networks (Fig. 1 / §2)
//! and the **concrete attacks** of §3–§4, each implemented against the
//! corresponding system crate:
//!
//! | Attack | Paper | Privilege | Target |
//! |---|---|---|---|
//! | [`blink_takeover`] — fake TCP retransmissions hijack Blink's flow sample and trigger spurious reroutes | §3.1 | Host | Infrastructure |
//! | [`pytheas_poison`] — bot sessions / CDN throttling poison group-level QoE decisions | §4.1 | Host / MitM / Operator | Endpoints |
//! | [`pcc_oscillate`] — selective drops equalize PCC's A/B utilities, pinning it at ±5% oscillation | §4.2 | MitM | Endpoints |
//! | [`traceroute_spoof`] — unauthenticated ICMP lets anyone in-path present fake topologies | §4.3 | MitM / Operator | Endpoints |
//! | [`operator`] — data-plane program bounces selected traffic between devices, inflating latency | §4.1 | Operator | Endpoints |
//! | [`syn_flood`] — spoofed SYNs exhaust a stateful listener's half-open backlog | §2 | Host | Infrastructure |
//!
//! [`privilege`] defines the attacker taxonomy and capability checks;
//! [`primitives`] provides the generic building blocks (probabilistic
//! droppers, throttlers, delayers, header rewriters) the case studies
//! compose.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod blink_takeover;
pub mod operator;
pub mod pcc_oscillate;
pub mod primitives;
pub mod privilege;
pub mod pytheas_poison;
pub mod syn_flood;
pub mod traceroute_spoof;

pub use blink_takeover::{BlinkTakeover, MaliciousRetxHost};
pub use operator::BounceProgram;
pub use pcc_oscillate::PccEqualizerTap;
pub use privilege::{AttackDescriptor, Capability, Privilege, Target};
pub use pytheas_poison::{BotnetPoisoning, CdnThrottleAttack};
pub use syn_flood::{SynFloodConfig, SynFloodHost};
pub use traceroute_spoof::IcmpSpoofTap;
