//! Operator-privilege attacks (§2.1's strongest attacker; used in §4.1):
//! "an attacker with operator-level privileges can program the data-plane
//! hardware to identify traffic of interest, and reduce its throughput,
//! increase loss, and even increase latency by … bouncing them
//! back-and-forth between devices."
//!
//! [`BounceProgram`] is that data-plane program: traffic matching a
//! predicate is forwarded to a partner router `bounces` times before
//! continuing, inflating its latency by `2 · bounces · link_delay`
//! without dropping a single packet — invisible to loss-based monitoring.
//!
//! The program is **stateless per packet**: it recognizes ping-pong legs
//! purely from the TTL the router already decrements on every hop, the
//! way a real match-action table would (TTL is a header field; flow
//! state keyed on switch-internal packet ids is not implementable on
//! hardware anyway). Statelessness is also what makes the program safe
//! under the domain-parallel engine: it never reads `pkt.id` of packets
//! it did not create, so the packet-id contract
//! (`docs/parallel-domains.md`) holds and scenarios using it stay
//! `--sim-threads` eligible.

use crate::privilege::{AttackDescriptor, Privilege, Target};
use dui_netsim::node::{DataPlaneProgram, Verdict};
use dui_netsim::packet::{Packet, DEFAULT_TTL};
use dui_netsim::time::SimTime;
use dui_stats::digest::StateDigest;
use dui_netsim::topology::NodeId;
use std::any::Any;

/// Descriptor for the attack.
pub fn descriptor() -> AttackDescriptor {
    AttackDescriptor {
        name: "operator-bounce",
        section: "§4.1",
        privilege: Privilege::Operator,
        target: Target::Endpoints,
        summary:
            "data-plane program ping-pongs selected traffic between devices to inflate latency",
    }
}

/// Which packets to torment.
pub type TrafficMatcher = Box<dyn Fn(&Packet) -> bool + Send>;

/// The bouncing program. Install one instance on **each** of the two
/// partner routers; they recognize ping-pong legs by the packet's TTL.
///
/// A matched packet first reaches the pair with
/// `TTL = DEFAULT_TTL - 1` (the entry router decrements before its
/// programs run), and every further leg burns one more. The program
/// keeps tossing the packet to its partner while the TTL is above
/// `entry - 2 · bounces` and releases it to normal routing below that —
/// `bounces` extra round trips over the pair's link, no per-packet
/// state. Packets that spent extra hops upstream of the pair get
/// correspondingly fewer legs (graceful degradation, never TTL expiry).
pub struct BounceProgram {
    matcher: TrafficMatcher,
    /// The partner router to bounce via.
    partner: NodeId,
    /// The TTL a matched packet carries when it first reaches the pair.
    entry_ttl: u8,
    /// Release threshold: bounce while `pkt.ttl > release_ttl`.
    release_ttl: u8,
    /// Packets tormented so far (counted at their entry TTL, so each
    /// packet is counted once across the pair).
    pub bounced_packets: u64,
}

impl BounceProgram {
    /// Bounce matching traffic to `partner` and back `bounces` times.
    pub fn new(matcher: TrafficMatcher, partner: NodeId, bounces: u32) -> Self {
        assert!(bounces >= 1);
        let entry_ttl = DEFAULT_TTL - 1;
        BounceProgram {
            matcher,
            partner,
            entry_ttl,
            release_ttl: entry_ttl.saturating_sub((2 * bounces).min(u8::MAX as u32) as u8),
            bounced_packets: 0,
        }
    }
}

impl DataPlaneProgram for BounceProgram {
    fn process(
        &mut self,
        _now: SimTime,
        pkt: &Packet,
        _default_next: Option<NodeId>,
    ) -> Option<Verdict> {
        if !(self.matcher)(pkt) {
            return None;
        }
        if pkt.ttl > self.release_ttl {
            if pkt.ttl == self.entry_ttl {
                self.bounced_packets += 1;
            }
            return Some(Verdict::Forward(self.partner));
        }
        None // release to normal routing
    }

    fn label(&self) -> &str {
        "operator-bounce"
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_u8(self.entry_ttl);
        d.write_u8(self.release_ttl);
        d.write_u64(self.bounced_packets);
    }
}

// Test helper: a small packet with a TCP key but UDP-ish semantics.
#[cfg(test)]
trait PacketExt {
    fn udp_like(key: dui_netsim::packet::FlowKey) -> Packet;
}
#[cfg(test)]
impl PacketExt for Packet {
    fn udp_like(key: dui_netsim::packet::FlowKey) -> Packet {
        Packet::tcp(key, 1, 0, dui_netsim::packet::TcpFlags::default(), 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::node::{RouterLogic, SinkHost};
    use dui_netsim::packet::{Addr, FlowKey};
    use dui_netsim::prelude::*;
    use dui_netsim::trace::TraceKind;

    /// h1 - r1 = r2 - h2, with the bounce pair (r1, r2).
    fn build(bounces: Option<u32>) -> (Simulator, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
        b.link(h1, r1, Bandwidth::gbps(1), SimDuration::from_millis(1), 64);
        b.link(r1, r2, Bandwidth::gbps(1), SimDuration::from_millis(5), 64);
        b.link(r2, h2, Bandwidth::gbps(1), SimDuration::from_millis(1), 64);
        let mut sim = Simulator::new(b.build(), 1);
        let matcher = |p: &Packet| p.key.dport == 80;
        match bounces {
            Some(n) => {
                sim.set_logic(
                    r1,
                    Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
                        Box::new(matcher),
                        r2,
                        n,
                    )))),
                );
                sim.set_logic(
                    r2,
                    Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
                        Box::new(matcher),
                        r1,
                        n,
                    )))),
                );
            }
            None => {
                sim.set_logic(r1, Box::new(RouterLogic::new()));
                sim.set_logic(r2, Box::new(RouterLogic::new()));
            }
        }
        sim.set_logic(h2, Box::new(SinkHost::new()));
        sim.enable_trace(1000);
        (sim, h1, h2)
    }

    fn arrival_time(sim: &Simulator, h2: NodeId) -> SimTime {
        sim.trace_events()
            .iter()
            .filter(|e| e.kind == TraceKind::Deliver && e.node == Some(h2))
            .map(|e| e.time)
            .next_back()
            .expect("packet delivered")
    }

    #[test]
    fn bouncing_inflates_latency_without_loss() {
        let key = FlowKey::tcp(Addr::new(10, 0, 0, 1), 5555, Addr::new(10, 0, 0, 2), 80);
        // Honest: ~7 ms one way.
        let (mut sim, h1, h2) = build(None);
        sim.inject(h1, Packet::udp_like(key));
        sim.run_until(SimTime::from_secs(1));
        let honest = arrival_time(&sim, h2);
        // Bounced 4 legs: +4 crossings of the 5 ms core link ≈ +20 ms.
        let (mut sim, h1, h2) = build(Some(4));
        sim.inject(h1, Packet::udp_like(key));
        sim.run_until(SimTime::from_secs(1));
        let bounced = arrival_time(&sim, h2);
        assert!(sim.counters().total_drops() == 0, "no loss signature");
        let extra = bounced.since(honest);
        assert!(
            extra >= SimDuration::from_millis(15),
            "bounce must inflate latency: +{extra}"
        );
        // The victim still receives the packet.
        let sink: &mut SinkHost = sim.logic_mut(h2);
        assert_eq!(sink.total_packets, 1);
    }

    #[test]
    fn unmatched_traffic_unaffected() {
        let key = FlowKey::tcp(Addr::new(10, 0, 0, 1), 5555, Addr::new(10, 0, 0, 2), 443);
        let (mut sim, h1, h2) = build(Some(4));
        sim.inject(h1, Packet::udp_like(key));
        sim.run_until(SimTime::from_secs(1));
        let t = arrival_time(&sim, h2);
        assert!(t < SimTime::from_secs_f64(0.010), "port 443 sails through");
    }

    #[test]
    fn requires_operator_privilege() {
        let d = descriptor();
        assert!(d.check_privilege(Privilege::Mitm).is_err());
        assert!(d.check_privilege(Privilege::Operator).is_ok());
    }
}
