//! Generic MitM building blocks: probabilistic droppers, token-bucket
//! throttlers, fixed delayers, and TCP header rewriters. The case-study
//! attacks compose these; they are also useful on their own for the
//! endpoint attacks sketched in the paper's §4 introduction (e.g.
//! "manipulated window size in TCP").

use dui_netsim::link::{Dir, LinkTap, TapAction};
use dui_netsim::packet::{FlowKey, Header, Packet};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::Rng;

/// Predicate selecting which packets a tap touches.
pub type PacketFilter = Box<dyn Fn(&Packet) -> bool + Send>;

/// Match every packet.
pub fn any_packet() -> PacketFilter {
    Box::new(|_| true)
}

/// Match packets of one flow (either direction).
pub fn flow_filter(key: FlowKey) -> PacketFilter {
    Box::new(move |p| p.key == key || p.key == key.reversed())
}

/// Match packets whose destination is in the given set of flows' forward
/// direction.
pub fn forward_flow_filter(key: FlowKey) -> PacketFilter {
    Box::new(move |p| p.key == key)
}

/// Drop matching packets with a fixed probability.
pub struct RandomDropper {
    filter: PacketFilter,
    prob: f64,
    rng: Rng,
    /// Packets dropped so far.
    pub dropped: u64,
}

impl RandomDropper {
    /// Drop matching packets with probability `prob`.
    pub fn new(filter: PacketFilter, prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        RandomDropper {
            filter,
            prob,
            rng: Rng::new(seed),
            dropped: 0,
        }
    }
}

impl LinkTap for RandomDropper {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if (self.filter)(pkt) && self.rng.chance(self.prob) {
            self.dropped += 1;
            TapAction::Drop
        } else {
            TapAction::Forward
        }
    }

    fn label(&self) -> &str {
        "random-dropper"
    }
}

/// Token-bucket throttler: matching packets beyond the rate budget are
/// dropped (the Pytheas CDN-throttle uses this).
pub struct Throttler {
    filter: PacketFilter,
    /// Budget refill rate, bytes/second.
    rate: f64,
    /// Bucket capacity in bytes.
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
    /// Packets dropped so far.
    pub dropped: u64,
}

impl Throttler {
    /// Throttle matching traffic to `rate` bytes/s with `burst` bytes of
    /// burst tolerance.
    pub fn new(filter: PacketFilter, rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0);
        Throttler {
            filter,
            rate,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
            dropped: 0,
        }
    }
}

impl LinkTap for Throttler {
    fn intercept(
        &mut self,
        now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if !(self.filter)(pkt) {
            return TapAction::Forward;
        }
        let dt = now.since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= pkt.size as f64 {
            self.tokens -= pkt.size as f64;
            TapAction::Forward
        } else {
            self.dropped += 1;
            TapAction::Drop
        }
    }

    fn label(&self) -> &str {
        "throttler"
    }
}

/// Delay matching packets by a fixed amount (latency inflation — the §4.1
/// operator attack "increase latency by sending packets along longer
/// paths or bouncing them back-and-forth" has the same observable effect).
pub struct Delayer {
    filter: PacketFilter,
    delay: SimDuration,
    /// Packets delayed so far.
    pub delayed: u64,
}

impl Delayer {
    /// Delay matching packets by `delay`.
    pub fn new(filter: PacketFilter, delay: SimDuration) -> Self {
        Delayer {
            filter,
            delay,
            delayed: 0,
        }
    }
}

impl LinkTap for Delayer {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if (self.filter)(pkt) {
            self.delayed += 1;
            TapAction::Delay(self.delay)
        } else {
            TapAction::Forward
        }
    }

    fn label(&self) -> &str {
        "delayer"
    }
}

/// Clamp the advertised TCP receive window of matching ACKs — the
/// endpoint performance attack from §4's introduction ("manipulated
/// window size in TCP"): the sender obediently slows to a crawl.
pub struct WindowClamper {
    filter: PacketFilter,
    /// Window ceiling in bytes.
    pub clamp: u32,
    /// Packets rewritten so far.
    pub rewritten: u64,
}

impl WindowClamper {
    /// Clamp matching packets' advertised window to `clamp` bytes.
    pub fn new(filter: PacketFilter, clamp: u32) -> Self {
        WindowClamper {
            filter,
            clamp,
            rewritten: 0,
        }
    }
}

impl LinkTap for WindowClamper {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        if (self.filter)(pkt) {
            if let Header::Tcp { window, .. } = &mut pkt.header {
                if *window > self.clamp {
                    *window = self.clamp;
                    self.rewritten += 1;
                }
            }
        }
        TapAction::Forward
    }

    fn label(&self) -> &str {
        "window-clamper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::{Addr, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::tcp(Addr::new(1, 0, 0, 1), 10, Addr::new(2, 0, 0, 2), 80)
    }

    fn data() -> Packet {
        Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn dropper_respects_probability() {
        let mut d = RandomDropper::new(any_packet(), 0.5, 1);
        let mut dropped = 0;
        for _ in 0..10_000 {
            let mut p = data();
            if d.intercept(t(0), Dir::AtoB, &mut p, &mut Vec::new()) == TapAction::Drop {
                dropped += 1;
            }
        }
        assert!((dropped as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert_eq!(d.dropped, dropped);
    }

    #[test]
    fn dropper_ignores_unmatched() {
        let other = FlowKey::tcp(Addr::new(9, 9, 9, 9), 1, Addr::new(8, 8, 8, 8), 2);
        let mut d = RandomDropper::new(flow_filter(other), 1.0, 1);
        let mut p = data();
        assert_eq!(
            d.intercept(t(0), Dir::AtoB, &mut p, &mut Vec::new()),
            TapAction::Forward
        );
    }

    #[test]
    fn flow_filter_matches_both_directions() {
        let f = flow_filter(key());
        let mut fwd = data();
        let mut rev = data();
        rev.key = key().reversed();
        assert!(f(&fwd));
        assert!(f(&rev));
        let _ = (&mut fwd, &mut rev);
        let g = forward_flow_filter(key());
        assert!(g(&fwd));
        assert!(!g(&rev));
    }

    #[test]
    fn throttler_enforces_rate() {
        // 10 kB/s budget, 2 kB burst; offer 1 kB packets every 10 ms
        // (100 kB/s) for 1 s: ~10% should survive after the burst.
        let mut th = Throttler::new(any_packet(), 10_000.0, 2_000.0);
        let mut passed = 0u32;
        for i in 0..100u64 {
            let mut p = data(); // 1040 B on the wire
            if th.intercept(t(i * 10), Dir::AtoB, &mut p, &mut Vec::new()) == TapAction::Forward {
                passed += 1;
            }
        }
        // Budget: 2 kB burst + 1 s * 10 kB/s = 12 kB => ~11 packets.
        assert!((8..=14).contains(&passed), "passed = {passed}");
    }

    #[test]
    fn delayer_delays_matching() {
        let mut d = Delayer::new(any_packet(), SimDuration::from_millis(50));
        let mut p = data();
        assert_eq!(
            d.intercept(t(0), Dir::AtoB, &mut p, &mut Vec::new()),
            TapAction::Delay(SimDuration::from_millis(50))
        );
        assert_eq!(d.delayed, 1);
    }

    #[test]
    fn window_clamper_rewrites_in_place() {
        let mut w = WindowClamper::new(any_packet(), 1000);
        let mut p = data(); // window 65535 by constructor
        assert_eq!(
            w.intercept(t(0), Dir::AtoB, &mut p, &mut Vec::new()),
            TapAction::Forward
        );
        match p.header {
            Header::Tcp { window, .. } => assert_eq!(window, 1000),
            _ => unreachable!(),
        }
        assert_eq!(w.rewritten, 1);
        // Already-small windows untouched.
        let mut again = p.clone();
        w.intercept(t(0), Dir::AtoB, &mut again, &mut Vec::new());
        assert_eq!(w.rewritten, 1);
    }
}
