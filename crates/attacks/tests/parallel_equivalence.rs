//! Sequential-vs-parallel equivalence for the operator bounce attack —
//! the companion to `crates/netsim/tests/parallel_equivalence.rs`,
//! living here because the netsim crate cannot depend on dui-attacks.
//!
//! The TTL-threshold [`BounceProgram`] reads no foreign packet ids, so
//! a scenario running it is `--sim-threads` eligible: state hashes,
//! counters and the program's own bounce tally must be byte-identical
//! at every thread count, with the bounce pair deliberately straddling
//! the domain cut so tormented packets cross the barrier repeatedly.

use dui_attacks::BounceProgram;
use dui_netsim::parallel::ParallelOutcome;
use dui_netsim::prelude::*;
use dui_stats::digest::StateDigest;
use std::any::Any;

fn at_ms(ms: u64) -> SimTime {
    SimTime(ms * 1_000_000)
}

/// Deterministic test-local PRNG (the engine RNG is off-limits under
/// the parallel engine).
#[derive(Debug, Clone, Copy)]
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Timer-driven UDP source aimed at one victim; half its packets match
/// the bounce predicate (dport 9000), half sail through (dport 9001).
struct BurstHost {
    addr: Addr,
    victim: Addr,
    rng: TestRng,
    bursts_left: u32,
    sent: u64,
    got_packets: u64,
}

impl BurstHost {
    fn new(addr: Addr, victim: Addr, seed: u64, bursts: u32) -> Self {
        BurstHost {
            addr,
            victim,
            rng: TestRng(seed | 1),
            bursts_left: bursts,
            sent: 0,
            got_packets: 0,
        }
    }
}

impl NodeLogic for BurstHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_millis(1 + self.rng.pick(4)), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if self.bursts_left == 0 {
            return;
        }
        self.bursts_left -= 1;
        for _ in 0..1 + self.rng.pick(3) {
            let dport = 9000 + self.rng.pick(2) as u16;
            let sport = 4000 + self.rng.pick(16) as u16;
            let size = 100 + self.rng.pick(1000) as u32;
            ctx.send(Packet::udp(
                FlowKey::udp(self.addr, sport, self.victim, dport),
                size,
            ));
            self.sent += 1;
        }
        ctx.set_timer(SimDuration::from_millis(1 + self.rng.pick(6)), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {
        self.got_packets += 1;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.0);
        d.write_u64(self.bursts_left as u64);
        d.write_u64(self.sent);
        d.write_u64(self.got_packets);
    }
}

/// Two clusters joined by a millisecond WAN link — the domain cut —
/// with the bounce pair (r1, r2) straddling it. Sources live in
/// cluster 1, the victim in cluster 2.
fn build(seed: u64, bounces: u32) -> (Simulator, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let victim_addr = Addr::new(10, 1, 0, 1);
    let mut sources = Vec::new();
    for h in 0..3u8 {
        let addr = Addr::new(10, 0, h, 1);
        let node = b.host(&format!("src{h}"), addr);
        b.link(node, r1, Bandwidth::gbps(1), SimDuration::from_nanos(400), 64);
        sources.push((node, addr));
    }
    let victim = b.host("victim", victim_addr);
    b.link(victim, r2, Bandwidth::gbps(1), SimDuration::from_nanos(400), 64);
    b.link(r1, r2, Bandwidth::mbps(50), SimDuration::from_millis(3), 32);
    let mut sim = Simulator::new(b.build(), seed);
    let matcher = |p: &Packet| p.key.dport == 9000;
    sim.set_logic(
        r1,
        Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
            Box::new(matcher),
            r2,
            bounces,
        )))),
    );
    sim.set_logic(
        r2,
        Box::new(RouterLogic::new().with_program(Box::new(BounceProgram::new(
            Box::new(matcher),
            r1,
            bounces,
        )))),
    );
    for (i, &(node, addr)) in sources.iter().enumerate() {
        sim.set_logic(
            node,
            Box::new(BurstHost::new(addr, victim_addr, seed ^ ((i as u64) << 8), 30)),
        );
    }
    sim.set_logic(victim, Box::new(SinkHost::new()));
    (sim, r1, r2, victim)
}

fn bounced(sim: &mut Simulator, r: NodeId) -> u64 {
    let logic: &mut RouterLogic = sim.logic_mut(r);
    logic.program_mut::<BounceProgram>(0).bounced_packets
}

#[test]
fn bounce_scenario_matches_sequential_across_thread_counts() {
    for seed in [11u64, 12] {
        let (mut reference, r1, r2, _) = build(seed, 3);
        let mut want_hashes = Vec::new();
        for ms in [60u64, 150, 300] {
            reference.run_until(at_ms(ms));
            want_hashes.push(reference.state_hash());
        }
        let want_counters = reference.counters();
        let want_bounced = (bounced(&mut reference, r1), bounced(&mut reference, r2));
        assert!(
            want_bounced.0 > 0,
            "attack never engaged (seed {seed}): {want_bounced:?}"
        );
        for threads in [1usize, 2, 4, 8] {
            let (mut sim, r1, r2, _) = build(seed, 3);
            sim.set_sim_threads(threads);
            let mut outcome = None;
            let mut hashes = Vec::new();
            for ms in [60u64, 150, 300] {
                sim.run_until(at_ms(ms));
                if outcome.is_none() {
                    outcome = sim.last_parallel_outcome().copied();
                }
                hashes.push(sim.state_hash());
            }
            assert_eq!(
                hashes, want_hashes,
                "state hash diverged (seed {seed}, {threads} threads)"
            );
            match outcome {
                Some(ParallelOutcome::Ran(report)) => {
                    assert!(report.domains >= 2, "bounce pair must straddle a cut");
                }
                other => panic!("expected a parallel run, got {other:?}"),
            }
            assert_eq!(sim.counters(), want_counters, "seed {seed}, {threads} threads");
            assert_eq!(
                (bounced(&mut sim, r1), bounced(&mut sim, r2)),
                want_bounced,
                "bounce tally diverged (seed {seed}, {threads} threads)"
            );
        }
    }
}

#[test]
fn bounced_traffic_still_arrives_under_parallel_engine() {
    let (mut sim, _, _, victim) = build(21, 3);
    sim.set_sim_threads(4);
    sim.run_until(at_ms(300));
    let sink: &mut SinkHost = sim.logic_mut(victim);
    assert!(sink.total_packets > 0, "victim starved");
    assert_eq!(sim.counters().total_drops(), 0, "bounce must not drop");
}
