//! Node behaviors: the [`NodeLogic`] trait, the generic [`RouterLogic`]
//! with its data-plane program hook (our stand-in for a P4-programmable
//! switch), and a simple [`SinkHost`].

use crate::packet::{Addr, Header, Packet, Prefix, DEFAULT_TTL};
use crate::sim::Ctx;
use crate::time::SimTime;
use crate::topology::NodeId;
use std::any::Any;
use std::collections::HashMap;

/// Behavior attached to a node. Implementations live in higher crates
/// (TCP hosts in `dui-tcp`, PCC endpoints in `dui-pcc`, …); `dui-netsim`
/// itself ships [`RouterLogic`] and [`SinkHost`].
pub trait NodeLogic {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// A packet arrived at this node.
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet);

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    /// Downcasting hook so tests and harnesses can inspect concrete state.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// What a data-plane program decides for a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward to this adjacent next hop.
    Forward(NodeId),
    /// Drop the packet.
    Drop,
}

/// A program running in the forwarding pipeline of a [`RouterLogic`] — our
/// abstraction of a P4 program on a programmable switch. Blink implements
/// this trait in `dui-blink`.
///
/// Programs see every transiting packet *after* TTL handling and may
/// override the routing table's default next hop. They keep arbitrary
/// mutable state (the "stateful data plane" whose expanded attack surface
/// §3 of the paper is about) but are only consulted on packet arrival:
/// time-based state transitions must be implemented lazily against `now`,
/// exactly as real data-plane programs read a timestamp metadata field.
pub trait DataPlaneProgram {
    /// Inspect (and possibly steer) one transiting packet.
    /// `default_next` is the routing table's choice, if the destination is
    /// routable. Return `None` to express no opinion.
    fn process(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        default_next: Option<NodeId>,
    ) -> Option<Verdict>;

    /// Label for traces.
    fn label(&self) -> &str {
        "program"
    }

    /// Downcasting hook for harness inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Decides what ICMP time-exceeded reply (if any) a router sends when a
/// probe expires at it. The honest behavior reports the router's own
/// address; NetHide-style deployments (and malicious operators — §4.3)
/// substitute a virtual hop address or stay silent.
pub trait IcmpRewriter {
    /// `probe` expired at this router. Return the address the time-exceeded
    /// reply should claim, or `None` to suppress the reply.
    fn report_address(&mut self, router: NodeId, probe: &Packet) -> Option<Addr>;

    /// `probe` is about to be forwarded to its destination host (this is
    /// the last router). Return `Some(addr)` to swallow it and reply with
    /// a time-exceeded claiming `addr` instead — how an edge deployment
    /// presents *virtual paths longer than the physical one* (extra
    /// fictitious hops must be answered before the real destination gets
    /// the probe). Default: let it through.
    fn capture_at_edge(&mut self, _router: NodeId, _probe: &Packet) -> Option<Addr> {
        None
    }

    /// Downcasting hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A forwarding device: decrements TTL, answers expired traceroute probes
/// with ICMP time-exceeded, runs data-plane programs, forwards.
pub struct RouterLogic {
    programs: Vec<Box<dyn DataPlaneProgram>>,
    icmp_rewriter: Option<Box<dyn IcmpRewriter>>,
    /// Whether to emit ICMP time-exceeded at all (real routers often rate
    /// limit or disable this).
    pub respond_time_exceeded: bool,
}

impl Default for RouterLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterLogic {
    /// Plain honest router.
    pub fn new() -> Self {
        RouterLogic {
            programs: Vec::new(),
            icmp_rewriter: None,
            respond_time_exceeded: true,
        }
    }

    /// Attach a data-plane program (operator-privilege action).
    pub fn with_program(mut self, program: Box<dyn DataPlaneProgram>) -> Self {
        self.programs.push(program);
        self
    }

    /// Attach an ICMP rewriter (operator-privilege action; used by NetHide
    /// and by the malicious-operator attack).
    pub fn with_icmp_rewriter(mut self, rw: Box<dyn IcmpRewriter>) -> Self {
        self.icmp_rewriter = Some(rw);
        self
    }

    /// Borrow program `i`, downcast to its concrete type.
    pub fn program_mut<T: DataPlaneProgram + 'static>(&mut self, i: usize) -> &mut T {
        self.programs[i]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("program has a different concrete type")
    }

    fn handle_local(&mut self, ctx: &mut Ctx, pkt: Packet) {
        // The only local traffic routers answer is ping.
        if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
            let mut reply = Packet {
                id: 0,
                key: pkt.key.reversed(),
                header: Header::IcmpEchoReply { ident, seq },
                size: 64,
                ttl: DEFAULT_TTL,
                sent_at: SimTime::ZERO,
                payload: 0,
            };
            reply.key.src = ctx.addr();
            ctx.send(reply);
        }
    }
}

impl NodeLogic for RouterLogic {
    fn on_packet(&mut self, ctx: &mut Ctx, mut pkt: Packet) {
        if pkt.key.dst == ctx.addr() {
            ctx.count_router_local();
            self.handle_local(ctx, pkt);
            return;
        }
        // TTL expiry — the mechanism traceroute exploits (paper §4.3).
        if pkt.ttl <= 1 {
            ctx.count_ttl_drop();
            if self.respond_time_exceeded {
                if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
                    let me = ctx.node;
                    let claimed = match &mut self.icmp_rewriter {
                        Some(rw) => rw.report_address(me, &pkt),
                        None => Some(ctx.addr()),
                    };
                    if let Some(claimed) = claimed {
                        let reply = Packet {
                            id: 0,
                            key: crate::packet::FlowKey {
                                src: claimed,
                                dst: pkt.key.src,
                                sport: 0,
                                dport: 0,
                                proto: crate::packet::Proto::Icmp,
                            },
                            header: Header::IcmpTimeExceeded {
                                reported_by: claimed,
                                probe_ident: ident,
                                probe_seq: seq,
                            },
                            size: 56,
                            ttl: DEFAULT_TTL,
                            sent_at: SimTime::ZERO,
                            payload: 0,
                        };
                        ctx.send(reply);
                    }
                }
            }
            return;
        }
        pkt.ttl -= 1;
        let dst_node = ctx.resolve_dst(pkt.key.dst);
        let default_next = dst_node.and_then(|d| ctx.routing().next_hop(ctx.node, d));
        // Edge capture: a rewriter may answer probes that would otherwise
        // reach the destination, extending the apparent path.
        if let (Header::IcmpEchoRequest { ident, seq }, Some(rw)) =
            (&pkt.header, &mut self.icmp_rewriter)
        {
            if dst_node.is_some() && default_next == dst_node {
                let me = ctx.node;
                if let Some(claimed) = rw.capture_at_edge(me, &pkt) {
                    let reply = Packet {
                        id: 0,
                        key: crate::packet::FlowKey {
                            src: claimed,
                            dst: pkt.key.src,
                            sport: 0,
                            dport: 0,
                            proto: crate::packet::Proto::Icmp,
                        },
                        header: Header::IcmpTimeExceeded {
                            reported_by: claimed,
                            probe_ident: *ident,
                            probe_seq: *seq,
                        },
                        size: 56,
                        ttl: DEFAULT_TTL,
                        sent_at: SimTime::ZERO,
                        payload: 0,
                    };
                    ctx.send(reply);
                    return;
                }
            }
        }
        let mut verdict = default_next.map(Verdict::Forward);
        let mut from_program = false;
        let now = ctx.now();
        for prog in &mut self.programs {
            if let Some(v) = prog.process(now, &pkt, default_next) {
                from_program = true;
                verdict = Some(v);
            }
        }
        match verdict {
            Some(Verdict::Forward(next)) => {
                if from_program {
                    ctx.count_program_forward();
                }
                ctx.send_via(next, pkt)
            }
            Some(Verdict::Drop) => ctx.count_program_drop(),
            None => ctx.count_no_route(),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-flow delivery accounting kept by [`SinkHost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkFlowStats {
    /// Packets received.
    pub packets: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

/// A host that consumes everything sent to it (answering pings), keeping
/// per-flow statistics. Useful as a traffic sink and as the victim-prefix
/// endpoint in the Blink experiments.
#[derive(Default)]
pub struct SinkHost {
    flows: HashMap<crate::packet::FlowKey, SinkFlowStats>,
    /// Total payload bytes received.
    pub total_bytes: u64,
    /// Total packets received.
    pub total_packets: u64,
}

impl SinkHost {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats for one flow key, if seen.
    pub fn flow(&self, key: &crate::packet::FlowKey) -> Option<SinkFlowStats> {
        self.flows.get(key).copied()
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

impl NodeLogic for SinkHost {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
            let mut reply = Packet {
                id: 0,
                key: pkt.key.reversed(),
                header: Header::IcmpEchoReply { ident, seq },
                size: 64,
                ttl: DEFAULT_TTL,
                sent_at: SimTime::ZERO,
                payload: 0,
            };
            reply.key.src = ctx.addr();
            ctx.send(reply);
            return;
        }
        let e = self.flows.entry(pkt.key).or_default();
        e.packets += 1;
        e.bytes += pkt.payload as u64;
        self.total_bytes += pkt.payload as u64;
        self.total_packets += 1;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Announce helper: a `(prefix, node)` pair bundled for scenario builders.
#[derive(Debug, Clone, Copy)]
pub struct Announcement {
    /// The prefix.
    pub prefix: Prefix,
    /// The sink node.
    pub node: NodeId,
}
