//! Node behaviors: the [`NodeLogic`] trait, the generic [`RouterLogic`]
//! with its data-plane program hook (our stand-in for a P4-programmable
//! switch), and a simple [`SinkHost`].

use crate::packet::{Addr, Header, Packet, Prefix, DEFAULT_TTL};
use crate::sim::Ctx;
use crate::time::SimTime;
use crate::topology::NodeId;
use dui_stats::digest::StateDigest;
use std::any::Any;
use std::collections::HashMap;

/// Behavior attached to a node. Implementations live in higher crates
/// (TCP hosts in `dui-tcp`, PCC endpoints in `dui-pcc`, …); `dui-netsim`
/// itself ships [`RouterLogic`] and [`SinkHost`].
pub trait NodeLogic: Send {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx) {}

    /// A packet arrived at this node.
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet);

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    /// Downcasting hook so tests and harnesses can inspect concrete state.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Fold this node's logical state into an engine state digest.
    ///
    /// The default contributes nothing (the node's state is then
    /// invisible to [`crate::sim::Simulator::state_hash`]); stateful
    /// logics should override it, hashing unordered containers in a
    /// sorted or commutative way — never raw `HashMap` iteration order.
    fn state_digest(&self, _d: &mut StateDigest) {}

    /// Serialize this node's state for a restorable checkpoint.
    ///
    /// `None` (the default) marks the logic as *not restorable*, which
    /// makes [`crate::sim::Simulator::checkpoint`] fail — recordings of
    /// such simulations are still hash-checkable, just not resumable.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore state previously produced by [`NodeLogic::save_state`].
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err("this node logic does not support checkpoint restore".into())
    }

    /// Export this node's own metrics into `reg`.
    ///
    /// Called by [`crate::sim::Simulator::metrics_snapshot`] against a
    /// fresh registry on every sampling call, so implementations must
    /// report *current* values (register-and-set), not accumulate across
    /// calls. The default contributes nothing.
    fn export_metrics(&self, _reg: &mut dui_telemetry::registry::Registry) {}
}

/// What a data-plane program decides for a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward to this adjacent next hop.
    Forward(NodeId),
    /// Drop the packet.
    Drop,
}

/// A program running in the forwarding pipeline of a [`RouterLogic`] — our
/// abstraction of a P4 program on a programmable switch. Blink implements
/// this trait in `dui-blink`.
///
/// Programs see every transiting packet *after* TTL handling and may
/// override the routing table's default next hop. They keep arbitrary
/// mutable state (the "stateful data plane" whose expanded attack surface
/// §3 of the paper is about) but are only consulted on packet arrival:
/// time-based state transitions must be implemented lazily against `now`,
/// exactly as real data-plane programs read a timestamp metadata field.
pub trait DataPlaneProgram: Send {
    /// Inspect (and possibly steer) one transiting packet.
    /// `default_next` is the routing table's choice, if the destination is
    /// routable. Return `None` to express no opinion.
    fn process(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        default_next: Option<NodeId>,
    ) -> Option<Verdict>;

    /// Label for traces.
    fn label(&self) -> &str {
        "program"
    }

    /// Downcasting hook for harness inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Fold the program's logical state into an engine state digest
    /// (default: nothing; see [`NodeLogic::state_digest`] for the
    /// ordering rules).
    fn state_digest(&self, _d: &mut StateDigest) {}
}

/// Decides what ICMP time-exceeded reply (if any) a router sends when a
/// probe expires at it. The honest behavior reports the router's own
/// address; NetHide-style deployments (and malicious operators — §4.3)
/// substitute a virtual hop address or stay silent.
pub trait IcmpRewriter: Send {
    /// `probe` expired at this router. Return the address the time-exceeded
    /// reply should claim, or `None` to suppress the reply.
    fn report_address(&mut self, router: NodeId, probe: &Packet) -> Option<Addr>;

    /// `probe` is about to be forwarded to its destination host (this is
    /// the last router). Return `Some(addr)` to swallow it and reply with
    /// a time-exceeded claiming `addr` instead — how an edge deployment
    /// presents *virtual paths longer than the physical one* (extra
    /// fictitious hops must be answered before the real destination gets
    /// the probe). Default: let it through.
    fn capture_at_edge(&mut self, _router: NodeId, _probe: &Packet) -> Option<Addr> {
        None
    }

    /// Downcasting hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A forwarding device: decrements TTL, answers expired traceroute probes
/// with ICMP time-exceeded, runs data-plane programs, forwards.
pub struct RouterLogic {
    programs: Vec<Box<dyn DataPlaneProgram>>,
    icmp_rewriter: Option<Box<dyn IcmpRewriter>>,
    /// Whether to emit ICMP time-exceeded at all (real routers often rate
    /// limit or disable this).
    pub respond_time_exceeded: bool,
}

impl Default for RouterLogic {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterLogic {
    /// Plain honest router.
    pub fn new() -> Self {
        RouterLogic {
            programs: Vec::new(),
            icmp_rewriter: None,
            respond_time_exceeded: true,
        }
    }

    /// Attach a data-plane program (operator-privilege action).
    pub fn with_program(mut self, program: Box<dyn DataPlaneProgram>) -> Self {
        self.programs.push(program);
        self
    }

    /// Attach an ICMP rewriter (operator-privilege action; used by NetHide
    /// and by the malicious-operator attack).
    pub fn with_icmp_rewriter(mut self, rw: Box<dyn IcmpRewriter>) -> Self {
        self.icmp_rewriter = Some(rw);
        self
    }

    /// Borrow program `i`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if program `i` is not a `T` — the caller installed the
    /// program and names its concrete type, so a mismatch is a bug at
    /// the call site, not a recoverable condition.
    pub fn program_mut<T: DataPlaneProgram + 'static>(&mut self, i: usize) -> &mut T {
        self.programs[i]
            .as_any_mut()
            .downcast_mut::<T>()
            // lint: allow(panic): documented caller contract — the caller installed this program
            .expect("program has a different concrete type")
    }

    fn handle_local(&mut self, ctx: &mut Ctx, pkt: Packet) {
        // The only local traffic routers answer is ping.
        if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
            let mut reply = Packet {
                id: 0,
                key: pkt.key.reversed(),
                header: Header::IcmpEchoReply { ident, seq },
                size: 64,
                ttl: DEFAULT_TTL,
                sent_at: SimTime::ZERO,
                payload: 0,
            };
            reply.key.src = ctx.addr();
            ctx.send(reply);
        }
    }
}

impl NodeLogic for RouterLogic {
    fn on_packet(&mut self, ctx: &mut Ctx, mut pkt: Packet) {
        if pkt.key.dst == ctx.addr() {
            ctx.count_router_local();
            self.handle_local(ctx, pkt);
            return;
        }
        // TTL expiry — the mechanism traceroute exploits (paper §4.3).
        if pkt.ttl <= 1 {
            ctx.count_ttl_drop();
            if self.respond_time_exceeded {
                if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
                    let me = ctx.node;
                    let claimed = match &mut self.icmp_rewriter {
                        Some(rw) => rw.report_address(me, &pkt),
                        None => Some(ctx.addr()),
                    };
                    if let Some(claimed) = claimed {
                        let reply = Packet {
                            id: 0,
                            key: crate::packet::FlowKey {
                                src: claimed,
                                dst: pkt.key.src,
                                sport: 0,
                                dport: 0,
                                proto: crate::packet::Proto::Icmp,
                            },
                            header: Header::IcmpTimeExceeded {
                                reported_by: claimed,
                                probe_ident: ident,
                                probe_seq: seq,
                            },
                            size: 56,
                            ttl: DEFAULT_TTL,
                            sent_at: SimTime::ZERO,
                            payload: 0,
                        };
                        ctx.send(reply);
                    }
                }
            }
            return;
        }
        pkt.ttl -= 1;
        let dst_node = ctx.resolve_dst(pkt.key.dst);
        let default_next = dst_node.and_then(|d| ctx.routing().next_hop(ctx.node, d));
        // Edge capture: a rewriter may answer probes that would otherwise
        // reach the destination, extending the apparent path.
        if let (Header::IcmpEchoRequest { ident, seq }, Some(rw)) =
            (&pkt.header, &mut self.icmp_rewriter)
        {
            if dst_node.is_some() && default_next == dst_node {
                let me = ctx.node;
                if let Some(claimed) = rw.capture_at_edge(me, &pkt) {
                    let reply = Packet {
                        id: 0,
                        key: crate::packet::FlowKey {
                            src: claimed,
                            dst: pkt.key.src,
                            sport: 0,
                            dport: 0,
                            proto: crate::packet::Proto::Icmp,
                        },
                        header: Header::IcmpTimeExceeded {
                            reported_by: claimed,
                            probe_ident: *ident,
                            probe_seq: *seq,
                        },
                        size: 56,
                        ttl: DEFAULT_TTL,
                        sent_at: SimTime::ZERO,
                        payload: 0,
                    };
                    ctx.send(reply);
                    return;
                }
            }
        }
        let mut verdict = default_next.map(Verdict::Forward);
        let mut from_program = false;
        let now = ctx.now();
        for prog in &mut self.programs {
            if let Some(v) = prog.process(now, &pkt, default_next) {
                from_program = true;
                verdict = Some(v);
            }
        }
        match verdict {
            Some(Verdict::Forward(next)) => {
                if from_program {
                    ctx.count_program_forward();
                }
                ctx.send_via(next, pkt)
            }
            Some(Verdict::Drop) => ctx.count_program_drop(),
            None => ctx.count_no_route(),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_bool(self.respond_time_exceeded);
        d.write_len(self.programs.len());
        for p in &self.programs {
            d.write_str(p.label());
            p.state_digest(d);
        }
        d.write_bool(self.icmp_rewriter.is_some());
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Programs and rewriters are opaque trait objects with no
        // serialization contract; a plain router is the only restorable
        // configuration.
        if !self.programs.is_empty() || self.icmp_rewriter.is_some() {
            return None;
        }
        Some(vec![self.respond_time_exceeded as u8])
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if !self.programs.is_empty() || self.icmp_rewriter.is_some() {
            return Err("cannot restore into a router with programs installed".into());
        }
        match bytes {
            [flag] => {
                self.respond_time_exceeded = *flag != 0;
                Ok(())
            }
            _ => Err("malformed router checkpoint".into()),
        }
    }
}

/// Per-flow delivery accounting kept by [`SinkHost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkFlowStats {
    /// Packets received.
    pub packets: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

/// A host that consumes everything sent to it (answering pings), keeping
/// per-flow statistics. Useful as a traffic sink and as the victim-prefix
/// endpoint in the Blink experiments.
#[derive(Default)]
pub struct SinkHost {
    flows: HashMap<crate::packet::FlowKey, SinkFlowStats>,
    /// Total payload bytes received.
    pub total_bytes: u64,
    /// Total packets received.
    pub total_packets: u64,
}

impl SinkHost {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats for one flow key, if seen.
    pub fn flow(&self, key: &crate::packet::FlowKey) -> Option<SinkFlowStats> {
        self.flows.get(key).copied()
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Flow table entries sorted by 5-tuple — the canonical order used
    /// by both hashing and checkpointing (the backing map is unordered).
    fn flows_sorted(&self) -> Vec<(crate::packet::FlowKey, SinkFlowStats)> {
        let mut v: Vec<_> = self.flows.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_unstable_by_key(|(k, _)| (k.src.0, k.dst.0, k.sport, k.dport, k.proto.code()));
        v
    }
}

impl NodeLogic for SinkHost {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        if let Header::IcmpEchoRequest { ident, seq } = pkt.header {
            let mut reply = Packet {
                id: 0,
                key: pkt.key.reversed(),
                header: Header::IcmpEchoReply { ident, seq },
                size: 64,
                ttl: DEFAULT_TTL,
                sent_at: SimTime::ZERO,
                payload: 0,
            };
            reply.key.src = ctx.addr();
            ctx.send(reply);
            return;
        }
        let e = self.flows.entry(pkt.key).or_default();
        e.packets += 1;
        e.bytes += pkt.payload as u64;
        self.total_bytes += pkt.payload as u64;
        self.total_packets += 1;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn state_digest(&self, d: &mut StateDigest) {
        // sorted iteration (see flows_sorted) — no RandomState order leak
        let flows = self.flows_sorted();
        d.write_len(flows.len());
        for (k, s) in flows {
            d.write_u64(k.digest(0));
            d.write_u64(s.packets);
            d.write_u64(s.bytes);
        }
        d.write_u64(self.total_bytes);
        d.write_u64(self.total_packets);
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let flows = self.flows_sorted();
        let mut out = Vec::with_capacity(16 + flows.len() * 29);
        out.extend_from_slice(&(flows.len() as u64).to_le_bytes());
        for (k, s) in flows {
            out.extend_from_slice(&k.src.0.to_le_bytes());
            out.extend_from_slice(&k.dst.0.to_le_bytes());
            out.extend_from_slice(&k.sport.to_le_bytes());
            out.extend_from_slice(&k.dport.to_le_bytes());
            out.push(k.proto.code());
            out.extend_from_slice(&s.packets.to_le_bytes());
            out.extend_from_slice(&s.bytes.to_le_bytes());
        }
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        out.extend_from_slice(&self.total_packets.to_le_bytes());
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let err = || "malformed sink checkpoint".to_string();
        // Fixed-size reads return arrays directly, so decoding has no
        // panic path on truncated input.
        fn take<const N: usize>(b: &[u8], at: &mut usize) -> Result<[u8; N], String> {
            let s = b
                .get(*at..)
                .and_then(|rest| rest.get(..N))
                .ok_or_else(|| "malformed sink checkpoint".to_string())?;
            let mut arr = [0u8; N];
            arr.copy_from_slice(s);
            *at += N;
            Ok(arr)
        }
        let mut at = 0usize;
        let n = u64::from_le_bytes(take(bytes, &mut at)?) as usize;
        let mut flows = HashMap::with_capacity(n);
        for _ in 0..n {
            let src = u32::from_le_bytes(take(bytes, &mut at)?);
            let dst = u32::from_le_bytes(take(bytes, &mut at)?);
            let sport = u16::from_le_bytes(take(bytes, &mut at)?);
            let dport = u16::from_le_bytes(take(bytes, &mut at)?);
            let proto = crate::packet::Proto::from_code(take::<1>(bytes, &mut at)?[0])
                .ok_or_else(err)?;
            let packets = u64::from_le_bytes(take(bytes, &mut at)?);
            let fbytes = u64::from_le_bytes(take(bytes, &mut at)?);
            flows.insert(
                crate::packet::FlowKey {
                    src: Addr(src),
                    dst: Addr(dst),
                    sport,
                    dport,
                    proto,
                },
                SinkFlowStats {
                    packets,
                    bytes: fbytes,
                },
            );
        }
        let total_bytes = u64::from_le_bytes(take(bytes, &mut at)?);
        let total_packets = u64::from_le_bytes(take(bytes, &mut at)?);
        if at != bytes.len() {
            return Err(err());
        }
        self.flows = flows;
        self.total_bytes = total_bytes;
        self.total_packets = total_packets;
        Ok(())
    }
}

/// Announce helper: a `(prefix, node)` pair bundled for scenario builders.
#[derive(Debug, Clone, Copy)]
pub struct Announcement {
    /// The prefix.
    pub prefix: Prefix,
    /// The sink node.
    pub node: NodeId,
}
