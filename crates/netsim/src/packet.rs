//! Packets, addresses, flows and prefixes.
//!
//! Packets are plain structs rather than byte buffers: the systems under
//! study (Blink, PCC, Pytheas, traceroute) react to *header fields and
//! metadata* — sequence numbers, timing, TTLs, sizes — so modelling those
//! fields directly keeps the simulator fast while preserving every signal
//! the paper's attacks manipulate. Crucially, nothing stops a simulated
//! attacker from forging any field (there is no authentication on the real
//! Internet either); that asymmetry is the paper's whole point.

use crate::time::SimTime;
use std::fmt;

/// An IPv4-style 32-bit address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Dotted-quad constructor.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// A CIDR prefix (`addr/len`). Blink monitors and reroutes traffic at prefix
/// granularity; Pytheas groups sessions partly by prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits are masked off by [`Prefix::new`]).
    pub addr: Addr,
    /// Prefix length in bits, `0..=32`.
    pub len: u8,
}

impl Prefix {
    /// Construct, masking off host bits.
    pub fn new(addr: Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Prefix {
            addr: Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Does this prefix contain `addr`?
    pub fn contains(&self, addr: Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.addr.0
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Transport protocol discriminator for the 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol (no ports; they are zero).
    Icmp,
}

impl Proto {
    /// Stable wire code (IANA protocol numbers), used by digests and
    /// the record/replay byte format.
    pub fn code(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Icmp => 1,
        }
    }

    /// Inverse of [`Proto::code`].
    pub fn from_code(code: u8) -> Option<Proto> {
        match code {
            6 => Some(Proto::Tcp),
            17 => Some(Proto::Udp),
            1 => Some(Proto::Icmp),
            _ => None,
        }
    }
}

/// A flow 5-tuple. Blink's flow selector hashes this to pick monitored
/// flows; spoofing hosts can fabricate arbitrary 5-tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// TCP 5-tuple convenience constructor.
    pub fn tcp(src: Addr, sport: u16, dst: Addr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            sport,
            dport,
            proto: Proto::Tcp,
        }
    }

    /// UDP 5-tuple convenience constructor.
    pub fn udp(src: Addr, sport: u16, dst: Addr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            sport,
            dport,
            proto: Proto::Udp,
        }
    }

    /// The reverse direction of this flow.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }

    /// Stable 64-bit digest of the 5-tuple, mixed with `salt`.
    ///
    /// This is the hash the Blink flow selector indexes its cell array with;
    /// per Kerckhoff's principle the attacker is assumed to know the function
    /// (but not the switch's secret salt, if one is configured).
    pub fn digest(&self, salt: u64) -> u64 {
        let a = ((self.src.0 as u64) << 32) | self.dst.0 as u64;
        let b = ((self.sport as u64) << 32)
            | ((self.dport as u64) << 16)
            | match self.proto {
                Proto::Tcp => 6,
                Proto::Udp => 17,
                Proto::Icmp => 1,
            };
        dui_stats::rng::mix64(dui_stats::rng::mix64(a, b), salt)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.proto, self.src, self.sport, self.dst, self.dport
        )
    }
}

/// TCP header flags we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize (connection setup).
    pub syn: bool,
    /// Acknowledgement field valid.
    pub ack: bool,
    /// Finish (graceful close).
    pub fin: bool,
    /// Reset.
    pub rst: bool,
}

/// Protocol headers carried by a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Header {
    /// TCP segment header: what Blink and DAPPER-style programs inspect.
    Tcp {
        /// Sequence number of the first payload byte.
        seq: u32,
        /// Cumulative acknowledgement number.
        ack: u32,
        /// Flags.
        flags: TcpFlags,
        /// Advertised receive window (bytes).
        window: u32,
    },
    /// UDP datagram (no interesting fields beyond the 5-tuple for us).
    Udp,
    /// ICMP echo request (`ping` / traceroute probe body), carrying the
    /// probe's original TTL so responders can identify which hop expired it.
    IcmpEchoRequest {
        /// Identifier chosen by the prober.
        ident: u16,
        /// Sequence number of the probe.
        seq: u16,
    },
    /// ICMP echo reply.
    IcmpEchoReply {
        /// Identifier echoed from the request.
        ident: u16,
        /// Sequence echoed from the request.
        seq: u16,
    },
    /// ICMP time-exceeded, emitted by the router where a probe's TTL hit
    /// zero. `reported_by` is the *claimed* router address — the paper's
    /// §4.3 point is that nothing authenticates this claim.
    IcmpTimeExceeded {
        /// Source address claimed by the reply (spoofable).
        reported_by: Addr,
        /// Identifier of the expired probe.
        probe_ident: u16,
        /// Sequence of the expired probe.
        probe_seq: u16,
    },
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Globally unique id (assigned by the simulator at injection).
    pub id: u64,
    /// Flow 5-tuple.
    pub key: FlowKey,
    /// Protocol header.
    pub header: Header,
    /// On-the-wire size in bytes (headers + payload).
    pub size: u32,
    /// Remaining time-to-live in hops.
    pub ttl: u8,
    /// Time the packet entered the network (stamped at injection).
    pub sent_at: SimTime,
    /// Number of payload bytes (for transport accounting).
    pub payload: u32,
}

/// Default initial TTL, matching common OS defaults.
pub const DEFAULT_TTL: u8 = 64;

impl Packet {
    /// Build a TCP data/ack segment. `size` is payload + 40 B of headers.
    pub fn tcp(key: FlowKey, seq: u32, ack: u32, flags: TcpFlags, payload: u32) -> Self {
        assert_eq!(key.proto, Proto::Tcp, "tcp packet needs a tcp key");
        Packet {
            id: 0,
            key,
            header: Header::Tcp {
                seq,
                ack,
                flags,
                window: 65_535,
            },
            size: payload + 40,
            ttl: DEFAULT_TTL,
            sent_at: SimTime::ZERO,
            payload,
        }
    }

    /// Build a UDP datagram. `size` is payload + 28 B of headers.
    pub fn udp(key: FlowKey, payload: u32) -> Self {
        assert_eq!(key.proto, Proto::Udp, "udp packet needs a udp key");
        Packet {
            id: 0,
            key,
            header: Header::Udp,
            size: payload + 28,
            ttl: DEFAULT_TTL,
            sent_at: SimTime::ZERO,
            payload,
        }
    }

    /// Build a traceroute probe: ICMP echo request with an explicit TTL.
    pub fn probe(src: Addr, dst: Addr, ident: u16, seq: u16, ttl: u8) -> Self {
        Packet {
            id: 0,
            key: FlowKey {
                src,
                dst,
                sport: 0,
                dport: 0,
                proto: Proto::Icmp,
            },
            header: Header::IcmpEchoRequest { ident, seq },
            size: 64,
            ttl,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    /// The TCP sequence number, if this is a TCP packet.
    pub fn tcp_seq(&self) -> Option<u32> {
        match self.header {
            Header::Tcp { seq, .. } => Some(seq),
            _ => None,
        }
    }

    /// The TCP flags, if this is a TCP packet.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match self.header {
            Header::Tcp { flags, .. } => Some(flags),
            _ => None,
        }
    }

    /// Is this a TCP segment that carries payload (the kind Blink monitors)?
    pub fn is_tcp_data(&self) -> bool {
        matches!(self.header, Header::Tcp { .. }) && self.payload > 0
    }

    /// Fold the packet's full content into a state digest.
    pub fn state_digest(&self, d: &mut dui_stats::digest::StateDigest) {
        d.write_u64(self.id);
        d.write_u32(self.key.src.0);
        d.write_u32(self.key.dst.0);
        d.write_u16(self.key.sport);
        d.write_u16(self.key.dport);
        d.write_u8(self.key.proto.code());
        self.header.state_digest(d);
        d.write_u32(self.size);
        d.write_u8(self.ttl);
        d.write_u64(self.sent_at.0);
        d.write_u32(self.payload);
    }
}

impl TcpFlags {
    /// Pack the four flags into a stable bitfield (`syn` = bit 0).
    pub fn bits(self) -> u8 {
        (self.syn as u8) | (self.ack as u8) << 1 | (self.fin as u8) << 2 | (self.rst as u8) << 3
    }

    /// Inverse of [`TcpFlags::bits`] (extra bits are ignored).
    pub fn from_bits(b: u8) -> TcpFlags {
        TcpFlags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
        }
    }
}

impl Header {
    /// Fold the header (kind tag first, then fields) into a digest.
    pub fn state_digest(&self, d: &mut dui_stats::digest::StateDigest) {
        match self {
            Header::Tcp {
                seq,
                ack,
                flags,
                window,
            } => {
                d.write_u8(0);
                d.write_u32(*seq);
                d.write_u32(*ack);
                d.write_u8(flags.bits());
                d.write_u32(*window);
            }
            Header::Udp => d.write_u8(1),
            Header::IcmpEchoRequest { ident, seq } => {
                d.write_u8(2);
                d.write_u16(*ident);
                d.write_u16(*seq);
            }
            Header::IcmpEchoReply { ident, seq } => {
                d.write_u8(3);
                d.write_u16(*ident);
                d.write_u16(*seq);
            }
            Header::IcmpTimeExceeded {
                reported_by,
                probe_ident,
                probe_seq,
            } => {
                d.write_u8(4);
                d.write_u32(reported_by.0);
                d.write_u16(*probe_ident);
                d.write_u16(*probe_seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display() {
        assert_eq!(Addr::new(10, 0, 0, 1).to_string(), "10.0.0.1");
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr, Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Addr::new(192, 168, 0, 0), 24);
        assert!(p.contains(Addr::new(192, 168, 0, 200)));
        assert!(!p.contains(Addr::new(192, 168, 1, 1)));
        let any = Prefix::new(Addr::new(0, 0, 0, 0), 0);
        assert!(any.contains(Addr::new(8, 8, 8, 8)));
        let host = Prefix::new(Addr::new(1, 2, 3, 4), 32);
        assert!(host.contains(Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Addr::new(1, 2, 3, 5)));
    }

    #[test]
    fn flowkey_reverse_is_involution() {
        let k = FlowKey::tcp(Addr::new(1, 1, 1, 1), 1234, Addr::new(2, 2, 2, 2), 80);
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn digest_depends_on_fields_and_salt() {
        let k1 = FlowKey::tcp(Addr::new(1, 1, 1, 1), 1234, Addr::new(2, 2, 2, 2), 80);
        let k2 = FlowKey::tcp(Addr::new(1, 1, 1, 1), 1235, Addr::new(2, 2, 2, 2), 80);
        assert_ne!(k1.digest(0), k2.digest(0));
        assert_ne!(k1.digest(0), k1.digest(1));
        assert_eq!(k1.digest(7), k1.digest(7));
    }

    #[test]
    fn tcp_packet_sizes() {
        let k = FlowKey::tcp(Addr::new(1, 1, 1, 1), 1, Addr::new(2, 2, 2, 2), 2);
        let p = Packet::tcp(k, 100, 0, TcpFlags::default(), 1460);
        assert_eq!(p.size, 1500);
        assert!(p.is_tcp_data());
        let ack = Packet::tcp(
            k,
            100,
            50,
            TcpFlags {
                ack: true,
                ..Default::default()
            },
            0,
        );
        assert!(!ack.is_tcp_data());
        assert_eq!(p.tcp_seq(), Some(100));
    }

    #[test]
    #[should_panic]
    fn tcp_constructor_rejects_udp_key() {
        let k = FlowKey::udp(Addr::new(1, 1, 1, 1), 1, Addr::new(2, 2, 2, 2), 2);
        let _ = Packet::tcp(k, 0, 0, TcpFlags::default(), 0);
    }

    #[test]
    fn probe_has_requested_ttl() {
        let p = Packet::probe(Addr::new(1, 0, 0, 1), Addr::new(9, 0, 0, 9), 7, 3, 2);
        assert_eq!(p.ttl, 2);
        assert_eq!(p.key.proto, Proto::Icmp);
    }
}
