//! The discrete-event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotone sequence
//! number makes event ordering at equal timestamps FIFO and therefore the
//! whole simulation deterministic.

use crate::link::Dir;
use crate::packet::Packet;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use dui_stats::digest::StateDigest;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Things that can happen.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet arrives at a node (after crossing a link).
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A link direction finished serializing its in-flight packet.
    TxComplete {
        /// The link.
        link: LinkId,
        /// Direction that completed.
        dir: Dir,
    },
    /// A node timer fired.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque token chosen by the node when arming the timer.
        token: u64,
    },
    /// A (tap-delayed) packet is re-offered to a link queue. Re-offers skip
    /// fault injection and taps — the tap already ruled on this packet.
    Offer {
        /// The link.
        link: LinkId,
        /// Direction.
        dir: Dir,
        /// The packet.
        pkt: Packet,
    },
}

impl Event {
    /// Short label for the event kind (used by traces and recordings).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Deliver { .. } => "deliver",
            Event::TxComplete { .. } => "tx_complete",
            Event::Timer { .. } => "timer",
            Event::Offer { .. } => "offer",
        }
    }

    /// Fold the event's full content into `d` (kind tag first, so
    /// different kinds can never collide structurally).
    pub fn state_digest(&self, d: &mut StateDigest) {
        match self {
            Event::Deliver { node, pkt } => {
                d.write_u8(0);
                d.write_usize(node.0);
                pkt.state_digest(d);
            }
            Event::TxComplete { link, dir } => {
                d.write_u8(1);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
            }
            Event::Timer { node, token } => {
                d.write_u8(2);
                d.write_usize(node.0);
                d.write_u64(*token);
            }
            Event::Offer { link, dir, pkt } => {
                d.write_u8(3);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
                pkt.state_digest(d);
            }
        }
    }
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic FIFO-at-equal-time event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending events cloned out in dispatch order — exactly the order
    /// [`EventQueue::pop`] would return them.
    ///
    /// Used by checkpointing: the *relative* order is the logical
    /// state, while the absolute `seq` values are an implementation
    /// detail (a restored queue re-schedules these in order and gets
    /// fresh, order-preserving sequence numbers).
    pub fn snapshot_sorted(&self) -> Vec<(SimTime, Event)> {
        let mut v: Vec<(SimTime, u64, &Event)> = self
            .heap
            .iter()
            .map(|Reverse(s)| (s.time, s.seq, &s.event))
            .collect();
        v.sort_unstable_by_key(|&(t, q, _)| (t, q));
        v.into_iter().map(|(t, _, e)| (t, e.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), timer(0, 3));
        q.schedule(SimTime::from_secs(1), timer(0, 1));
        q.schedule(SimTime::from_secs(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, timer(0, i));
        }
        for i in 0..100 {
            let (_, e) = q.pop().unwrap();
            match e {
                Event::Timer { token, .. } => assert_eq!(token, i),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
