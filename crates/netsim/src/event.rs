//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the monotone sequence number
//! makes event ordering at equal timestamps FIFO and therefore the whole
//! simulation deterministic. Scheduling is backed by the hierarchical
//! timing wheel in [`crate::wheel`] (`O(1)` schedule/pop against the old
//! binary heap's `O(log n)`), which honors exactly the same ordering
//! contract.
//!
//! Live events carry packets as 8-byte [`PacketRef`] handles into the
//! [`PacketArena`]; the self-contained [`SavedEvent`] twin (with the packet
//! by value) exists for checkpoints and the `dui-replay` byte codec, whose
//! formats and digests predate the arena and must not change.

use crate::arena::{PacketArena, PacketRef};
use crate::link::Dir;
use crate::packet::Packet;
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId};
use crate::wheel::{TimerWheel, WheelStats};
use dui_stats::digest::StateDigest;

/// Things that can happen. Packet-carrying variants hold an arena handle,
/// so an `Event` is a small `Copy` value (~24 bytes) regardless of packet
/// contents.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A packet arrives at a node (after crossing a link).
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Handle to the packet in the engine's [`PacketArena`].
        pkt: PacketRef,
    },
    /// A link direction finished serializing its in-flight packet.
    TxComplete {
        /// The link.
        link: LinkId,
        /// Direction that completed.
        dir: Dir,
    },
    /// A node timer fired.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque token chosen by the node when arming the timer.
        token: u64,
    },
    /// A (tap-delayed) packet is re-offered to a link queue. Re-offers skip
    /// fault injection and taps — the tap already ruled on this packet.
    Offer {
        /// The link.
        link: LinkId,
        /// Direction.
        dir: Dir,
        /// Handle to the packet in the engine's [`PacketArena`].
        pkt: PacketRef,
    },
}

impl Event {
    /// Short label for the event kind (used by traces and recordings).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Deliver { .. } => "deliver",
            Event::TxComplete { .. } => "tx_complete",
            Event::Timer { .. } => "timer",
            Event::Offer { .. } => "offer",
        }
    }

    /// Fold the event's full content into `d` (kind tag first, so
    /// different kinds can never collide structurally). Handles are an
    /// implementation detail: packet *contents* are resolved through
    /// `arena` and digested by value, byte-identical to [`SavedEvent`]'s
    /// digest — this is what keeps pre-refactor golden hashes valid.
    pub fn state_digest(&self, d: &mut StateDigest, arena: &PacketArena) {
        match self {
            Event::Deliver { node, pkt } => {
                d.write_u8(0);
                d.write_usize(node.0);
                let p = arena.get(*pkt).expect("live event holds a stale packet ref"); // lint: allow(panic)
                p.state_digest(d);
            }
            Event::TxComplete { link, dir } => {
                d.write_u8(1);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
            }
            Event::Timer { node, token } => {
                d.write_u8(2);
                d.write_usize(node.0);
                d.write_u64(*token);
            }
            Event::Offer { link, dir, pkt } => {
                d.write_u8(3);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
                let p = arena.get(*pkt).expect("live event holds a stale packet ref"); // lint: allow(panic)
                p.state_digest(d);
            }
        }
    }

    /// Materialize a self-contained [`SavedEvent`], cloning any packet out
    /// of `arena` (the clone happens inside the arena module).
    pub fn to_saved(&self, arena: &PacketArena) -> SavedEvent {
        match *self {
            Event::Deliver { node, pkt } => SavedEvent::Deliver {
                node,
                pkt: arena
                    .snapshot_packet(pkt)
                    .expect("live event holds a stale packet ref"), // lint: allow(panic)
            },
            Event::TxComplete { link, dir } => SavedEvent::TxComplete { link, dir },
            Event::Timer { node, token } => SavedEvent::Timer { node, token },
            Event::Offer { link, dir, pkt } => SavedEvent::Offer {
                link,
                dir,
                pkt: arena
                    .snapshot_packet(pkt)
                    .expect("live event holds a stale packet ref"), // lint: allow(panic)
            },
        }
    }
}

/// A self-contained event: identical shape to [`Event`] but carrying
/// packets by value. This is the representation checkpoints store and the
/// `dui-replay` codec serializes — it needs no arena to interpret, and its
/// byte format and digests are unchanged from the pre-arena engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SavedEvent {
    /// A packet arrives at a node.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// The packet, by value.
        pkt: Packet,
    },
    /// A link direction finished serializing its in-flight packet.
    TxComplete {
        /// The link.
        link: LinkId,
        /// Direction that completed.
        dir: Dir,
    },
    /// A node timer fired.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque token chosen by the node when arming the timer.
        token: u64,
    },
    /// A (tap-delayed) packet is re-offered to a link queue.
    Offer {
        /// The link.
        link: LinkId,
        /// Direction.
        dir: Dir,
        /// The packet, by value.
        pkt: Packet,
    },
}

impl SavedEvent {
    /// Short label for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedEvent::Deliver { .. } => "deliver",
            SavedEvent::TxComplete { .. } => "tx_complete",
            SavedEvent::Timer { .. } => "timer",
            SavedEvent::Offer { .. } => "offer",
        }
    }

    /// Fold the event's full content into `d` — byte-identical to
    /// [`Event::state_digest`] on the live twin.
    pub fn state_digest(&self, d: &mut StateDigest) {
        match self {
            SavedEvent::Deliver { node, pkt } => {
                d.write_u8(0);
                d.write_usize(node.0);
                pkt.state_digest(d);
            }
            SavedEvent::TxComplete { link, dir } => {
                d.write_u8(1);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
            }
            SavedEvent::Timer { node, token } => {
                d.write_u8(2);
                d.write_usize(node.0);
                d.write_u64(*token);
            }
            SavedEvent::Offer { link, dir, pkt } => {
                d.write_u8(3);
                d.write_usize(link.0);
                d.write_bool(*dir == Dir::BtoA);
                pkt.state_digest(d);
            }
        }
    }

    /// Rehydrate into a live [`Event`], moving any packet into `arena`
    /// (no clone — restore consumes the saved event).
    pub fn into_live(self, arena: &mut PacketArena) -> Event {
        match self {
            SavedEvent::Deliver { node, pkt } => Event::Deliver {
                node,
                pkt: arena.insert(pkt),
            },
            SavedEvent::TxComplete { link, dir } => Event::TxComplete { link, dir },
            SavedEvent::Timer { node, token } => Event::Timer { node, token },
            SavedEvent::Offer { link, dir, pkt } => Event::Offer {
                link,
                dir,
                pkt: arena.insert(pkt),
            },
        }
    }
}

/// Deterministic FIFO-at-equal-time event queue over a hierarchical
/// timing wheel.
#[derive(Debug, Default)]
pub struct EventQueue {
    wheel: TimerWheel<Event>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        self.wheel.schedule(time.0, event);
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time().map(SimTime)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.wheel.pop().map(|(t, e)| (SimTime(t), e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// The wheel's internal work counters (cascades, overflow deferrals).
    pub fn wheel_stats(&self) -> WheelStats {
        self.wheel.stats()
    }

    /// Schedule with an externally-computed 128-bit tie-break key (see
    /// [`TimerWheel::schedule_keyed`]). A queue is either counter-ordered
    /// (via [`EventQueue::schedule`]) or key-ordered, never both; the
    /// parallel engine's per-domain queues are key-ordered.
    pub(crate) fn schedule_keyed(&mut self, time: SimTime, key: u128, event: Event) {
        self.wheel.schedule_keyed(time.0, key, event);
    }

    /// `(time, key)` of the earliest pending event, without mutating.
    pub(crate) fn peek_key(&self) -> Option<(SimTime, u128)> {
        self.wheel.peek_key().map(|(t, k)| (SimTime(t), k))
    }

    /// Pop the earliest pending event together with its tie-break key.
    pub(crate) fn pop_keyed(&mut self) -> Option<(SimTime, u128, Event)> {
        self.wheel.pop_keyed().map(|(t, k, e)| (SimTime(t), k, e))
    }

    /// Pending events as `(time, key, event)` copies, unsorted. The
    /// parallel join sorts the union of all domain queues by `(time, key)`
    /// to rebuild the merged sequential queue.
    pub(crate) fn drain_keyed(&self) -> Vec<(SimTime, u128, Event)> {
        self.wheel
            .iter()
            .into_iter()
            .map(|(t, k, e)| (SimTime(t), k, *e))
            .collect()
    }

    /// Pending events in dispatch order — exactly the order
    /// [`EventQueue::pop`] would return them — as *borrows*. No event or
    /// packet is cloned.
    ///
    /// The *relative* order is the logical state, while the absolute `seq`
    /// values are an implementation detail (a restored queue re-schedules
    /// these in order and gets fresh, order-preserving sequence numbers).
    pub fn snapshot_refs(&self) -> Vec<(SimTime, &Event)> {
        let mut v: Vec<(u64, u128, &Event)> = self.wheel.iter();
        v.sort_unstable_by_key(|&(t, q, _)| (t, q));
        v.into_iter().map(|(t, _, e)| (SimTime(t), e)).collect()
    }

    /// Pending events materialized in dispatch order for checkpointing:
    /// each packet is cloned out of `arena` exactly once, into the
    /// returned Vec.
    pub fn snapshot_sorted(&self, arena: &PacketArena) -> Vec<(SimTime, SavedEvent)> {
        self.snapshot_refs()
            .into_iter()
            .map(|(t, e)| (t, e.to_saved(arena)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), timer(0, 3));
        q.schedule(SimTime::from_secs(1), timer(0, 1));
        q.schedule(SimTime::from_secs(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, timer(0, i));
        }
        for i in 0..100 {
            let (_, e) = q.pop().unwrap();
            match e {
                Event::Timer { token, .. } => assert_eq!(token, i),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn snapshot_refs_is_dispatch_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), timer(0, 20));
        q.schedule(SimTime::from_secs(1), timer(0, 10));
        q.schedule(SimTime::from_secs(1), timer(0, 11));
        let tokens: Vec<u64> = q
            .snapshot_refs()
            .into_iter()
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => *token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![10, 11, 20]);
    }

    #[test]
    fn saved_event_digest_matches_live() {
        use crate::packet::{Addr, FlowKey};
        let mut arena = PacketArena::new();
        let pkt = Packet::udp(
            FlowKey::udp(Addr::new(10, 0, 0, 1), 1, Addr::new(10, 0, 0, 2), 2),
            99,
        );
        let saved = SavedEvent::Deliver {
            node: NodeId(3),
            pkt: pkt.clone(), // lint: allow(packet-clone) — constructing the expected fixture
        };
        let live = Event::Deliver {
            node: NodeId(3),
            pkt: arena.insert(pkt),
        };
        let mut d1 = StateDigest::labeled("event");
        saved.state_digest(&mut d1);
        let mut d2 = StateDigest::labeled("event");
        live.state_digest(&mut d2, &arena);
        assert_eq!(d1.finish(), d2.finish());
        // Round trip: saved → live → saved.
        let live2 = saved.clone().into_live(&mut arena);
        assert_eq!(live2.to_saved(&arena), saved);
    }
}
