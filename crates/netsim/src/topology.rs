//! Network topology: nodes, links, addressing and shortest-path routing.

use crate::packet::{Addr, Prefix};
use crate::time::{Bandwidth, SimDuration};
use std::collections::HashMap;

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// What kind of device a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An endpoint that sources/sinks traffic and owns an address.
    Host,
    /// A forwarding device (may run data-plane programs).
    Router,
}

/// Static description of a node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Human-readable name for traces.
    pub name: String,
    /// Host or router.
    pub kind: NodeKind,
    /// The node's address (hosts always have one; routers get one too so
    /// they can source ICMP time-exceeded replies).
    pub addr: Addr,
}

/// Static description of a (bidirectional) link.
#[derive(Debug, Clone)]
pub struct LinkInfo {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Capacity, per direction.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in packets, per direction.
    pub queue_cap: usize,
}

/// An immutable network topology (nodes + links + addressing).
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    addr_to_node: HashMap<Addr, NodeId>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.0]
    }

    /// Link metadata.
    pub fn link(&self, id: LinkId) -> &LinkInfo {
        &self.links[id.0]
    }

    /// All links.
    pub fn links(&self) -> &[LinkInfo] {
        &self.links
    }

    /// Neighbors of `n` as `(neighbor, connecting link)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.0]
    }

    /// Node owning `addr`, if any.
    pub fn node_by_addr(&self, addr: Addr) -> Option<NodeId> {
        self.addr_to_node.get(&addr).copied()
    }

    /// The link between two adjacent nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.0]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|&(_, l)| l)
    }

    /// All node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind == kind)
            .map(NodeId)
            .collect()
    }

    /// Node id by name (`None` if absent).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
}

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host with an address.
    pub fn host(&mut self, name: &str, addr: Addr) -> NodeId {
        self.add_node(name, NodeKind::Host, addr)
    }

    /// Add a router; its address is auto-assigned in `172.16.0.0/16` from its
    /// index (used as the source of its ICMP replies).
    pub fn router(&mut self, name: &str) -> NodeId {
        let idx = self.nodes.len() as u32;
        let addr = Addr(Addr::new(172, 16, 0, 0).0 + idx + 1);
        self.add_node(name, NodeKind::Router, addr)
    }

    fn add_node(&mut self, name: &str, kind: NodeKind, addr: Addr) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            name: name.to_string(),
            kind,
            addr,
        });
        id
    }

    /// Connect two nodes.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
        delay: SimDuration,
        queue_cap: usize,
    ) -> LinkId {
        assert!(a != b, "no self-links");
        assert!(queue_cap > 0, "queue capacity must be positive");
        let id = LinkId(self.links.len());
        self.links.push(LinkInfo {
            a,
            b,
            bandwidth,
            delay,
            queue_cap,
        });
        id
    }

    /// Finalize into an immutable topology.
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            adjacency[l.a.0].push((l.b, LinkId(i)));
            adjacency[l.b.0].push((l.a, LinkId(i)));
        }
        let mut addr_to_node = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let prev = addr_to_node.insert(n.addr, NodeId(i));
            assert!(prev.is_none(), "duplicate address {}", n.addr);
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adjacency,
            addr_to_node,
        }
    }
}

/// All-pairs next-hop routing computed by per-source Dijkstra over link
/// propagation delays (ties broken by node index, so routing is
/// deterministic).
#[derive(Debug, Clone)]
pub struct Routing {
    /// `next_hop[src][dst]` — neighbor to forward to, `None` if unreachable
    /// or `src == dst`.
    next_hop: Vec<Vec<Option<NodeId>>>,
    /// `dist[src][dst]` in nanoseconds of propagation delay.
    dist: Vec<Vec<u64>>,
}

impl Routing {
    /// Compute shortest-path routing for `topo`.
    pub fn shortest_paths(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut next_hop = vec![vec![None; n]; n];
        let mut dist = vec![vec![u64::MAX; n]; n];
        for src in 0..n {
            // Dijkstra from src.
            let mut d = vec![u64::MAX; n];
            let mut first = vec![None; n]; // first hop on path src->v
            let mut heap = std::collections::BinaryHeap::new();
            d[src] = 0;
            heap.push(std::cmp::Reverse((0u64, src, None::<NodeId>)));
            while let Some(std::cmp::Reverse((du, u, fh))) = heap.pop() {
                if du > d[u] {
                    continue;
                }
                if u != src && first[u].is_none() {
                    first[u] = fh;
                }
                for &(v, l) in topo.neighbors(NodeId(u)) {
                    let w = topo.link(l).delay.as_nanos().max(1);
                    let nd = du.saturating_add(w);
                    let cand_fh = if u == src { Some(v) } else { first[u] };
                    if nd < d[v.0] {
                        d[v.0] = nd;
                        first[v.0] = None; // finalized when popped
                        heap.push(std::cmp::Reverse((nd, v.0, cand_fh)));
                    }
                }
            }
            dist[src].copy_from_slice(&d);
            next_hop[src].copy_from_slice(&first);
        }
        Routing { next_hop, dist }
    }

    /// Next hop from `src` towards `dst` (`None` if unreachable or equal).
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        self.next_hop[src.0][dst.0]
    }

    /// Override the next hop for a specific `(src, dst)` pair. Used by
    /// operator-level actions (and by tests) to steer paths.
    pub fn set_next_hop(&mut self, src: NodeId, dst: NodeId, via: Option<NodeId>) {
        self.next_hop[src.0][dst.0] = via;
    }

    /// Propagation distance (ns) between two nodes; `u64::MAX` if unreachable.
    pub fn distance_ns(&self, src: NodeId, dst: NodeId) -> u64 {
        self.dist[src.0][dst.0]
    }

    /// The full path `src..=dst` (inclusive), following next hops.
    /// Returns `None` if unreachable. Panics on routing loops longer than the
    /// node count (should be impossible with shortest paths).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut path = vec![src];
        let mut cur = src;
        let limit = self.next_hop.len() + 1;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            assert!(path.len() <= limit, "routing loop detected");
        }
        Some(path)
    }
}

/// A destination prefix announced by a host: maps [`Prefix`] to the host
/// node that sinks its traffic. Longest-prefix match.
#[derive(Debug, Clone, Default)]
pub struct PrefixTable {
    entries: Vec<(Prefix, NodeId)>,
}

impl PrefixTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce `prefix` at `node`.
    pub fn announce(&mut self, prefix: Prefix, node: NodeId) {
        self.entries.push((prefix, node));
        // Keep sorted by descending length for longest-prefix match.
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.0.len));
    }

    /// Longest-prefix match for `addr`.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, NodeId)> {
        self.entries.iter().find(|(p, _)| p.contains(addr)).copied()
    }

    /// All announced entries.
    pub fn entries(&self) -> &[(Prefix, NodeId)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Bandwidth, SimDuration};

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        // h1 -- r -- h2
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
        let r = b.router("r");
        let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
        b.link(h1, r, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
        b.link(r, h2, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
        (b.build(), h1, r, h2)
    }

    #[test]
    fn adjacency_and_lookup() {
        let (t, h1, r, h2) = line3();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.neighbors(r).len(), 2);
        assert_eq!(t.node_by_addr(Addr::new(10, 0, 0, 2)), Some(h2));
        assert_eq!(t.node_by_name("h1"), Some(h1));
        assert!(t.link_between(h1, r).is_some());
        assert!(t.link_between(h1, h2).is_none());
    }

    #[test]
    fn routing_line() {
        let (t, h1, r, h2) = line3();
        let routing = Routing::shortest_paths(&t);
        assert_eq!(routing.next_hop(h1, h2), Some(r));
        assert_eq!(routing.next_hop(r, h2), Some(h2));
        assert_eq!(routing.next_hop(h1, h1), None);
        assert_eq!(routing.path(h1, h2), Some(vec![h1, r, h2]));
    }

    #[test]
    fn routing_prefers_short_path() {
        // square with a shortcut: a-b-d (2ms) vs a-c-d (20ms)
        let mut b = TopologyBuilder::new();
        let a = b.router("a");
        let bb = b.router("b");
        let c = b.router("c");
        let d = b.router("d");
        b.link(a, bb, Bandwidth::mbps(10), SimDuration::from_millis(1), 8);
        b.link(bb, d, Bandwidth::mbps(10), SimDuration::from_millis(1), 8);
        b.link(a, c, Bandwidth::mbps(10), SimDuration::from_millis(10), 8);
        b.link(c, d, Bandwidth::mbps(10), SimDuration::from_millis(10), 8);
        let t = b.build();
        let routing = Routing::shortest_paths(&t);
        assert_eq!(routing.next_hop(a, d), Some(bb));
        assert_eq!(
            routing.distance_ns(a, d),
            SimDuration::from_millis(2).as_nanos()
        );
    }

    #[test]
    fn routing_unreachable() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a", Addr::new(1, 0, 0, 1));
        let c = b.host("c", Addr::new(1, 0, 0, 2));
        let t = b.build();
        let routing = Routing::shortest_paths(&t);
        assert_eq!(routing.next_hop(a, c), None);
        assert_eq!(routing.path(a, c), None);
    }

    #[test]
    fn set_next_hop_overrides() {
        let (t, h1, _r, h2) = line3();
        let mut routing = Routing::shortest_paths(&t);
        routing.set_next_hop(h1, h2, None);
        assert_eq!(routing.next_hop(h1, h2), None);
    }

    #[test]
    fn prefix_table_longest_match() {
        let mut pt = PrefixTable::new();
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        pt.announce(Prefix::new(Addr::new(10, 0, 0, 0), 8), n1);
        pt.announce(Prefix::new(Addr::new(10, 1, 0, 0), 16), n2);
        assert_eq!(pt.lookup(Addr::new(10, 1, 2, 3)).unwrap().1, n2);
        assert_eq!(pt.lookup(Addr::new(10, 2, 2, 3)).unwrap().1, n1);
        assert!(pt.lookup(Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    #[should_panic]
    fn duplicate_address_rejected() {
        let mut b = TopologyBuilder::new();
        b.host("x", Addr::new(1, 1, 1, 1));
        b.host("y", Addr::new(1, 1, 1, 1));
        b.build();
    }

    #[test]
    fn routers_get_distinct_addrs() {
        let mut b = TopologyBuilder::new();
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let t = b.build();
        assert_ne!(t.node(r1).addr, t.node(r2).addr);
    }
}
