//! Global counters and (optional) bounded in-memory tracing, in the spirit
//! of smoltcp's pcap-style packet dumps but structured rather than binary.

use crate::packet::{FlowKey, Packet};
use crate::time::SimTime;
use crate::topology::NodeId;

/// Global drop/delivery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Packets delivered to a node (including routers, i.e. per hop).
    pub delivered: u64,
    /// Deliveries to nodes with no logic installed.
    pub sunk: u64,
    /// Drops: DropTail queue overflow.
    pub dropped_queue: u64,
    /// Drops: decided by a MitM tap.
    pub dropped_tap: u64,
    /// Drops: fault injection or failed link.
    pub dropped_fault: u64,
    /// Drops: TTL expired at a router.
    pub dropped_ttl: u64,
    /// Drops: decided by a data-plane program.
    pub dropped_program: u64,
    /// Drops: no route / unannounced destination.
    pub dropped_no_route: u64,
}

impl Counters {
    /// Sum of all drop categories.
    pub fn total_drops(&self) -> u64 {
        self.dropped_queue
            + self.dropped_tap
            + self.dropped_fault
            + self.dropped_ttl
            + self.dropped_program
            + self.dropped_no_route
    }
}

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet delivered to a node.
    Deliver,
    /// Packet started serializing onto a link.
    TxStart,
    /// Dropped: queue overflow.
    QueueDrop,
    /// Dropped: tap decision.
    TapDrop,
    /// Dropped: fault injection / link down.
    FaultDrop,
    /// Dropped: no route.
    NoRoute,
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// When.
    pub time: SimTime,
    /// What.
    pub kind: TraceKind,
    /// Node involved (for deliveries).
    pub node: Option<NodeId>,
    /// Packet id.
    pub pkt_id: u64,
    /// Flow key.
    pub key: FlowKey,
}

/// Bounded in-memory trace (disabled by default; enabling costs one branch
/// per record).
#[derive(Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    enabled: bool,
    /// Records discarded after the buffer filled.
    pub truncated: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            capacity: 0,
            enabled: false,
            truncated: 0,
        }
    }

    /// A trace that records up to `capacity` events, then counts overflow.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            truncated: 0,
        }
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, time: SimTime, kind: TraceKind, node: Option<NodeId>, pkt: &Packet) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.truncated += 1;
            return;
        }
        self.events.push(TraceEvent {
            time,
            kind,
            node,
            pkt_id: pkt.id,
            key: pkt.key,
        });
    }

    /// Recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether recording is active (a parallel-engine precondition:
    /// domain runs keep their traces off so no cross-thread interleaving
    /// can reach an observable buffer).
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, FlowKey, Packet};

    fn pkt() -> Packet {
        Packet::udp(
            FlowKey::udp(Addr::new(1, 0, 0, 1), 1, Addr::new(1, 0, 0, 2), 2),
            10,
        )
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::Deliver, None, &pkt());
        assert!(t.events().is_empty());
        assert_eq!(t.truncated, 0);
    }

    #[test]
    fn enabled_caps_at_capacity() {
        let mut t = Trace::enabled(2);
        for _ in 0..5 {
            t.record(SimTime::ZERO, TraceKind::Deliver, None, &pkt());
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.truncated, 3);
    }

    #[test]
    fn counters_sum() {
        let c = Counters {
            dropped_queue: 1,
            dropped_tap: 2,
            dropped_fault: 3,
            dropped_ttl: 4,
            dropped_program: 5,
            dropped_no_route: 6,
            ..Default::default()
        };
        assert_eq!(c.total_drops(), 21);
    }
}
