//! A hierarchical timing wheel — the event queue's scheduling core.
//!
//! The classic binary-heap event queue costs `O(log n)` per operation and
//! moves entries around on every sift. Discrete-event simulators with large
//! pending-event populations (dense timer sets, thousands of in-flight
//! packets) do better with the hashed hierarchical timing wheel of Varghese
//! & Lauck: `O(1)` schedule, `O(1)` amortized pop, entries written once per
//! residence level.
//!
//! ## Geometry
//!
//! Time in nanoseconds is quantized to **ticks** of `2^10` ns (1.024 µs —
//! finer than any serialization delay the experiments produce, so slot
//! collisions stay small). Ticks are split byte-wise across **4 levels ×
//! 256 slots**: level 0 spans 256 ticks (~262 µs), level 1 spans 256×256
//! ticks (~67 ms), level 2 ~17 s, level 3 ~73 min. Events beyond the
//! 4-level horizon (or past tick `2^32`) wait in a small overflow heap.
//!
//! An entry is placed by the **first differing byte** between its tick and
//! the wheel cursor: if tick and cursor agree above byte 0 the entry goes
//! in level 0 at slot `tick & 255`; if they agree above byte 1 it goes in
//! level 1 at slot `(tick >> 8) & 255`; and so on. When the cursor enters a
//! higher-level slot's window, the slot is **cascaded**: its entries are
//! re-placed relative to the new cursor and land at a strictly lower level.
//! This lazy re-placement preserves the key invariant — *level 0 always
//! holds exactly the entries of the cursor's current 256-tick window, so
//! the first occupied level-0 slot contains the global minimum*.
//!
//! ## Determinism contract
//!
//! Pops come out ordered by `(time, seq)` where `seq` is a monotone
//! per-wheel sequence number assigned at schedule time — byte-for-byte the
//! ordering of the binary-heap queue it replaces ([`BaselineHeapQueue`],
//! kept for equivalence testing and benchmarks). Entries scheduled in the
//! past (before the cursor) are clamped into the cursor's slot; the
//! `(time, seq)` sort inside the slot still yields them in exactly the
//! order the heap would.
//!
//! Per-slot entry lists are `VecDeque`s sorted *descending* by
//! `(time, seq)` so the minimum pops from the back in `O(1)`. The common
//! schedule patterns — same-tick FIFO bursts (monotone `seq`) and clamped
//! stragglers — extend the deque at an end without disturbing the order;
//! anything else marks the slot dirty and it is re-sorted on first pop.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the tick quantum in nanoseconds (tick = `time >> TICK_SHIFT`).
const TICK_SHIFT: u32 = 10;
/// log2 of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; ticks beyond `2^(LEVELS*8)` defer to the overflow heap.
const LEVELS: usize = 4;

/// One pending entry. `seq` is 128 bits wide: the wheel's own monotone
/// counter only ever uses the low 64, but callers may supply wider
/// externally-computed keys via [`TimerWheel::schedule_keyed`] (the
/// parallel engine encodes a global dispatch lineage in them).
#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u128,
    value: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (u64, u128) {
        (self.time, self.seq)
    }
}

/// Overflow-heap wrapper ordered by `(time, seq)` only.
#[derive(Debug)]
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// One wheel slot: entries kept descending by `(time, seq)` (min at the
/// back) unless `sorted` is false, in which case the next pop re-sorts.
#[derive(Debug)]
struct Slot<T> {
    entries: VecDeque<Entry<T>>,
    sorted: bool,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            entries: VecDeque::new(),
            sorted: true,
        }
    }
}

impl<T> Slot<T> {
    fn push(&mut self, e: Entry<T>) {
        if self.entries.is_empty() {
            self.entries.push_back(e);
            self.sorted = true;
            return;
        }
        if self.sorted {
            // Descending order: front is the max, back is the min.
            // lint: allow(panic): guarded by the is_empty early return above
            if e.key() >= self.entries.front().expect("non-empty").key() {
                self.entries.push_front(e);
                return;
            }
            // lint: allow(panic): guarded by the is_empty early return above
            if e.key() <= self.entries.back().expect("non-empty").key() {
                self.entries.push_back(e);
                return;
            }
            self.sorted = false;
        }
        self.entries.push_back(e);
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries
                .make_contiguous()
                .sort_unstable_by(|a, b| b.key().cmp(&a.key()));
            self.sorted = true;
        }
    }

    /// Remove and return the minimum-key entry.
    fn pop_min(&mut self) -> Option<Entry<T>> {
        self.ensure_sorted();
        self.entries.pop_back()
    }

    /// Key of the minimum entry without mutating (linear when dirty).
    fn peek_min_key(&self) -> Option<(u64, u128)> {
        if self.sorted {
            self.entries.back().map(|e| e.key())
        } else {
            self.entries.iter().map(|e| e.key()).min()
        }
    }
}

/// One level: 256 slots plus a 256-bit occupancy bitmap for find-first-set
/// scans.
#[derive(Debug)]
struct Level<T> {
    slots: Vec<Slot<T>>,
    occupied: [u64; SLOTS / 64],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Slot::default()).collect(),
            occupied: [0; SLOTS / 64],
        }
    }

    fn mark(&mut self, i: usize) {
        self.occupied[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.occupied[i / 64] &= !(1 << (i % 64));
    }

    /// First occupied slot index `>= from`, if any.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (u64::MAX << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= SLOTS / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

/// Counters describing the wheel's internal work — exported as telemetry
/// gauges/counters by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Higher-level slots cascaded (drained and re-placed) so far.
    pub cascades: u64,
    /// Entries moved by those cascades.
    pub cascaded_entries: u64,
    /// Schedules deferred to the overflow heap (beyond the 4-level
    /// horizon).
    pub deferred: u64,
}

/// Hierarchical 4×256 timing wheel with a deterministic `(time, seq)`
/// pop order. See the module docs for the placement and cascade rules.
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    overflow: BinaryHeap<Reverse<HeapEntry<T>>>,
    /// Tick of the most recent pop (placement reference point).
    cursor: u64,
    next_seq: u128,
    len: usize,
    stats: WheelStats,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Internal work counters.
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Schedule `value` at absolute `time` (nanoseconds). Entries at equal
    /// times pop FIFO (monotone sequence tie-break).
    pub fn schedule(&mut self, time: u64, value: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { time, seq, value });
    }

    /// Schedule `value` at absolute `time` with a caller-supplied 128-bit
    /// tie-break key instead of the wheel's internal counter. Entries at
    /// equal times pop in ascending `key` order.
    ///
    /// A given wheel must use *either* [`TimerWheel::schedule`] *or*
    /// `schedule_keyed`, never both: the internal counter and external keys
    /// occupy the same ordering dimension, and mixing them would make the
    /// pop order depend on unrelated scheduling history. The parallel
    /// engine's per-domain wheels are keyed-only; the sequential engine's
    /// wheel is counter-only.
    pub fn schedule_keyed(&mut self, time: u64, key: u128, value: T) {
        self.len += 1;
        self.place(Entry {
            time,
            seq: key,
            value,
        });
    }

    /// Place (or re-place, during cascades) one entry relative to the
    /// current cursor.
    fn place(&mut self, e: Entry<T>) {
        // Entries in the past are clamped into the cursor's slot; the
        // (time, seq) sort inside the slot restores the heap's order.
        let tick = (e.time >> TICK_SHIFT).max(self.cursor);
        let x = tick ^ self.cursor;
        let level = if x < 1 << SLOT_BITS {
            0
        } else if x < 1 << (2 * SLOT_BITS) {
            1
        } else if x < 1 << (3 * SLOT_BITS) {
            2
        } else if x < 1 << (4 * SLOT_BITS) {
            3
        } else {
            self.stats.deferred += 1;
            self.overflow.push(Reverse(HeapEntry(e)));
            return;
        };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].slots[slot].push(e);
        self.levels[level].mark(slot);
    }

    /// Byte `level` of the cursor (the scan base for that level).
    fn base(&self, level: usize) -> usize {
        ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Pop the minimum-`(time, seq)` entry, advancing the cursor.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.pop_entry().map(|e| (e.time, e.value))
    }

    /// Pop the minimum entry together with its tie-break key. Used by
    /// keyed wheels (see [`TimerWheel::schedule_keyed`]) where the key
    /// carries meaning beyond FIFO ordering.
    pub fn pop_keyed(&mut self) -> Option<(u64, u128, T)> {
        self.pop_entry().map(|e| (e.time, e.seq, e.value))
    }

    fn pop_entry(&mut self) -> Option<Entry<T>> {
        loop {
            // Level 0 holds exactly the current 256-tick window; its first
            // occupied slot contains the global minimum.
            if let Some(i) = self.levels[0].first_occupied_from(self.base(0)) {
                let slot = &mut self.levels[0].slots[i];
                let e = slot.pop_min().expect("occupied bit set on empty slot"); // lint: allow(panic): occupancy bitmap invariant
                if slot.entries.is_empty() {
                    self.levels[0].clear(i);
                }
                self.len -= 1;
                self.cursor = self.cursor.max(e.time >> TICK_SHIFT);
                return Some(e);
            }
            // Level 0 exhausted: cascade the next occupied higher-level
            // slot into the lower levels and retry.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if let Some(j) = self.levels[level].first_occupied_from(self.base(level)) {
                    let entries = std::mem::take(&mut self.levels[level].slots[j].entries);
                    self.levels[level].slots[j].sorted = true;
                    self.levels[level].clear(j);
                    // Move the cursor to the start of that slot's window:
                    // keep bytes above `level`, set byte `level` to j, zero
                    // the rest.
                    let w = SLOT_BITS * level as u32;
                    self.cursor = ((self.cursor >> (w + SLOT_BITS)) << (w + SLOT_BITS))
                        | (j as u64) << w;
                    self.stats.cascades += 1;
                    self.stats.cascaded_entries += entries.len() as u64;
                    for e in entries {
                        self.place(e);
                    }
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // All wheels empty: promote the next overflow epoch, if any.
            let epoch = match self.overflow.peek() {
                Some(Reverse(HeapEntry(e))) => (e.time >> TICK_SHIFT) >> (SLOT_BITS * 4),
                None => return None,
            };
            self.cursor = epoch << (SLOT_BITS * 4);
            while let Some(Reverse(HeapEntry(e))) = self.overflow.peek() {
                if (e.time >> TICK_SHIFT) >> (SLOT_BITS * 4) != epoch {
                    break;
                }
                let Reverse(HeapEntry(e)) = self.overflow.pop().expect("peeked"); // lint: allow(panic): peek above proved non-empty
                self.place(e);
            }
        }
    }

    /// Time of the minimum pending entry, without mutating. A read-only
    /// version of the [`TimerWheel::pop`] scan: the first occupied slot of
    /// the lowest non-empty level holds the global minimum.
    pub fn peek_time(&self) -> Option<u64> {
        for level in 0..LEVELS {
            if let Some(i) = self.levels[level].first_occupied_from(self.base(level)) {
                let (time, _) = self.levels[level].slots[i]
                    .peek_min_key()
                    .expect("occupied bit set on empty slot"); // lint: allow(panic): occupancy bitmap invariant
                return Some(time);
            }
        }
        self.overflow.peek().map(|Reverse(HeapEntry(e))| e.time)
    }

    /// `(time, key)` of the minimum pending entry, without mutating. Same
    /// scan as [`TimerWheel::peek_time`]; correct for the key too because
    /// entries at equal times always share a slot (placement is a pure
    /// function of tick and cursor), so the slot minimum is the global
    /// minimum.
    pub fn peek_key(&self) -> Option<(u64, u128)> {
        for level in 0..LEVELS {
            if let Some(i) = self.levels[level].first_occupied_from(self.base(level)) {
                let key = self.levels[level].slots[i]
                    .peek_min_key()
                    .expect("occupied bit set on empty slot"); // lint: allow(panic): occupancy bitmap invariant
                return Some(key);
            }
        }
        self.overflow
            .peek()
            .map(|Reverse(HeapEntry(e))| (e.time, e.seq))
    }

    /// Visit every pending entry as `(time, seq, &value)`, in storage
    /// order (not pop order — sort by `(time, seq)` for that). Borrows
    /// only; the caller decides what to clone. Walks the occupancy
    /// bitmaps, so the cost scales with pending entries, not with the
    /// 1024 slots of the wheel.
    pub fn iter(&self) -> Vec<(u64, u128, &T)> {
        let mut v = Vec::with_capacity(self.len);
        for l in &self.levels {
            for (w, &bits) in l.occupied.iter().enumerate() {
                let mut b = bits;
                while b != 0 {
                    let i = b.trailing_zeros() as usize;
                    b &= b - 1;
                    for e in &l.slots[(w << 6) | i].entries {
                        v.push((e.time, e.seq, &e.value));
                    }
                }
            }
        }
        for Reverse(HeapEntry(e)) in &self.overflow {
            v.push((e.time, e.seq, &e.value));
        }
        v
    }
}

/// The binary-heap event queue the wheel replaced, kept as the reference
/// implementation: the propcheck equivalence suite drives both with
/// identical schedules and asserts identical pop order, and the
/// microbenches race them head-to-head.
#[derive(Debug)]
pub struct BaselineHeapQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    next_seq: u128,
}

impl<T> Default for BaselineHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BaselineHeapQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        BaselineHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `value` at absolute `time` (nanoseconds).
    pub fn schedule(&mut self, time: u64, value: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry(Entry { time, seq, value })));
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(HeapEntry(e))| e.time)
    }

    /// Pop the earliest pending entry.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(HeapEntry(e))| (e.time, e.value))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One entry per level's range, scheduled out of order.
        let times = [
            5 << TICK_SHIFT,                   // level 0
            300 << TICK_SHIFT,                 // level 1
            70_000 << TICK_SHIFT,              // level 2
            20_000_000 << TICK_SHIFT,          // level 3
            (1u64 << 33) << TICK_SHIFT,        // overflow
            7,                                 // sub-tick, level 0
        ];
        for &t in times.iter().rev() {
            w.schedule(t, t);
        }
        assert_eq!(w.len(), times.len());
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        for want in sorted {
            let (t, v) = w.pop().expect("entry");
            assert_eq!(t, want);
            assert_eq!(v, want);
        }
        assert!(w.is_empty());
        assert!(w.pop().is_none());
        let st = w.stats();
        assert!(st.cascades > 0, "higher levels must have cascaded");
        assert_eq!(st.deferred, 1);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut w = TimerWheel::new();
        for i in 0..1000u64 {
            w.schedule(123_456, i);
        }
        for i in 0..1000u64 {
            assert_eq!(w.pop(), Some((123_456, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        assert_eq!(w.peek_time(), None);
        for &t in &[9_000_000u64, 50, 4_000, 1u64 << 45] {
            w.schedule(t, t);
        }
        while let Some(peek) = w.peek_time() {
            let (t, _) = w.pop().expect("peeked");
            assert_eq!(peek, t);
        }
    }

    #[test]
    fn past_schedules_clamp_but_keep_heap_order() {
        let mut w = TimerWheel::new();
        let mut h = BaselineHeapQueue::new();
        // Advance the wheel cursor far forward…
        w.schedule(1 << 30, 0u64);
        h.schedule(1 << 30, 0u64);
        assert_eq!(w.pop(), h.pop());
        // …then schedule into the past, twice, out of order.
        for &t in &[5_000u64, 100, 2 << 30, 7] {
            w.schedule(t, t);
            h.schedule(t, t);
        }
        for _ in 0..4 {
            assert_eq!(w.pop(), h.pop());
        }
    }

    #[test]
    fn interleaved_schedule_pop_matches_heap() {
        let mut w = TimerWheel::new();
        let mut h = BaselineHeapQueue::new();
        // Deterministic scramble covering re-entrant scheduling around the
        // cursor, duplicates, and multi-level spreads.
        let mut x = 0x9E3779B97F4A7C15u64;
        for round in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 16) % 50_000_000;
            w.schedule(t, round);
            h.schedule(t, round);
            if round % 3 == 0 {
                assert_eq!(w.pop(), h.pop());
            }
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn iter_sees_every_pending_entry() {
        let mut w = TimerWheel::new();
        for &t in &[10u64, 5_000_000, 1 << 50] {
            w.schedule(t, t);
        }
        let mut seen: Vec<(u64, u128)> = w.iter().into_iter().map(|(t, s, _)| (t, s)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], (10, 0));
    }

    #[test]
    fn keyed_schedule_pops_in_key_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // Same time, keys scheduled out of order — including keys wider
        // than 64 bits (the parallel engine's provisional-key bit).
        let keys: [u128; 5] = [7, 1u128 << 127 | 3, 2, 1u128 << 100, 0];
        for (i, &k) in keys.iter().enumerate() {
            w.schedule_keyed(5_000, k, i as u32);
        }
        // And one earlier-time entry with a huge key: time dominates.
        w.schedule_keyed(4_000, u128::MAX, 99);
        assert_eq!(w.peek_key(), Some((4_000, u128::MAX)));
        assert_eq!(w.pop_keyed(), Some((4_000, u128::MAX, 99)));
        let mut sorted: Vec<u128> = keys.to_vec();
        sorted.sort_unstable();
        for k in sorted {
            let (t, got, v) = w.pop_keyed().expect("entry");
            assert_eq!(t, 5_000);
            assert_eq!(got, k);
            assert_eq!(keys[v as usize], k);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn peek_key_matches_pop_keyed_across_levels() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        let mut x = 0xABCDu64;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 16) % 80_000_000;
            w.schedule_keyed(t, (i as u128) << 32, i);
        }
        while let Some(peek) = w.peek_key() {
            let (t, k, _) = w.pop_keyed().expect("peeked");
            assert_eq!(peek, (t, k));
        }
    }

    #[test]
    fn dense_same_tick_bursts_stay_cheap() {
        // Same-tick FIFO bursts take the push_front fast path; verify the
        // slot never goes unsorted (O(1) pops).
        let mut w = TimerWheel::new();
        for i in 0..10_000u64 {
            w.schedule(42, i);
        }
        assert!(w.levels[0].slots[0].sorted, "FIFO burst must stay sorted");
        for i in 0..10_000u64 {
            assert_eq!(w.pop(), Some((42, i)));
        }
    }
}
