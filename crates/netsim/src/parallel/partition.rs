//! Topology partitioning: latency-bounded domains and the conservative
//! lookahead.
//!
//! The partitioner contracts every link whose propagation delay is below
//! the lookahead floor (two nodes joined by a fast link must share a
//! domain) and lets the remaining *cut links* carry cross-domain
//! traffic. The **lookahead** is the minimum propagation delay over the
//! cut: a dispatch at time `s` in one domain can schedule an event in
//! another domain no earlier than `s + lookahead`, which is the
//! conservative-synchronization guarantee every barrier window relies
//! on. Low-lookahead cuts never appear by construction — a link too fast
//! to give useful lookahead is contracted instead of cut (degenerating,
//! in the worst case, to a single domain and a sequential run).

use crate::time::SimDuration;
use crate::topology::{LinkId, NodeId, Topology};

/// Default lookahead floor: links faster than this are contracted into
/// one domain. One microsecond comfortably exceeds every serialization
/// delay the experiments produce while keeping WAN-scale links
/// (milliseconds) available as cuts.
pub fn default_lookahead_floor() -> SimDuration {
    SimDuration::from_micros(1)
}

/// A partition of the topology into latency-bounded domains, plus the
/// conservative lookahead its cut links permit.
#[derive(Debug)]
pub struct DomainMap {
    domain_of: Vec<u32>,
    domains: Vec<Vec<NodeId>>,
    cut_links: Vec<LinkId>,
    lookahead: SimDuration,
}

impl DomainMap {
    /// Partition `topo` by contracting every link with propagation delay
    /// `< floor`. Domains are numbered densely in order of their lowest
    /// node id, so the decomposition is a pure deterministic function of
    /// the topology.
    ///
    /// ```
    /// use dui_netsim::parallel::partition::DomainMap;
    /// use dui_netsim::prelude::*;
    ///
    /// let mut b = TopologyBuilder::new();
    /// let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    /// let r1 = b.router("r1");
    /// let r2 = b.router("r2");
    /// let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    /// // LAN links (fast — contracted), one WAN link (slow — cut).
    /// b.link(h1, r1, Bandwidth::gbps(1), SimDuration::from_nanos(500), 64);
    /// b.link(r2, h2, Bandwidth::gbps(1), SimDuration::from_nanos(500), 64);
    /// b.link(r1, r2, Bandwidth::gbps(1), SimDuration::from_millis(5), 64);
    ///
    /// let map = DomainMap::partition(&b.build(), SimDuration::from_micros(1));
    /// assert_eq!(map.domain_count(), 2);
    /// assert_eq!(map.domain_of(h1), map.domain_of(r1));
    /// assert_eq!(map.domain_of(r2), map.domain_of(h2));
    /// assert_ne!(map.domain_of(r1), map.domain_of(r2));
    /// // Lookahead = min propagation delay over the cut.
    /// assert_eq!(map.lookahead(), SimDuration::from_millis(5));
    /// ```
    pub fn partition(topo: &Topology, floor: SimDuration) -> DomainMap {
        let n = topo.node_count();
        // Union-find over nodes, contracting sub-floor links.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for link in topo.links() {
            if link.delay < floor {
                let (ra, rb) = (find(&mut parent, link.a.0), find(&mut parent, link.b.0));
                if ra != rb {
                    // Deterministic union: smaller root wins.
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi] = lo;
                }
            }
        }
        // Dense domain ids in order of lowest member node id.
        let mut domain_of = vec![u32::MAX; n];
        let mut domains: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            if domain_of[root] == u32::MAX {
                domain_of[root] = domains.len() as u32;
                domains.push(Vec::new());
            }
            domain_of[i] = domain_of[root];
            domains[domain_of[i] as usize].push(NodeId(i));
        }
        // Cut links and the lookahead they permit.
        let mut cut_links = Vec::new();
        let mut lookahead = SimDuration(u64::MAX);
        for (li, link) in topo.links().iter().enumerate() {
            if domain_of[link.a.0] != domain_of[link.b.0] {
                cut_links.push(LinkId(li));
                lookahead = lookahead.min(link.delay);
            }
        }
        if cut_links.is_empty() {
            lookahead = SimDuration::ZERO;
        }
        DomainMap {
            domain_of,
            domains,
            cut_links,
            lookahead,
        }
    }

    /// The domain `node` belongs to.
    pub fn domain_of(&self, node: NodeId) -> u32 {
        self.domain_of[node.0]
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Member nodes per domain (each sorted ascending by node id).
    pub fn domains(&self) -> &[Vec<NodeId>] {
        &self.domains
    }

    /// Links whose endpoints live in different domains.
    pub fn cut_links(&self) -> &[LinkId] {
        &self.cut_links
    }

    /// Conservative lookahead: the minimum propagation delay over the cut
    /// links (zero when the topology collapses to a single domain).
    ///
    /// ```
    /// use dui_netsim::parallel::partition::DomainMap;
    /// use dui_netsim::prelude::*;
    ///
    /// let mut b = TopologyBuilder::new();
    /// let a = b.router("a");
    /// let c = b.router("c");
    /// // Single fast link: contracted — one domain, no lookahead.
    /// b.link(a, c, Bandwidth::gbps(1), SimDuration::from_nanos(100), 64);
    /// let map = DomainMap::partition(&b.build(), SimDuration::from_micros(1));
    /// assert_eq!(map.domain_count(), 1);
    /// assert_eq!(map.lookahead(), SimDuration::ZERO);
    /// ```
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use crate::time::Bandwidth;
    use crate::topology::TopologyBuilder;

    fn chain(delays: &[SimDuration]) -> Topology {
        let mut b = TopologyBuilder::new();
        let mut prev = b.host("h0", Addr::new(10, 0, 0, 1));
        for (i, &d) in delays.iter().enumerate() {
            let next = b.router(&format!("r{i}"));
            b.link(prev, next, Bandwidth::gbps(1), d, 64);
            prev = next;
        }
        b.build()
    }

    #[test]
    fn all_slow_links_make_singleton_domains() {
        let d = SimDuration::from_millis(2);
        let topo = chain(&[d, d, d]);
        let map = DomainMap::partition(&topo, default_lookahead_floor());
        assert_eq!(map.domain_count(), 4);
        assert_eq!(map.cut_links().len(), 3);
        assert_eq!(map.lookahead(), d);
    }

    #[test]
    fn fast_links_contract() {
        let fast = SimDuration::from_nanos(10);
        let slow = SimDuration::from_millis(7);
        let topo = chain(&[fast, slow, fast]);
        let map = DomainMap::partition(&topo, default_lookahead_floor());
        assert_eq!(map.domain_count(), 2);
        assert_eq!(map.cut_links().len(), 1);
        assert_eq!(map.lookahead(), slow);
        assert_eq!(map.domain_of(NodeId(0)), map.domain_of(NodeId(1)));
        assert_eq!(map.domain_of(NodeId(2)), map.domain_of(NodeId(3)));
    }

    #[test]
    fn lookahead_is_min_over_cut() {
        let topo = chain(&[
            SimDuration::from_millis(9),
            SimDuration::from_millis(3),
            SimDuration::from_millis(5),
        ]);
        let map = DomainMap::partition(&topo, default_lookahead_floor());
        assert_eq!(map.lookahead(), SimDuration::from_millis(3));
    }

    #[test]
    fn domain_ids_are_dense_and_ordered_by_lowest_member() {
        let d = SimDuration::from_millis(2);
        let topo = chain(&[d, d]);
        let map = DomainMap::partition(&topo, default_lookahead_floor());
        for i in 0..3 {
            assert_eq!(map.domain_of(NodeId(i)), i as u32);
            assert_eq!(map.domains()[i], vec![NodeId(i)]);
        }
    }
}
