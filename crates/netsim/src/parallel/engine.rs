//! Split → window loop → join: the parallel engine's orchestration.
//!
//! `run_parallel` checks the preconditions, splits the merged simulator
//! state into per-domain simulators, drives barrier windows (inline for
//! one worker, scoped threads otherwise — same code path, same
//! results), and joins everything back into the merged simulator. All
//! cross-thread state lives behind `std::sync` primitives; the merge and
//! the window schedule are computed single-threaded on the leader, so
//! nothing observable depends on thread timing.

use super::barrier::{merge_window, GlobalCursors};
use super::domain::{run_window, DomainExt};
use super::key::initial_key;
use super::partition::{default_lookahead_floor, DomainMap};
use super::{FallbackReason, ParallelReport};
use crate::arena::PacketArena;
use crate::event::{Event, EventQueue};
use crate::link::DirState;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use std::sync::{Arc, Barrier, Mutex};

/// Run the event loop to `t` under the parallel engine, or report why
/// the sequential engine must be used instead.
pub(crate) fn run_parallel(sim: &mut Simulator, t: SimTime) -> Result<ParallelReport, FallbackReason> {
    let map = match &sim.domain_map {
        Some(m) => Arc::clone(m),
        None => {
            let m = Arc::new(DomainMap::partition(
                &sim.core.topo,
                default_lookahead_floor(),
            ));
            sim.domain_map = Some(Arc::clone(&m));
            m
        }
    };
    preconditions(sim, &map)?;
    let threads = sim.sim_threads.min(map.domain_count()).max(1);
    let mut g = GlobalCursors {
        next_global: 0,
        next_pkt_id: sim.core.next_pkt_id,
    };
    let mut doms = split(sim, &map);
    let windows = if threads == 1 {
        window_loop_inline(&mut doms, map.lookahead(), &mut g, t)
    } else {
        let (parked, w) = window_loop_threaded(doms, map.lookahead(), &mut g, t, threads);
        doms = parked;
        w
    };
    join(sim, doms, &g, &map, t);
    Ok(ParallelReport {
        domains: map.domain_count(),
        threads,
        windows,
        lookahead: map.lookahead(),
    })
}

/// The parallel preconditions. Each names engine machinery whose
/// sequential semantics a domain cannot reproduce locally: taps and
/// random faults consume the single sequential RNG/interception stream,
/// traces and spans record a single interleaved timeline, and a
/// single-domain partition has nothing to parallelize. Anything else —
/// link up/down state, routing edits, node logic of every kind — is
/// either domain-local or exchanged at barriers.
fn preconditions(sim: &Simulator, map: &DomainMap) -> Result<(), FallbackReason> {
    if map.domain_count() < 2 {
        return Err(FallbackReason::SingleDomain);
    }
    for lr in &sim.core.links {
        if !lr.taps_ab.is_empty() || !lr.taps_ba.is_empty() {
            return Err(FallbackReason::TapsInstalled);
        }
        for st in [&lr.ab, &lr.ba] {
            if st.fault.drop_prob > 0.0 || st.fault.jitter_max.is_some() {
                return Err(FallbackReason::ActiveFaults);
            }
        }
    }
    if sim.core.trace.is_enabled() {
        return Err(FallbackReason::TraceEnabled);
    }
    if sim.core.spans.is_some() {
        return Err(FallbackReason::SpansEnabled);
    }
    Ok(())
}

/// Which domain executes an event: the owning node for deliveries and
/// timers, the *sender-side* endpoint for link events (each link
/// direction — queue, transmitter, stats — is owned by the domain of
/// the node packets depart from).
fn event_domain(ev: &Event, map: &DomainMap, sim: &Simulator) -> usize {
    let node = match *ev {
        Event::Deliver { node, .. } | Event::Timer { node, .. } => node,
        Event::TxComplete { link, dir } | Event::Offer { link, dir, .. } => {
            let info = &sim.core.links[link.0].info;
            match dir {
                crate::link::Dir::AtoB => info.a,
                crate::link::Dir::BtoA => info.b,
            }
        }
    };
    map.domain_of(node) as usize
}

/// Move an event's packet body (if it carries one) from one arena to
/// another, rewriting the handle.
fn move_event_pkt(ev: Event, from: &mut PacketArena, to: &mut PacketArena) -> Event {
    match ev {
        Event::Deliver { node, pkt } => Event::Deliver {
            node,
            pkt: to.insert(from.take(pkt).expect("event holds a stale packet ref")), // lint: allow(panic)
        },
        Event::Offer { link, dir, pkt } => Event::Offer {
            link,
            dir,
            pkt: to.insert(from.take(pkt).expect("event holds a stale packet ref")), // lint: allow(panic)
        },
        other => other,
    }
}

/// Move a link direction's queued / in-flight packet bodies between
/// arenas, rewriting handles in place.
fn move_dir_pkts(st: &mut DirState, from: &mut PacketArena, to: &mut PacketArena) {
    for r in st.queue.iter_mut() {
        *r = to.insert(from.take(*r).expect("link queue holds a stale packet ref")); // lint: allow(panic)
    }
    if let Some(r) = st.in_flight.as_mut() {
        *r = to.insert(from.take(*r).expect("link holds a stale in-flight ref")); // lint: allow(panic)
    }
}

/// Split the merged simulator into per-domain simulators: pending events
/// (keyed by sequential dispatch position), sender-side link state, and
/// node logic move out; topology, routing, and prefixes are shared by
/// clone. The main arena and queue drain completely.
fn split(sim: &mut Simulator, map: &Arc<DomainMap>) -> Vec<Simulator> {
    let k = map.domain_count();
    let mut doms: Vec<Simulator> = (0..k as u32)
        .map(|d| {
            let mut s = Simulator::new(sim.core.topo.clone(), 0);
            s.core.routing = sim.core.routing.clone();
            s.core.prefixes = sim.core.prefixes.clone();
            s.core.now = sim.core.now;
            s.started = true;
            s.core.domain = Some(Box::new(DomainExt::new(d, Arc::clone(map))));
            s
        })
        .collect();
    // Pending events in sequential dispatch order become the domains'
    // initial keys.
    let snap: Vec<(SimTime, Event)> = sim
        .core
        .queue
        .snapshot_refs()
        .into_iter()
        .map(|(t, e)| (t, *e))
        .collect();
    sim.core.queue = EventQueue::new();
    for (i, (time, ev)) in snap.into_iter().enumerate() {
        let d = event_domain(&ev, map, sim);
        let ev = move_event_pkt(ev, &mut sim.core.arena, &mut doms[d].core.arena);
        doms[d]
            .core
            .queue
            .schedule_keyed(time, initial_key(i as u64), ev);
    }
    // Each link direction moves to its sender-side domain; the shared
    // up/down flag is copied to both (read-only during a run).
    for li in 0..sim.core.links.len() {
        let (a, b, up) = {
            let lr = &sim.core.links[li];
            (lr.info.a, lr.info.b, lr.up)
        };
        let (da, db) = (map.domain_of(a) as usize, map.domain_of(b) as usize);
        doms[da].core.links[li].up = up;
        doms[db].core.links[li].up = up;
        let mut ab = std::mem::take(&mut sim.core.links[li].ab);
        move_dir_pkts(&mut ab, &mut sim.core.arena, &mut doms[da].core.arena);
        doms[da].core.links[li].ab = ab;
        doms[da].core.links[li].stats_ab = sim.core.links[li].stats_ab;
        let mut ba = std::mem::take(&mut sim.core.links[li].ba);
        move_dir_pkts(&mut ba, &mut sim.core.arena, &mut doms[db].core.arena);
        doms[db].core.links[li].ba = ba;
        doms[db].core.links[li].stats_ba = sim.core.links[li].stats_ba;
    }
    debug_assert_eq!(sim.core.arena.live(), 0, "split left packets behind");
    for i in 0..sim.logics.len() {
        if let Some(l) = sim.logics[i].take() {
            doms[map.domain_of(NodeId(i)) as usize].logics[i] = Some(l);
        }
    }
    doms
}

/// Join the domains back into the merged simulator: pending events are
/// sorted by `(time, key)` — the sequential dispatch order — and
/// re-scheduled into a fresh counter-ordered queue, link state and
/// logics move home, the packet-id cursor advances to the barrier
/// cursor, and each domain's telemetry snapshot is absorbed in domain
/// order.
fn join(
    sim: &mut Simulator,
    mut doms: Vec<Simulator>,
    g: &GlobalCursors,
    map: &DomainMap,
    t: SimTime,
) {
    let mut all: Vec<(SimTime, u128, Event, usize)> = Vec::new();
    for (d, s) in doms.iter().enumerate() {
        debug_assert!(
            s.core.domain.as_ref().is_none_or(|e| e.fresh.is_empty() && e.outbox.is_empty()),
            "window state leaked past the final barrier"
        );
        for (time, key, ev) in s.core.queue.drain_keyed() {
            all.push((time, key, ev, d));
        }
    }
    all.sort_unstable_by_key(|&(time, key, _, _)| (time.0, key));
    sim.core.arena = PacketArena::new();
    sim.core.queue = EventQueue::new();
    for (time, _, ev, d) in all {
        let ev = move_event_pkt(ev, &mut doms[d].core.arena, &mut sim.core.arena);
        sim.core.queue.schedule(time, ev);
    }
    for li in 0..sim.core.links.len() {
        let (a, b) = {
            let lr = &sim.core.links[li];
            (lr.info.a, lr.info.b)
        };
        let (da, db) = (map.domain_of(a) as usize, map.domain_of(b) as usize);
        let mut ab = std::mem::take(&mut doms[da].core.links[li].ab);
        move_dir_pkts(&mut ab, &mut doms[da].core.arena, &mut sim.core.arena);
        sim.core.links[li].ab = ab;
        sim.core.links[li].stats_ab = doms[da].core.links[li].stats_ab;
        let mut ba = std::mem::take(&mut doms[db].core.links[li].ba);
        move_dir_pkts(&mut ba, &mut doms[db].core.arena, &mut sim.core.arena);
        sim.core.links[li].ba = ba;
        sim.core.links[li].stats_ba = doms[db].core.links[li].stats_ba;
    }
    for i in 0..sim.logics.len() {
        let d = map.domain_of(NodeId(i)) as usize;
        if let Some(l) = doms[d].logics[i].take() {
            sim.logics[i] = Some(l);
        }
    }
    sim.core.next_pkt_id = g.next_pkt_id;
    for s in &doms {
        debug_assert_eq!(s.core.arena.live(), 0, "join left packets behind");
        sim.core.registry.absorb(&s.core.registry.snapshot());
    }
    // Rebuilt queue/arena: re-baseline the structural-delta counters
    // (exactly what `restore` does) before the run-boundary sync.
    sim.core.metrics.last_wheel = sim.core.queue.wheel_stats();
    sim.core.metrics.last_recycled = sim.core.arena.recycled();
    sim.core.now = t;
    sim.core.sync_structural_metrics();
}

/// Earliest pending event time across all domains — the next window
/// start. Fresh-heaps and outboxes are empty between windows, so the
/// per-domain wheels are the whole picture.
fn next_window_start(doms: &[Simulator]) -> Option<SimTime> {
    doms.iter().filter_map(|s| s.core.queue.peek_time()).min()
}

/// Single-worker window loop: identical windows, barriers, and merge
/// order as the threaded loop — which is why `--sim-threads 1` and
/// `--sim-threads N` produce byte-identical state.
fn window_loop_inline(
    doms: &mut [Simulator],
    lookahead: SimDuration,
    g: &mut GlobalCursors,
    target: SimTime,
) -> u64 {
    let mut windows = 0u64;
    while let Some(w) = next_window_start(doms) {
        if w > target {
            break;
        }
        let end = SimTime(w.0.saturating_add(lookahead.0));
        for s in doms.iter_mut() {
            run_window(s, end, target);
        }
        merge_window(doms, g);
        windows += 1;
    }
    windows
}

/// Leader/worker window loop over scoped threads. Domains are statically
/// assigned round-robin (`worker w` owns domains `w, w+threads, …`);
/// the leader (the calling thread) doubles as worker 0 and runs every
/// barrier merge single-threaded while the workers wait. Two barrier
/// waits per window: one to publish the window bounds, one to mark all
/// domains parked.
fn window_loop_threaded(
    doms: Vec<Simulator>,
    lookahead: SimDuration,
    g: &mut GlobalCursors,
    target: SimTime,
    threads: usize,
) -> (Vec<Simulator>, u64) {
    struct Ctl {
        end: SimTime,
        done: bool,
    }
    let k = doms.len();
    let slots: Vec<Mutex<Option<Simulator>>> = doms.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let barrier = Barrier::new(threads);
    let ctl = Mutex::new(Ctl {
        end: SimTime::ZERO,
        done: false,
    });
    let mut windows = 0u64;
    let take = |slots: &[Mutex<Option<Simulator>>], d: usize| -> Simulator {
        slots[d]
            .lock()
            .expect("domain slot poisoned") // lint: allow(panic)
            .take()
            .expect("domain already in flight") // lint: allow(panic)
    };
    let park = |slots: &[Mutex<Option<Simulator>>], d: usize, s: Simulator| {
        *slots[d].lock().expect("domain slot poisoned") = Some(s); // lint: allow(panic)
    };
    std::thread::scope(|scope| {
        for w in 1..threads {
            let (slots, barrier, ctl) = (&slots, &barrier, &ctl);
            scope.spawn(move || loop {
                barrier.wait();
                let (end, done) = {
                    let c = ctl.lock().expect("window control poisoned"); // lint: allow(panic)
                    (c.end, c.done)
                };
                if done {
                    break;
                }
                for d in (w..k).step_by(threads) {
                    let mut s = take(slots, d);
                    run_window(&mut s, end, target);
                    park(slots, d, s);
                }
                barrier.wait();
            });
        }
        loop {
            // All domains are parked here: compute the next window.
            let w = (0..k)
                .filter_map(|d| {
                    slots[d]
                        .lock()
                        .expect("domain slot poisoned") // lint: allow(panic)
                        .as_ref()
                        .and_then(|s| s.core.queue.peek_time())
                })
                .min();
            let (end, done) = match w {
                Some(w) if w <= target => (SimTime(w.0.saturating_add(lookahead.0)), false),
                _ => (SimTime::ZERO, true),
            };
            {
                let mut c = ctl.lock().expect("window control poisoned"); // lint: allow(panic)
                c.end = end;
                c.done = done;
            }
            barrier.wait();
            if done {
                break;
            }
            for d in (0..k).step_by(threads) {
                let mut s = take(&slots, d);
                run_window(&mut s, end, target);
                park(&slots, d, s);
            }
            barrier.wait();
            let mut all: Vec<Simulator> = (0..k).map(|d| take(&slots, d)).collect();
            merge_window(&mut all, g);
            for (d, s) in all.into_iter().enumerate() {
                park(&slots, d, s);
            }
            windows += 1;
        }
    });
    let doms = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("domain slot poisoned") // lint: allow(panic)
                .expect("domain not parked at shutdown") // lint: allow(panic)
        })
        .collect();
    (doms, windows)
}

