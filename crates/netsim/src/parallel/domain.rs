//! Per-domain execution state and the barrier-window runner.
//!
//! While a domain runs a window, everything it schedules is *local by
//! construction* except the propagation hop in `tx_complete`, which may
//! target a remote node and goes to the [`DomainExt::outbox`]. Local
//! events scheduled in-window park in the [`DomainExt::fresh`] heap
//! under provisional keys (the domain's own wheel holds only resolved
//! keys); the next barrier resolves and flushes them.

use super::key::{provisional_key, PROVISIONAL_BIT};
use super::partition::DomainMap;
use crate::arena::PacketRef;
use crate::event::Event;
use crate::sim::Simulator;
use crate::time::SimTime;
use crate::topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Provisional packet ids live far above any real id (real ids count up
/// from 1) so a collision — or an unpatched provisional id leaking into
/// results — is unmistakable.
pub(crate) const PROVISIONAL_ID_BASE: u64 = 1 << 63;

/// An event scheduled during the current window, waiting under a
/// provisional key for barrier resolution.
#[derive(Debug)]
pub(crate) struct FreshEntry {
    pub time: SimTime,
    pub key: u128,
    pub event: Event,
}

impl PartialEq for FreshEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.key) == (other.time, other.key)
    }
}
impl Eq for FreshEntry {}
impl PartialOrd for FreshEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FreshEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key).cmp(&(other.time, other.key))
    }
}

/// A cross-domain delivery produced this window: the packet body stays
/// in the source domain's arena (so the barrier's id patch can still
/// reach it) and moves to the destination arena at the barrier.
#[derive(Debug)]
pub(crate) struct OutboxEntry {
    pub time: SimTime,
    pub dst: NodeId,
    /// Domain-local record index of the dispatch that scheduled this.
    pub record: u32,
    /// Schedule-call position within that dispatch.
    pub pos: u32,
    pub pkt: PacketRef,
}

/// Parallel-engine extension carried by a domain's `SimCore`. Its
/// presence is what switches `assign_id` / `schedule_event` /
/// `tx_complete` onto the provisional paths.
#[derive(Debug)]
pub(crate) struct DomainExt {
    pub my_domain: u32,
    pub map: Arc<DomainMap>,
    /// `(time, key)` of every dispatch this window, in domain-local
    /// execution order. The key may itself be provisional (an in-window
    /// parent); the barrier resolves heads in merge order, and a head's
    /// parent always merges first because its record index is smaller.
    pub records: Vec<(SimTime, u128)>,
    /// Schedule-call counter within the current dispatch.
    pub cur_intra: u32,
    /// In-window-scheduled local events, min-heap by `(time, key)`.
    pub fresh: BinaryHeap<Reverse<FreshEntry>>,
    /// Cross-domain deliveries produced this window.
    pub outbox: Vec<OutboxEntry>,
    /// `(record, provisional id)` for every packet id handed out this
    /// window, in assignment order; the barrier re-numbers them in merged
    /// dispatch order from the shared id cursor and patches surviving
    /// bodies by id (packet bodies re-home to new arena slots on every
    /// forwarding hop, so a handle captured at assignment time can go
    /// stale while the body lives on).
    pub id_assignments: Vec<(u32, u64)>,
    next_prov_id: u64,
}

impl DomainExt {
    pub fn new(my_domain: u32, map: Arc<DomainMap>) -> Self {
        DomainExt {
            my_domain,
            map,
            records: Vec::new(),
            cur_intra: 0,
            fresh: BinaryHeap::new(),
            outbox: Vec::new(),
            id_assignments: Vec::new(),
            next_prov_id: 0,
        }
    }

    /// Does `node` live in another domain?
    pub fn is_remote(&self, node: NodeId) -> bool {
        self.map.domain_of(node) != self.my_domain
    }

    /// Hand out the next provisional packet id (unique per domain per
    /// split; never escapes a run because the barrier patches every
    /// surviving body — consumed packets just advance the cursor) and
    /// record it against the current dispatch for barrier re-numbering.
    pub fn next_provisional_id(&mut self) -> u64 {
        debug_assert!(!self.records.is_empty(), "id assigned outside a dispatch");
        self.next_prov_id += 1;
        let id = PROVISIONAL_ID_BASE | ((self.my_domain as u64) << 48) | self.next_prov_id;
        self.id_assignments
            .push((self.records.len() as u32 - 1, id));
        id
    }

    /// Schedule a local event from within the current dispatch: it goes
    /// to the fresh-heap under a provisional key.
    pub fn schedule_local(&mut self, time: SimTime, event: Event) {
        debug_assert!(!self.records.is_empty(), "schedule outside a dispatch");
        let key = provisional_key(self.records.len() as u32 - 1, self.cur_intra);
        self.cur_intra += 1;
        self.fresh.push(Reverse(FreshEntry { time, key, event }));
    }

    /// Queue a cross-domain delivery. Consumes a schedule-call position
    /// exactly like a local schedule would — the sequential engine's
    /// sequence counter does not care where the delivery lands.
    pub fn push_outbox(&mut self, time: SimTime, dst: NodeId, pkt: PacketRef) {
        debug_assert!(!self.records.is_empty(), "schedule outside a dispatch");
        let record = self.records.len() as u32 - 1;
        let pos = self.cur_intra;
        self.cur_intra += 1;
        self.outbox.push(OutboxEntry {
            time,
            dst,
            record,
            pos,
            pkt,
        });
    }
}

/// Run one domain through the window `[_, end_excl)`, capped at the run
/// target (events at exactly `target` execute; the window may nominally
/// extend past it).
///
/// Each step pops the minimum of the domain's keyed wheel and its
/// fresh-heap. At an equal time the wheel entry wins — its key is
/// resolved (no [`PROVISIONAL_BIT`]) and therefore smaller, matching
/// the sequential fact that pre-window events precede in-window ones.
pub(crate) fn run_window(sim: &mut Simulator, end_excl: SimTime, target: SimTime) {
    loop {
        let wheel_head = sim.core.queue.peek_key();
        let ext = sim.core.domain.as_ref().expect("run_window outside domain mode"); // lint: allow(panic)
        let fresh_head = ext.fresh.peek().map(|Reverse(e)| (e.time, e.key));
        let (time, use_fresh) = match (wheel_head, fresh_head) {
            (None, None) => break,
            (Some((wt, _)), None) => (wt, false),
            (None, Some((ft, _))) => (ft, true),
            (Some((wt, wk)), Some((ft, fk))) => {
                if (ft, fk) < (wt, wk) {
                    (ft, true)
                } else {
                    (wt, false)
                }
            }
        };
        if time >= end_excl || time > target {
            break;
        }
        let (key, event) = if use_fresh {
            let Reverse(e) = sim
                .core
                .domain
                .as_mut()
                .expect("checked above") // lint: allow(panic)
                .fresh
                .pop()
                .expect("peeked"); // lint: allow(panic)
            debug_assert!(e.key & PROVISIONAL_BIT != 0);
            (e.key, e.event)
        } else {
            let (_, k, e) = sim.core.queue.pop_keyed().expect("peeked"); // lint: allow(panic)
            (k, e)
        };
        debug_assert!(time >= sim.core.now, "time went backwards in domain");
        sim.core.now = time;
        let ext = sim.core.domain.as_mut().expect("checked above"); // lint: allow(panic)
        ext.records.push((time, key));
        ext.cur_intra = 0;
        sim.dispatch(time, event);
    }
}
