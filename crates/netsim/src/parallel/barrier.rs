//! The barrier: K-way merge of a window's dispatch records, id
//! finalization, fresh-heap flush, and outbox exchange.
//!
//! Everything here runs single-threaded (on the window leader) and is a
//! pure function of the domains' window outputs, so its results are
//! independent of worker count and thread timing.

use super::domain::{DomainExt, PROVISIONAL_ID_BASE};
use super::key::{final_key, resolve_key};
use crate::event::Event;
use crate::sim::Simulator;
use std::collections::BTreeMap;

/// Cross-window global cursors: the global dispatch index (the
/// sequential engine's implicit dispatch counter) and the packet-id
/// allocator, both advanced in merged order.
pub(crate) struct GlobalCursors {
    pub next_global: u64,
    pub next_pkt_id: u64,
}

fn ext(sim: &mut Simulator) -> &mut DomainExt {
    sim.core
        .domain
        .as_mut()
        .expect("barrier on a non-domain simulator") // lint: allow(panic)
}

/// Merge one finished window across all domains.
///
/// Phase 1 replays the window's dispatches in global order: a K-way
/// merge of the per-domain record lists by `(time, resolved key)`. Each
/// merged record gets the next global dispatch index, and every packet
/// id handed out during that dispatch is re-numbered from the shared
/// cursor — in exactly the order the sequential engine would have
/// assigned ids. A head record's provisional key is always resolvable:
/// its in-window parent has a smaller record index in the same domain
/// and therefore merged earlier (a parent's resolved key is strictly
/// smaller at an equal time, since the parent was itself scheduled
/// before the child's schedule call).
///
/// Phase 2 flushes each domain's fresh-heap into its wheel under
/// resolved final keys, and phase 3 moves outbox packets into their
/// destination arenas and schedules the deliveries under final keys —
/// domains drained in index order, though any order would produce the
/// same state (every entry's key is already globally resolved).
pub(crate) fn merge_window(doms: &mut [Simulator], g: &mut GlobalCursors) {
    let k = doms.len();
    let mut records = Vec::with_capacity(k);
    let mut assigns = Vec::with_capacity(k);
    for sim in doms.iter_mut() {
        let e = ext(sim);
        records.push(std::mem::take(&mut e.records));
        assigns.push(std::mem::take(&mut e.id_assignments));
    }
    let mut global_of: Vec<Vec<u64>> = records.iter().map(|r| vec![0u64; r.len()]).collect();
    let mut id_map: Vec<BTreeMap<u64, u64>> = (0..k).map(|_| BTreeMap::new()).collect();
    let mut idx = vec![0usize; k];
    let mut aptr = vec![0usize; k];
    loop {
        let mut best: Option<(u64, u128, usize)> = None;
        for (d, recs) in records.iter().enumerate() {
            if let Some(&(t, raw)) = recs.get(idx[d]) {
                let key = resolve_key(raw, &global_of[d]);
                if best.is_none_or(|(bt, bk, _)| (t.0, key) < (bt, bk)) {
                    best = Some((t.0, key, d));
                }
            }
        }
        let Some((_, _, d)) = best else { break };
        g.next_global += 1;
        global_of[d][idx[d]] = g.next_global;
        // Ids handed out during this dispatch, re-numbered in order —
        // exactly the order the sequential allocator would have used.
        // Bodies are patched in a sweep below (a consumed packet simply
        // has no surviving body; its id still advances the cursor).
        while let Some(&(rec, prov)) = assigns[d].get(aptr[d]) {
            if rec as usize != idx[d] {
                break;
            }
            g.next_pkt_id += 1;
            id_map[d].insert(prov, g.next_pkt_id);
            aptr[d] += 1;
        }
        idx[d] += 1;
    }
    // Patch surviving bodies by provisional id, one sweep per domain
    // arena. This reaches every live body no matter how many times it
    // re-homed since assignment (each forwarding hop takes the body out
    // of the arena and re-inserts it at a new handle).
    for (d, sim) in doms.iter_mut().enumerate() {
        if id_map[d].is_empty() {
            continue;
        }
        for p in sim.core.arena.iter_live_mut() {
            if p.id & PROVISIONAL_ID_BASE != 0 {
                p.id = *id_map[d]
                    .get(&p.id)
                    .expect("live body with unmapped provisional id"); // lint: allow(panic)
            }
        }
    }
    // Phase 2: resolve and flush in-window-scheduled local events.
    for (d, sim) in doms.iter_mut().enumerate() {
        let fresh = std::mem::take(&mut ext(sim).fresh);
        for std::cmp::Reverse(e) in fresh {
            let key = resolve_key(e.key, &global_of[d]);
            sim.core.queue.schedule_keyed(e.time, key, e.event);
        }
    }
    // Phase 3: exchange cross-domain deliveries, domains in index order.
    for d in 0..k {
        let outbox = std::mem::take(&mut ext(&mut doms[d]).outbox);
        for m in outbox {
            let key = final_key(global_of[d][m.record as usize], m.pos);
            let body = doms[d]
                .core
                .arena
                .take(m.pkt)
                .expect("cross-domain packet vanished before the barrier"); // lint: allow(panic)
            let dst_dom = ext(&mut doms[d]).map.domain_of(m.dst) as usize;
            let pkt = doms[dst_dom].core.arena.insert(body);
            doms[dst_dom].core.queue.schedule_keyed(
                m.time,
                key,
                Event::Deliver { node: m.dst, pkt },
            );
        }
    }
    // Hand the (now empty) buffers back so their capacity is reused.
    for (d, sim) in doms.iter_mut().enumerate() {
        let e = ext(sim);
        records[d].clear();
        assigns[d].clear();
        e.records = std::mem::take(&mut records[d]);
        e.id_assignments = std::mem::take(&mut assigns[d]);
    }
}
