//! 128-bit scheduling keys that reproduce the sequential `(time, seq)`
//! order across domains.
//!
//! The sequential engine orders equal-time events by a global monotone
//! sequence number assigned at schedule time. Schedule calls happen only
//! inside dispatches, and dispatches happen in `(time, seq)` order — so
//! the sequential tie-break order at any timestamp is exactly the
//! lexicographic pair *(global index of the scheduling dispatch, position
//! of the schedule call within that dispatch)*. These keys encode that
//! pair directly, which is what lets per-domain wheels pop in an order
//! that merges back into the sequential order bit-for-bit:
//!
//! * **Initial keys** (`< 2^32`) — events already pending when a run is
//!   split into domains, numbered by their position in the sequential
//!   queue's dispatch order. They sort before every in-run key at an
//!   equal time, which is correct: anything scheduled *during* the run
//!   has a later sequence number than anything pending *before* it.
//! * **Final keys** (`origin << 32 | pos`, `origin >= 1`) — events whose
//!   scheduling dispatch has been assigned its global dispatch index
//!   `origin` at a barrier.
//! * **Provisional keys** (top bit set) — events scheduled during the
//!   current barrier window, keyed by the *domain-local* record index of
//!   the scheduling dispatch. The top bit makes every provisional key
//!   sort after every final key at an equal time — correct, because an
//!   event scheduled in the current window always has a later sequence
//!   number than one scheduled before the window. Two provisional keys
//!   from the *same* domain compare by (record, position), and
//!   domain-local record order is the global dispatch order restricted
//!   to that domain, so the comparison agrees with the sequential order.
//!   Provisional keys never need to compare across domains: they exist
//!   only inside one domain's window and are resolved to final keys at
//!   the barrier.

/// Top bit marking a key as provisional (domain-local, not yet resolved
/// against the global dispatch order).
pub const PROVISIONAL_BIT: u128 = 1 << 127;

/// Key for an event that was already pending when the run was split,
/// from its position `i` in the sequential queue's dispatch order.
///
/// ```
/// use dui_netsim::parallel::key::{final_key, initial_key};
/// // Initial events sort before any in-run event at the same time…
/// assert!(initial_key(999) < final_key(1, 0));
/// // …and among themselves by queue position.
/// assert!(initial_key(0) < initial_key(1));
/// ```
pub fn initial_key(i: u64) -> u128 {
    debug_assert!(i < 1 << 32, "more than 2^32 pending events at split");
    i as u128
}

/// Key for an event scheduled by the dispatch with global index `origin`
/// (1-based) as its `pos`-th schedule call.
///
/// ```
/// use dui_netsim::parallel::key::final_key;
/// // Later dispatches sort later; within a dispatch, schedule order wins.
/// assert!(final_key(1, 1) < final_key(2, 0));
/// assert!(final_key(2, 0) < final_key(2, 1));
/// ```
pub fn final_key(origin: u64, pos: u32) -> u128 {
    debug_assert!(origin >= 1, "global dispatch indices are 1-based");
    ((origin as u128) << 32) | pos as u128
}

/// Provisional key for an event scheduled by the current window's
/// `record`-th domain-local dispatch as its `pos`-th schedule call.
///
/// ```
/// use dui_netsim::parallel::key::{final_key, is_provisional, provisional_key};
/// // Provisional keys sort after every resolved key at the same time.
/// assert!(provisional_key(0, 0) > final_key(u64::MAX, u32::MAX));
/// assert!(is_provisional(provisional_key(3, 1)));
/// assert!(!is_provisional(final_key(3, 1)));
/// ```
pub fn provisional_key(record: u32, pos: u32) -> u128 {
    PROVISIONAL_BIT | ((record as u128) << 32) | pos as u128
}

/// Is this a provisional (unresolved) key?
pub fn is_provisional(key: u128) -> bool {
    key & PROVISIONAL_BIT != 0
}

/// Split a provisional key back into `(record, pos)`.
///
/// ```
/// use dui_netsim::parallel::key::{provisional_key, provisional_parts};
/// assert_eq!(provisional_parts(provisional_key(7, 42)), (7, 42));
/// ```
pub fn provisional_parts(key: u128) -> (u32, u32) {
    debug_assert!(is_provisional(key));
    (((key >> 32) & 0xFFFF_FFFF) as u32, (key & 0xFFFF_FFFF) as u32)
}

/// Resolve a key against this window's record→global-index table:
/// provisional keys become final via `global_of[record]`, everything
/// else passes through.
pub(crate) fn resolve_key(raw: u128, global_of: &[u64]) -> u128 {
    if is_provisional(raw) {
        let (rec, pos) = provisional_parts(raw);
        final_key(global_of[rec as usize], pos)
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_sequential_contract() {
        // initial < final < provisional at equal time.
        assert!(initial_key((1 << 32) - 1) < final_key(1, 0));
        assert!(final_key(u64::MAX, u32::MAX) < provisional_key(0, 0));
        // Final keys are lexicographic in (origin, pos).
        assert!(final_key(5, 9) < final_key(6, 0));
        // Provisional keys are lexicographic in (record, pos).
        assert!(provisional_key(1, 9) < provisional_key(2, 0));
    }

    #[test]
    fn resolve_rewrites_only_provisionals() {
        let global_of = vec![41, 42];
        assert_eq!(resolve_key(provisional_key(1, 3), &global_of), final_key(42, 3));
        assert_eq!(resolve_key(final_key(7, 7), &global_of), final_key(7, 7));
        assert_eq!(resolve_key(initial_key(9), &global_of), 9);
    }
}
