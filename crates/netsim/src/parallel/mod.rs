//! Sharded deterministic parallel packet engine.
//!
//! This module runs the simulator's event loop across topology
//! *domains* — latency-bounded partitions computed by
//! [`partition::DomainMap::partition`] — while producing **byte-identical
//! results** to the sequential engine at any `--sim-threads N`,
//! including N = 1. The contract covers everything observable: CSVs,
//! telemetry JSONL, state digests, and every golden checkpoint hash.
//!
//! # How barrier windows preserve the sequential `(time, seq)` pop order
//!
//! The sequential engine pops events in `(time, seq)` order, where `seq`
//! is a global counter stamped at schedule time. Because schedule calls
//! only happen inside dispatches, and dispatches themselves happen in
//! `(time, seq)` order, the tie-break at equal times is equivalent to
//! the lexicographic pair *(global index of the scheduling dispatch,
//! schedule-call position within it)* — see [`key`] for the encoding.
//!
//! The parallel engine reproduces that order exactly with conservative
//! synchronization:
//!
//! 1. The next window starts at `W`, the earliest pending event time
//!    across all domains, and extends to `W + L` where `L` is the
//!    **lookahead** — the minimum propagation delay over cut links. A
//!    dispatch at time `s < W + L` can only affect another domain at
//!    `s + prop ≥ W + L`, so inside a window every domain is causally
//!    independent and can run unsynchronized.
//! 2. Within a window each domain pops the minimum of its keyed wheel
//!    (resolved keys) and its fresh-heap (provisional keys for events
//!    scheduled *this* window). Provisional keys sort after resolved
//!    keys at equal time, matching the sequential fact that in-window
//!    schedules carry later sequence numbers.
//! 3. At the barrier, a K-way merge of the domains' dispatch records by
//!    `(time, resolved key)` reconstructs the global dispatch order —
//!    literally the sequential event trace — assigns global dispatch
//!    indices, re-numbers packet ids from a shared cursor in merged
//!    order, resolves provisional keys to final keys, and exchanges
//!    cross-domain deliveries through per-domain outboxes drained in
//!    domain-index order.
//!
//! Since every window's merge is a pure function of the domains' window
//! outputs — and those are pure functions of the domain state — no
//! observable result depends on thread count or scheduling. N = 1 runs
//! the identical decomposition inline through the same merge code.
//!
//! # Fallback
//!
//! Where conservative synchronization cannot hold (single-domain
//! topologies — the null-message degenerate case, since a cut with
//! sub-floor lookahead is contracted away rather than throttled) or
//! where machinery consumes inherently sequential streams (link taps,
//! probabilistic faults, tracing, span recording), `run_parallel`
//! returns a [`FallbackReason`] and the caller falls through to the
//! sequential loop. The outcome of the most recent `run_until` is
//! queryable via `Simulator::last_parallel_outcome`.
//!
//! # Contract: packet ids of in-flight packets are engine-internal
//!
//! During a window, newly created packets carry *provisional* ids that
//! are re-numbered at the barrier. Node logic must therefore not read
//! `pkt.id` of packets it did not create and key behavior on it;
//! logics that do (e.g. dedup maps keyed on observed ids) are only
//! sequential-safe. Ids in results, traces, and checkpoints are always
//! final.
//!
//! # Structural telemetry scope
//!
//! Logical metrics (packets created/delivered/dropped, program
//! counters, queue-depth histograms) are *exactly* equal to the
//! sequential engine's. Structural engine metrics (`netsim.arena.*`,
//! `netsim.wheel.*`) measure the machine that ran the events, which
//! under domain decomposition is a different machine: they are
//! byte-identical across every `--sim-threads N ≥ 1` but legitimately
//! differ from a pure sequential run. Golden recordings are sequential;
//! the verify gate compares N = 1 against N = 4.

pub mod key;
pub mod partition;

pub(crate) mod barrier;
pub(crate) mod domain;
mod engine;

pub(crate) use domain::DomainExt;
pub use partition::DomainMap;

pub(crate) use engine::run_parallel;

use crate::time::SimDuration;

/// Why a `run_until` under `--sim-threads` fell back to the sequential
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The topology partitions into a single domain (every link is
    /// faster than the lookahead floor), so there is nothing to run in
    /// parallel.
    SingleDomain,
    /// Link taps are installed; taps observe a single interleaved
    /// packet stream and are inherently sequential.
    TapsInstalled,
    /// Probabilistic link faults (drop probability or jitter) are
    /// active; they consume the engine's single sequential RNG stream.
    ActiveFaults,
    /// Event tracing is enabled; the trace records one interleaved
    /// timeline.
    TraceEnabled,
    /// Span recording is enabled; spans record one interleaved
    /// timeline.
    SpansEnabled,
}

impl FallbackReason {
    /// Short stable slug used in telemetry counter names
    /// (`netsim.parallel.fallback.<key>`) and CSV cells.
    pub fn key(&self) -> &'static str {
        match self {
            FallbackReason::SingleDomain => "single_domain",
            FallbackReason::TapsInstalled => "taps",
            FallbackReason::ActiveFaults => "faults",
            FallbackReason::TraceEnabled => "trace",
            FallbackReason::SpansEnabled => "spans",
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FallbackReason::SingleDomain => "topology partitions into a single domain",
            FallbackReason::TapsInstalled => "link taps installed",
            FallbackReason::ActiveFaults => "probabilistic link faults active",
            FallbackReason::TraceEnabled => "event tracing enabled",
            FallbackReason::SpansEnabled => "span recording enabled",
        };
        f.write_str(s)
    }
}

/// What a parallel `run_until` actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelReport {
    /// Number of topology domains in the decomposition.
    pub domains: usize,
    /// Worker threads used (≤ domains; the calling thread is worker 0).
    pub threads: usize,
    /// Barrier windows executed during this run.
    pub windows: u64,
    /// Conservative lookahead (window width) used.
    pub lookahead: SimDuration,
}

/// Outcome of the most recent `run_until` on a simulator with
/// `sim_threads > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelOutcome {
    /// The run executed under the parallel engine.
    Ran(ParallelReport),
    /// The run fell back to the sequential engine.
    Fallback(FallbackReason),
}
