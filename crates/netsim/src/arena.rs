//! Slab storage for in-flight packets, addressed by generational handles.
//!
//! The event loop used to move ~88-byte [`Packet`] structs by value through
//! the heap-backed event queue: every schedule, sift and link-queue hop
//! copied the full struct. The arena replaces that with an 8-byte
//! [`PacketRef`] handle: the packet body is written into a slab slot once at
//! injection and stays put until it is dropped or delivered, while events,
//! link queues and tap delay buffers carry only the handle.
//!
//! Slots are recycled through an intrusive free list (each vacant slot
//! stores the index of the next vacant slot), so a steady-state simulation
//! allocates no memory per packet. Recycling is made safe by *generations*:
//! every slot carries a generation counter that is bumped when the slot is
//! freed, and a handle is only valid while its generation matches the
//! slot's. Using a stale handle — one whose packet has already been taken —
//! is a typed [`StaleRef`] error, never a silent read of whatever packet
//! now occupies the slot.

use crate::packet::Packet;
use std::fmt;

/// Sentinel for "no next free slot" in the intrusive free list.
const NIL: u32 = u32::MAX;

/// An 8-byte generational handle to a packet stored in a [`PacketArena`].
///
/// Handles are created only by [`PacketArena::insert`] and become invalid
/// (stale) when the packet is removed with [`PacketArena::take`]. All
/// accessors verify the generation, so a stale handle can be *detected* but
/// never dereferenced to the wrong packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

impl PacketRef {
    /// Slot index (diagnostics only — cannot be used to construct handles).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Slot generation this handle was issued under (diagnostics only).
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}g{}", self.idx, self.gen)
    }
}

/// Typed error for an access through an out-of-date [`PacketRef`].
///
/// Carries enough context to say *why* the handle is dead: either the slot
/// has since been vacated (`vacant`), or it was recycled for a newer packet
/// (`current_gen > expected_gen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRef {
    /// Slot index the handle pointed at.
    pub idx: u32,
    /// Generation the handle was issued under.
    pub expected_gen: u32,
    /// Generation the slot is at now.
    pub current_gen: u32,
    /// True if the slot is currently vacant (false: recycled and occupied
    /// by a different packet).
    pub vacant: bool,
}

impl fmt::Display for StaleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale packet ref: slot {} gen {} is {} at gen {}",
            self.idx,
            self.expected_gen,
            if self.vacant { "vacant" } else { "recycled" },
            self.current_gen
        )
    }
}

impl std::error::Error for StaleRef {}

/// One slab slot: either a live packet or a link in the free list. The
/// generation counts how many times the slot has been freed.
#[derive(Debug)]
enum Slot {
    Occupied { gen: u32, pkt: Packet },
    Free { gen: u32, next_free: u32 },
}

/// Generational slab arena holding every packet currently inside the
/// simulation (pending events, link queues, in-flight transmitters, tap
/// delay buffers).
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
    high_water: usize,
    recycled: u64,
}

impl PacketArena {
    /// Empty arena.
    pub fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
            high_water: 0,
            recycled: 0,
        }
    }

    /// Store `pkt`, returning its handle. Reuses a vacant slot when one is
    /// available (LIFO), growing the slab only when all slots are live.
    pub fn insert(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            let (gen, next_free) = match *slot {
                Slot::Free { gen, next_free } => (gen, next_free),
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            self.recycled += 1;
            *slot = Slot::Occupied { gen, pkt };
            PacketRef { idx, gen }
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "packet arena exhausted u32 index space");
            self.slots.push(Slot::Occupied { gen: 0, pkt });
            PacketRef { idx, gen: 0 }
        }
    }

    fn stale(&self, r: PacketRef) -> StaleRef {
        match self.slots.get(r.idx as usize) {
            Some(Slot::Occupied { gen, .. }) => StaleRef {
                idx: r.idx,
                expected_gen: r.gen,
                current_gen: *gen,
                vacant: false,
            },
            Some(Slot::Free { gen, .. }) => StaleRef {
                idx: r.idx,
                expected_gen: r.gen,
                current_gen: *gen,
                vacant: true,
            },
            None => StaleRef {
                idx: r.idx,
                expected_gen: r.gen,
                current_gen: 0,
                vacant: true,
            },
        }
    }

    /// Read the packet behind `r`.
    pub fn get(&self, r: PacketRef) -> Result<&Packet, StaleRef> {
        match self.slots.get(r.idx as usize) {
            Some(Slot::Occupied { gen, pkt }) if *gen == r.gen => Ok(pkt),
            _ => Err(self.stale(r)),
        }
    }

    /// Mutably borrow the packet behind `r` (header rewriting by taps).
    pub fn get_mut(&mut self, r: PacketRef) -> Result<&mut Packet, StaleRef> {
        let live = matches!(
            self.slots.get(r.idx as usize),
            Some(Slot::Occupied { gen, .. }) if *gen == r.gen
        );
        if !live {
            return Err(self.stale(r));
        }
        match self.slots.get_mut(r.idx as usize) {
            Some(Slot::Occupied { pkt, .. }) => Ok(pkt),
            _ => unreachable!("liveness checked above"),
        }
    }

    /// Remove and return the packet behind `r`, freeing its slot for
    /// reuse. The handle (and any copy of it) is stale afterwards.
    pub fn take(&mut self, r: PacketRef) -> Result<Packet, StaleRef> {
        match self.slots.get_mut(r.idx as usize) {
            Some(slot @ Slot::Occupied { .. }) => {
                let gen = match slot {
                    Slot::Occupied { gen, .. } => *gen,
                    Slot::Free { .. } => unreachable!(),
                };
                if gen != r.gen {
                    return Err(self.stale(r));
                }
                let freed = std::mem::replace(
                    slot,
                    Slot::Free {
                        gen: gen.wrapping_add(1),
                        next_free: self.free_head,
                    },
                );
                self.free_head = r.idx;
                self.live -= 1;
                match freed {
                    Slot::Occupied { pkt, .. } => Ok(pkt),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => Err(self.stale(r)),
        }
    }

    /// Clone the packet behind `r` out of the arena (checkpoint
    /// materialization). This is the one sanctioned `Packet` clone site —
    /// everywhere else packets move by handle (`arena/no-packet-clone`).
    pub fn snapshot_packet(&self, r: PacketRef) -> Result<Packet, StaleRef> {
        self.get(r).cloned()
    }

    /// Mutable iteration over every live packet, in slot order. Used by
    /// the parallel engine's barrier to patch provisional packet ids in
    /// one sweep (packet bodies re-home to new slots on every forwarding
    /// hop, so handle-based patching cannot reach them).
    pub(crate) fn iter_live_mut(&mut self) -> impl Iterator<Item = &mut Packet> {
        self.slots.iter_mut().filter_map(|s| match s {
            Slot::Occupied { pkt, .. } => Some(pkt),
            Slot::Free { .. } => None,
        })
    }

    /// Number of live packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True if no packets are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slab slots allocated (live + vacant).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest simultaneous live count seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of inserts served by recycling a vacant slot instead of
    /// growing the slab.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, FlowKey};

    fn pkt(payload: u32) -> Packet {
        let mut p = Packet::udp(
            FlowKey::udp(Addr::new(10, 0, 0, 1), 1000, Addr::new(10, 0, 0, 2), 80),
            100,
        );
        p.payload = payload;
        p
    }

    #[test]
    fn insert_get_take_round_trip() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(7));
        assert_eq!(a.get(r).unwrap().payload, 7);
        assert_eq!(a.live(), 1);
        let p = a.take(r).unwrap();
        assert_eq!(p.payload, 7);
        assert_eq!(a.live(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn stale_after_take_is_typed_error() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        a.take(r).unwrap();
        let err = a.get(r).unwrap_err();
        assert_eq!(err.idx, r.index());
        assert_eq!(err.expected_gen, 0);
        assert_eq!(err.current_gen, 1);
        assert!(err.vacant);
        assert!(a.get_mut(r).is_err());
        assert!(a.take(r).is_err());
        assert!(a.snapshot_packet(r).is_err());
    }

    #[test]
    fn recycled_slot_never_serves_old_handle() {
        let mut a = PacketArena::new();
        let r1 = a.insert(pkt(1));
        a.take(r1).unwrap();
        let r2 = a.insert(pkt(2));
        // Same slot, new generation.
        assert_eq!(r1.index(), r2.index());
        assert_ne!(r1.generation(), r2.generation());
        // The old handle is a typed error, not a read of packet 2.
        let err = a.get(r1).unwrap_err();
        assert!(!err.vacant, "slot is occupied by a different packet");
        assert_eq!(err.current_gen, r2.generation());
        assert_eq!(a.get(r2).unwrap().payload, 2);
    }

    #[test]
    fn free_list_is_lifo_and_slab_does_not_grow() {
        let mut a = PacketArena::new();
        let refs: Vec<_> = (0..8).map(|i| a.insert(pkt(i))).collect();
        assert_eq!(a.capacity(), 8);
        assert_eq!(a.high_water(), 8);
        for r in refs.iter().rev() {
            a.take(*r).unwrap();
        }
        // Reinsertion reuses slots 0..8 (LIFO: last freed = slot 0 first).
        for i in 0..8 {
            let r = a.insert(pkt(100 + i));
            assert_eq!(r.index(), i, "LIFO recycling");
        }
        assert_eq!(a.capacity(), 8, "no growth under churn");
        assert_eq!(a.recycled(), 8);
        assert_eq!(a.high_water(), 8);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        a.get_mut(r).unwrap().ttl = 3;
        assert_eq!(a.get(r).unwrap().ttl, 3);
    }

    #[test]
    fn out_of_range_handle_is_stale() {
        let a = PacketArena::new();
        let bogus = PacketRef { idx: 42, gen: 0 };
        let err = a.get(bogus).unwrap_err();
        assert!(err.vacant);
        assert_eq!(err.idx, 42);
    }

    #[test]
    fn display_formats() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(1));
        assert_eq!(format!("{r}"), "pkt#0g0");
        a.take(r).unwrap();
        let err = a.get(r).unwrap_err();
        assert!(format!("{err}").contains("vacant"));
    }
}
