//! # dui-netsim
//!
//! A deterministic discrete-event, packet-level network simulator — the
//! substrate on which the `dui` reproduction of *"(Self) Driving Under the
//! Influence"* (HotNets'19) runs its experiments. The paper's authors used
//! mininet plus a P4 switch program; we substitute this simulator (see
//! DESIGN.md §4 for why the substitution preserves the measured behavior).
//!
//! Key concepts:
//!
//! * [`topology::Topology`] — hosts, routers, full-duplex links with
//!   bandwidth / propagation delay / DropTail queues; shortest-path
//!   [`topology::Routing`].
//! * [`sim::Simulator`] — the event loop. Deterministic: equal-time events
//!   are FIFO, all randomness comes from a seeded generator.
//! * [`node::NodeLogic`] — per-node behavior (TCP hosts, PCC senders, …
//!   live in higher crates).
//! * [`node::DataPlaneProgram`] — programmable-switch hook (the P4
//!   substitute); Blink is implemented against it.
//! * [`link::LinkTap`] — man-in-the-middle interception (observe / modify /
//!   drop / delay / inject on one link), the paper's MitM privilege.
//! * [`node::IcmpRewriter`] — control over ICMP time-exceeded replies, the
//!   mechanism behind traceroute manipulation (§4.3).
//!
//! ```
//! use dui_netsim::prelude::*;
//!
//! let mut b = TopologyBuilder::new();
//! let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
//! let r = b.router("r");
//! let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
//! b.link(h1, r, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
//! b.link(r, h2, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
//!
//! let mut sim = Simulator::new(b.build(), 42);
//! sim.set_logic(r, Box::new(RouterLogic::new()));
//! sim.set_logic(h2, Box::new(SinkHost::new()));
//! let key = FlowKey::udp(Addr::new(10, 0, 0, 1), 5000, Addr::new(10, 0, 0, 2), 80);
//! sim.inject(h1, Packet::udp(key, 1000));
//! sim.run_until(SimTime::from_secs(1));
//! let sink: &mut SinkHost = sim.logic_mut(h2);
//! assert_eq!(sink.total_packets, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod event;
pub mod link;
pub mod node;
pub mod packet;
pub mod parallel;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wheel;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::arena::{PacketArena, PacketRef, StaleRef};
    pub use crate::link::{Dir, FaultConfig, LinkTap, TapAction};
    pub use crate::node::{
        DataPlaneProgram, IcmpRewriter, NodeLogic, RouterLogic, SinkHost, Verdict,
    };
    pub use crate::packet::{Addr, FlowKey, Header, Packet, Prefix, Proto, TcpFlags};
    pub use crate::sim::{Ctx, Simulator};
    pub use crate::time::{Bandwidth, SimDuration, SimTime};
    pub use crate::topology::{LinkId, NodeId, Topology, TopologyBuilder};
}
