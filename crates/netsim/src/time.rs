//! Simulated time.
//!
//! Time is a `u64` count of **nanoseconds** since simulation start. Using an
//! integer (not `f64`) keeps event ordering exact and the simulation
//! bit-for-bit reproducible: equal timestamps are tie-broken by insertion
//! order, never by floating-point noise.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (panics on negative/NaN).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "time must be non-negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From fractional seconds (panics on negative/NaN).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Scale by a non-negative factor.
    pub fn mul_f64(&self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "scale must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        // A negative duration is always a scheduling logic bug; failing
        // loudly here beats wrapping into a ~585-year timer.
        // lint: allow(panic): duration underflow must abort the simulation
        SimDuration(self.0.checked_sub(d.0).expect("duration underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Link bandwidth in bits per second, with a helper to compute serialization
/// delay of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Bits per second.
    pub fn bps(b: u64) -> Self {
        assert!(b > 0, "bandwidth must be positive");
        Bandwidth(b)
    }

    /// Kilobits per second.
    pub fn kbps(k: u64) -> Self {
        Bandwidth::bps(k * 1_000)
    }

    /// Megabits per second.
    pub fn mbps(m: u64) -> Self {
        Bandwidth::bps(m * 1_000_000)
    }

    /// Gigabits per second.
    pub fn gbps(g: u64) -> Self {
        Bandwidth::bps(g * 1_000_000_000)
    }

    /// Time to serialize `bytes` onto the wire.
    pub fn serialization_delay(&self, bytes: u32) -> SimDuration {
        // ns = bytes*8 / (bits/s) * 1e9 — computed in u128 and saturated so
        // pathological (bytes, bandwidth) combinations cannot wrap.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.0 as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Raw bits per second.
    pub fn as_bps(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(
            t.since(SimTime::from_secs(1)),
            SimDuration::from_millis(500)
        );
        // saturates
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn serialization_delay_math() {
        // 1500 B at 100 Mbps = 120 us
        let d = Bandwidth::mbps(100).serialization_delay(1500);
        assert_eq!(d, SimDuration::from_micros(120));
        // 1 GB at 1 bps does not overflow
        let d = Bandwidth::bps(1).serialization_delay(u32::MAX);
        assert!(d.as_secs_f64() > 1e10); // saturates at u64::MAX ns
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    #[should_panic]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }
}
