//! The simulation engine: core state, the node-facing [`Ctx`] handle, and
//! the top-level [`Simulator`].

use crate::event::{Event, EventQueue};
use crate::link::{Dir, FaultConfig, LinkRuntime, LinkTap, TapAction};
use crate::node::NodeLogic;
use crate::packet::{Addr, Packet, Prefix};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, PrefixTable, Routing, Topology};
use crate::trace::{Counters, Trace, TraceEvent, TraceKind};
use dui_stats::Rng;
use dui_telemetry::{CounterId, HistId, Registry, Snapshot, SpanRecorder};

/// Pre-registered metric ids for the engine's own accounting. Resolving
/// names to ids once at construction keeps the per-packet record path at
/// a single array index.
pub(crate) struct EngineMetrics {
    pub delivered: CounterId,
    pub delivered_endpoint: CounterId,
    pub sunk: CounterId,
    pub created: CounterId,
    pub consumed_router: CounterId,
    pub dropped_queue: CounterId,
    pub dropped_tap: CounterId,
    pub dropped_fault: CounterId,
    pub dropped_ttl: CounterId,
    pub dropped_program: CounterId,
    pub dropped_no_route: CounterId,
    pub queue_depth: HistId,
    /// Lazily-registered `netsim.program.forward.<node>` counters.
    pub program_forward: Vec<Option<CounterId>>,
}

impl EngineMetrics {
    fn new(reg: &mut Registry, nodes: usize) -> Self {
        EngineMetrics {
            delivered: reg.counter("netsim.delivered"),
            delivered_endpoint: reg.counter("netsim.delivered.endpoint"),
            sunk: reg.counter("netsim.sunk"),
            created: reg.counter("netsim.packets.created"),
            consumed_router: reg.counter("netsim.consumed.router"),
            dropped_queue: reg.counter("netsim.drop.queue"),
            dropped_tap: reg.counter("netsim.drop.tap"),
            dropped_fault: reg.counter("netsim.drop.fault"),
            dropped_ttl: reg.counter("netsim.drop.ttl"),
            dropped_program: reg.counter("netsim.drop.program"),
            dropped_no_route: reg.counter("netsim.drop.no_route"),
            queue_depth: reg.histogram("netsim.link.queue_depth"),
            program_forward: vec![None; nodes],
        }
    }
}

/// Engine state shared with node logic through [`Ctx`]. Node behaviors are
/// stored *outside* this struct so a node can freely send packets / arm
/// timers while its own `&mut self` is live.
pub struct SimCore {
    now: SimTime,
    queue: EventQueue,
    topo: Topology,
    routing: Routing,
    prefixes: PrefixTable,
    links: Vec<LinkRuntime>,
    pub(crate) registry: Registry,
    pub(crate) metrics: EngineMetrics,
    spans: Option<SpanRecorder>,
    trace: Trace,
    rng: Rng,
    next_pkt_id: u64,
}

impl SimCore {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The (immutable) topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Read the routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Mutate the routing tables. This is an **operator-privilege** action
    /// in the paper's threat model (§2.1) — only code standing in for the
    /// operator (or for the legitimate control plane) should call it.
    pub fn routing_mut(&mut self) -> &mut Routing {
        &mut self.routing
    }

    /// Read announced destination prefixes.
    pub fn prefixes(&self) -> &PrefixTable {
        &self.prefixes
    }

    /// Global counters, reconstructed as a plain-struct view over the
    /// metrics registry.
    pub fn counters(&self) -> Counters {
        let r = &self.registry;
        let m = &self.metrics;
        Counters {
            delivered: r.counter_value(m.delivered),
            sunk: r.counter_value(m.sunk),
            dropped_queue: r.counter_value(m.dropped_queue),
            dropped_tap: r.counter_value(m.dropped_tap),
            dropped_fault: r.counter_value(m.dropped_fault),
            dropped_ttl: r.counter_value(m.dropped_ttl),
            dropped_program: r.counter_value(m.dropped_program),
            dropped_no_route: r.counter_value(m.dropped_no_route),
        }
    }

    /// The metrics registry (read-only). Engine counters live under the
    /// `netsim.` prefix; node logic may register its own metrics via
    /// [`Ctx::metrics`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the metrics registry (for scenario harnesses
    /// that export their own metrics alongside the engine's).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Resolve a destination address to its sink node: exact host address
    /// first, then longest-prefix match on announced prefixes.
    pub fn resolve_dst(&self, addr: Addr) -> Option<NodeId> {
        self.topo
            .node_by_addr(addr)
            .or_else(|| self.prefixes.lookup(addr).map(|(_, n)| n))
    }

    fn assign_id(&mut self, pkt: &mut Packet) {
        if pkt.id == 0 {
            self.next_pkt_id += 1;
            pkt.id = self.next_pkt_id;
            pkt.sent_at = self.now;
            self.registry.inc(self.metrics.created);
        }
    }

    /// Route a packet out of `from` toward its destination address.
    fn route_and_send(&mut self, from: NodeId, pkt: Packet) {
        let Some(dst_node) = self.resolve_dst(pkt.key.dst) else {
            // Count creation without assigning an id (ids are handed out
            // lazily at first link transmission, and handing one out here
            // would shift every later packet's id).
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            self.registry.inc(self.metrics.dropped_no_route);
            self.trace
                .record(self.now, TraceKind::NoRoute, Some(from), &pkt);
            return;
        };
        if dst_node == from {
            // Local delivery (e.g. a router pinging itself) — deliver now.
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            self.queue
                .schedule(self.now, Event::Deliver { node: from, pkt });
            return;
        }
        let Some(next) = self.routing.next_hop(from, dst_node) else {
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            self.registry.inc(self.metrics.dropped_no_route);
            self.trace
                .record(self.now, TraceKind::NoRoute, Some(from), &pkt);
            return;
        };
        self.send_via(from, next, pkt);
    }

    /// Send a packet from `from` to adjacent node `next`.
    fn send_via(&mut self, from: NodeId, next: NodeId, mut pkt: Packet) {
        self.assign_id(&mut pkt);
        let Some(link) = self.topo.link_between(from, next) else {
            panic!(
                "send_via: {} and {} are not adjacent",
                self.topo.node(from).name,
                self.topo.node(next).name
            );
        };
        let dir = self.links[link.0].dir_from(from);
        self.offer_link(link, dir, pkt);
    }

    /// Offer a packet to a link direction: faults → taps → queue.
    fn offer_link(&mut self, link: LinkId, dir: Dir, mut pkt: Packet) {
        self.links[link.0].stats_mut(dir).offered += 1;
        // 1. link up / fault injection
        let mut extra = SimDuration::ZERO;
        if !self.links[link.0].apply_fault(dir, &mut self.rng, &mut extra) {
            self.registry.inc(self.metrics.dropped_fault);
            self.trace
                .record(self.now, TraceKind::FaultDrop, None, &pkt);
            return;
        }
        // 2. taps (MitM)
        let mut taps = std::mem::take(self.links[link.0].taps_mut(dir));
        let mut verdict = TapAction::Forward;
        let mut injected = Vec::new();
        for tap in &mut taps {
            match tap.intercept(self.now, dir, &mut pkt, &mut injected) {
                TapAction::Forward => {}
                other => {
                    verdict = other;
                    break;
                }
            }
        }
        *self.links[link.0].taps_mut(dir) = taps;
        for extra_pkt in injected {
            let mut p = extra_pkt;
            self.assign_id(&mut p);
            self.queue
                .schedule(self.now, Event::Offer { link, dir, pkt: p });
        }
        match verdict {
            TapAction::Forward => {}
            TapAction::Drop => {
                self.links[link.0].stats_mut(dir).dropped_tap += 1;
                self.registry.inc(self.metrics.dropped_tap);
                self.trace.record(self.now, TraceKind::TapDrop, None, &pkt);
                return;
            }
            TapAction::Delay(d) => {
                self.queue
                    .schedule(self.now + d, Event::Offer { link, dir, pkt });
                return;
            }
        }
        // 3. jitter re-offers later, bypassing faults/taps
        if extra > SimDuration::ZERO {
            self.queue
                .schedule(self.now + extra, Event::Offer { link, dir, pkt });
            return;
        }
        self.enqueue_link(link, dir, pkt);
    }

    /// DropTail enqueue + transmitter start.
    pub(crate) fn enqueue_link(&mut self, link: LinkId, dir: Dir, pkt: Packet) {
        let cap = self.links[link.0].info.queue_cap;
        let lr = &mut self.links[link.0];
        let st = lr.dir_state(dir);
        let depth = st.queue.len();
        if st.in_flight.is_some() {
            if depth >= cap {
                lr.stats_mut(dir).dropped_queue += 1;
                self.registry.inc(self.metrics.dropped_queue);
                self.registry
                    .record(self.metrics.queue_depth, depth as u64);
                self.trace
                    .record(self.now, TraceKind::QueueDrop, None, &pkt);
                return;
            }
            st.queue.push_back(pkt);
        } else {
            self.start_tx(link, dir, pkt);
        }
        self.registry.record(self.metrics.queue_depth, depth as u64);
    }

    fn start_tx(&mut self, link: LinkId, dir: Dir, pkt: Packet) {
        let bw = self.links[link.0].info.bandwidth;
        let ser = bw.serialization_delay(pkt.size);
        self.trace.record(self.now, TraceKind::TxStart, None, &pkt);
        self.links[link.0].dir_state(dir).in_flight = Some(pkt);
        self.queue
            .schedule(self.now + ser, Event::TxComplete { link, dir });
    }

    pub(crate) fn tx_complete(&mut self, link: LinkId, dir: Dir) {
        let prop = self.links[link.0].info.delay;
        let dst = self.links[link.0].dst_node(dir);
        let lr = &mut self.links[link.0];
        let pkt = lr
            .dir_state(dir)
            .in_flight
            .take()
            .expect("tx_complete with no in-flight packet");
        let stats = lr.stats_mut(dir);
        stats.delivered += 1;
        stats.bytes_delivered += pkt.size as u64;
        self.queue
            .schedule(self.now + prop, Event::Deliver { node: dst, pkt });
        // Start next queued packet, if any.
        if let Some(next) = self.links[link.0].dir_state(dir).queue.pop_front() {
            self.start_tx(link, dir, next);
        }
    }
}

/// Handle given to node logic while it runs. Everything a host or router may
/// legitimately do — read the clock, send packets, arm timers, draw
/// randomness — goes through here.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    /// The node this context belongs to.
    pub node: NodeId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.core.topo.node(self.node).addr
    }

    /// The topology (read-only).
    pub fn topo(&self) -> &Topology {
        self.core.topo()
    }

    /// The routing tables (read-only; routing changes are operator actions
    /// done through [`Simulator::core_mut`]).
    pub fn routing(&self) -> &Routing {
        self.core.routing()
    }

    /// Resolve a destination address to its sink node.
    pub fn resolve_dst(&self, addr: Addr) -> Option<NodeId> {
        self.core.resolve_dst(addr)
    }

    /// Send a packet, routed from this node toward `pkt.key.dst`.
    pub fn send(&mut self, pkt: Packet) {
        self.core.route_and_send(self.node, pkt);
    }

    /// Send a packet to a specific adjacent next hop (used by routers whose
    /// data-plane programs override the routing table).
    pub fn send_via(&mut self, next: NodeId, pkt: Packet) {
        self.core.send_via(self.node, next, pkt);
    }

    /// Arm a one-shot timer delivering `token` to this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let node = self.node;
        self.core
            .queue
            .schedule(self.core.now + delay, Event::Timer { node, token });
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.core.rng
    }

    /// Count a TTL-expiry drop (used by router logic).
    pub fn count_ttl_drop(&mut self) {
        let id = self.core.metrics.dropped_ttl;
        self.core.registry.inc(id);
    }

    /// Count a drop decided by a data-plane program.
    pub fn count_program_drop(&mut self) {
        let id = self.core.metrics.dropped_program;
        self.core.registry.inc(id);
    }

    /// Count a packet that reached a node with no local consumer.
    pub fn count_no_route(&mut self) {
        let id = self.core.metrics.dropped_no_route;
        self.core.registry.inc(id);
    }

    /// Count a packet consumed locally by a router (e.g. a ping to the
    /// router's own address).
    pub fn count_router_local(&mut self) {
        let id = self.core.metrics.consumed_router;
        self.core.registry.inc(id);
    }

    /// Count a forwarding decision where a data-plane program overrode
    /// the routing table (per-node counter
    /// `netsim.program.forward.<node>`).
    pub fn count_program_forward(&mut self) {
        let id = match self.core.metrics.program_forward[self.node.0] {
            Some(id) => id,
            None => {
                let name = format!(
                    "netsim.program.forward.{}",
                    self.core.topo.node(self.node).name
                );
                let id = self.core.registry.counter(&name);
                self.core.metrics.program_forward[self.node.0] = Some(id);
                id
            }
        };
        self.core.registry.inc(id);
    }

    /// The metrics registry, for node logic recording its own metrics
    /// alongside the engine's (`netsim.`-prefixed) counters.
    pub fn metrics(&mut self) -> &mut Registry {
        &mut self.core.registry
    }
}

/// The top-level simulator: topology + per-node behavior + event loop.
pub struct Simulator {
    core: SimCore,
    logics: Vec<Option<Box<dyn NodeLogic>>>,
    started: bool,
}

impl Simulator {
    /// Build a simulator over `topo` with shortest-path routing and a
    /// deterministic RNG seeded by `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let routing = Routing::shortest_paths(&topo);
        let links = topo.links().iter().cloned().map(LinkRuntime::new).collect();
        let n = topo.node_count();
        let mut registry = Registry::new();
        let metrics = EngineMetrics::new(&mut registry, n);
        Simulator {
            core: SimCore {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                topo,
                routing,
                prefixes: PrefixTable::new(),
                links,
                registry,
                metrics,
                spans: None,
                trace: Trace::disabled(),
                rng: Rng::new(seed),
                next_pkt_id: 0,
            },
            logics: (0..n).map(|_| None).collect(),
            started: false,
        }
    }

    /// Install behavior for a node (replacing any previous behavior).
    pub fn set_logic(&mut self, node: NodeId, logic: Box<dyn NodeLogic>) {
        self.logics[node.0] = Some(logic);
    }

    /// Borrow a node's behavior, downcast to its concrete type. Panics if
    /// the node has no logic or the type does not match — both are test/
    /// harness programming errors.
    pub fn logic_mut<T: NodeLogic + 'static>(&mut self, node: NodeId) -> &mut T {
        self.logics[node.0]
            .as_mut()
            .expect("node has no logic installed")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node logic has a different concrete type")
    }

    /// Shared read access to the engine core.
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// Mutable access to the engine core (routing changes, etc.). This is
    /// the operator-privilege surface.
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// Announce a destination prefix as sunk by `node`.
    pub fn announce_prefix(&mut self, prefix: Prefix, node: NodeId) {
        self.core.prefixes.announce(prefix, node);
    }

    /// Install a MitM tap on one direction of a link.
    pub fn install_tap(&mut self, link: LinkId, dir: Dir, tap: Box<dyn LinkTap>) {
        self.core.links[link.0].taps_mut(dir).push(tap);
    }

    /// Configure benign fault injection on one direction of a link.
    pub fn set_fault(&mut self, link: LinkId, dir: Dir, fault: FaultConfig) {
        self.core.links[link.0].dir_state(dir).fault = fault;
    }

    /// Administratively fail / restore a link (both directions).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.core.links[link.0].up = up;
    }

    /// Is the link currently up?
    pub fn link_up(&self, link: LinkId) -> bool {
        self.core.links[link.0].up
    }

    /// Per-direction link statistics.
    pub fn link_stats(&self, link: LinkId, dir: Dir) -> crate::link::LinkDirStats {
        *self.core.links[link.0].stats(dir)
    }

    /// Enable bounded in-memory tracing (for examples / debugging).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Trace::enabled(capacity);
    }

    /// Enable span tracing of the event loop: each dispatched event is
    /// recorded as a span keyed by deterministic `SimTime` nanoseconds,
    /// in a ring holding at most `capacity` completed spans.
    pub fn enable_spans(&mut self, capacity: usize) {
        self.core.spans = Some(SpanRecorder::new(capacity));
    }

    /// The event-loop span recorder, if [`Self::enable_spans`] was called.
    pub fn spans(&self) -> Option<&SpanRecorder> {
        self.core.spans.as_ref()
    }

    /// Freeze the metrics registry into a mergeable snapshot.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.core.registry.snapshot()
    }

    /// Recorded trace events.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.core.trace.events()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Global counters (a by-value view over the metrics registry).
    pub fn counters(&self) -> Counters {
        self.core.counters()
    }

    /// Inject a packet at a node as if its application sent it.
    pub fn inject(&mut self, node: NodeId, pkt: Packet) {
        self.start_if_needed();
        self.core.route_and_send(node, pkt);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.logics.len() {
            if let Some(mut logic) = self.logics[i].take() {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node: NodeId(i),
                };
                logic.on_start(&mut ctx);
                self.logics[i] = Some(logic);
            }
        }
    }

    /// Run the event loop until simulated time `t` (inclusive of events at
    /// exactly `t`). Time then rests at `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_if_needed();
        while let Some(et) = self.core.queue.peek_time() {
            if et > t {
                break;
            }
            let (time, event) = self.core.queue.pop().expect("peeked");
            debug_assert!(time >= self.core.now, "time went backwards");
            self.core.now = time;
            self.dispatch(time, event);
        }
        self.core.now = t;
    }

    /// Dispatch one event, maintaining delivery counters and (when
    /// enabled) recording the dispatch as a sim-time span.
    fn dispatch(&mut self, time: SimTime, event: Event) {
        if let Some(spans) = self.core.spans.as_mut() {
            let label = match &event {
                Event::Deliver { .. } => "deliver",
                Event::TxComplete { .. } => "tx_complete",
                Event::Timer { .. } => "timer",
                Event::Offer { .. } => "offer",
            };
            spans.enter(label, time.as_nanos());
        }
        match event {
            Event::Deliver { node, pkt } => {
                self.core.registry.inc(self.core.metrics.delivered);
                self.core
                    .trace
                    .record(time, TraceKind::Deliver, Some(node), &pkt);
                if let Some(mut logic) = self.logics[node.0].take() {
                    if self.core.topo.node(node).kind == crate::topology::NodeKind::Host {
                        self.core
                            .registry
                            .inc(self.core.metrics.delivered_endpoint);
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    logic.on_packet(&mut ctx, pkt);
                    self.logics[node.0] = Some(logic);
                } else {
                    // No behavior installed: node is a pure sink.
                    self.core.registry.inc(self.core.metrics.sunk);
                }
            }
            Event::TxComplete { link, dir } => self.core.tx_complete(link, dir),
            Event::Timer { node, token } => {
                if let Some(mut logic) = self.logics[node.0].take() {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    logic.on_timer(&mut ctx, token);
                    self.logics[node.0] = Some(logic);
                }
            }
            Event::Offer { link, dir, pkt } => self.core.enqueue_link(link, dir, pkt),
        }
        if let Some(spans) = self.core.spans.as_mut() {
            spans.exit(self.core.now.as_nanos());
        }
    }

    /// Run until the event queue drains (or `max` events, as a hang guard).
    /// Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max: u64) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while let Some((time, event)) = self.core.queue.pop() {
            self.core.now = time;
            n += 1;
            assert!(n <= max, "simulation did not quiesce within {max} events");
            self.dispatch(time, event);
        }
        n
    }
}
