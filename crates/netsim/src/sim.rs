//! The simulation engine: core state, the node-facing [`Ctx`] handle, and
//! the top-level [`Simulator`].

use crate::arena::{PacketArena, PacketRef};
use crate::event::{Event, EventQueue, SavedEvent};
use crate::link::{Dir, FaultConfig, LinkDirStats, LinkRuntime, LinkTap, TapAction};
use crate::node::NodeLogic;
use crate::packet::{Addr, Packet, Prefix};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, PrefixTable, Routing, Topology};
use crate::trace::{Counters, Trace, TraceEvent, TraceKind};
use crate::wheel::WheelStats;
use dui_stats::digest::StateDigest;
use dui_stats::Rng;
use dui_telemetry::{CounterId, GaugeId, HistId, Registry, Snapshot, SpanRecorder};

/// Pre-registered metric ids for the engine's own accounting. Resolving
/// names to ids once at construction keeps the per-packet record path at
/// a single array index.
pub(crate) struct EngineMetrics {
    pub delivered: CounterId,
    pub delivered_endpoint: CounterId,
    pub sunk: CounterId,
    pub created: CounterId,
    pub consumed_router: CounterId,
    pub dropped_queue: CounterId,
    pub dropped_tap: CounterId,
    pub dropped_fault: CounterId,
    pub dropped_ttl: CounterId,
    pub dropped_program: CounterId,
    pub dropped_no_route: CounterId,
    pub queue_depth: HistId,
    /// Lazily-registered `netsim.program.forward.<node>` counters.
    pub program_forward: Vec<Option<CounterId>>,
    // Structural metrics for the handle-based core: arena occupancy
    // gauges and wheel work counters, synced at run boundaries (not per
    // event) so the hot path stays untouched.
    pub arena_live: GaugeId,
    pub arena_capacity: GaugeId,
    pub arena_high_water: GaugeId,
    pub arena_recycled: CounterId,
    pub wheel_cascades: CounterId,
    pub wheel_cascaded_entries: CounterId,
    pub wheel_deferred: CounterId,
    /// Wheel stats at the last sync (counters export deltas).
    pub last_wheel: WheelStats,
    /// Arena recycle count at the last sync.
    pub last_recycled: u64,
}

impl EngineMetrics {
    fn new(reg: &mut Registry, nodes: usize) -> Self {
        EngineMetrics {
            delivered: reg.counter("netsim.delivered"),
            delivered_endpoint: reg.counter("netsim.delivered.endpoint"),
            sunk: reg.counter("netsim.sunk"),
            created: reg.counter("netsim.packets.created"),
            consumed_router: reg.counter("netsim.consumed.router"),
            dropped_queue: reg.counter("netsim.drop.queue"),
            dropped_tap: reg.counter("netsim.drop.tap"),
            dropped_fault: reg.counter("netsim.drop.fault"),
            dropped_ttl: reg.counter("netsim.drop.ttl"),
            dropped_program: reg.counter("netsim.drop.program"),
            dropped_no_route: reg.counter("netsim.drop.no_route"),
            queue_depth: reg.histogram("netsim.link.queue_depth"),
            program_forward: vec![None; nodes],
            arena_live: reg.gauge("netsim.arena.live"),
            arena_capacity: reg.gauge("netsim.arena.capacity"),
            arena_high_water: reg.gauge("netsim.arena.high_water"),
            arena_recycled: reg.counter("netsim.arena.recycled"),
            wheel_cascades: reg.counter("netsim.wheel.cascades"),
            wheel_cascaded_entries: reg.counter("netsim.wheel.cascaded_entries"),
            wheel_deferred: reg.counter("netsim.wheel.deferred"),
            last_wheel: WheelStats::default(),
            last_recycled: 0,
        }
    }
}

/// Engine state shared with node logic through [`Ctx`]. Node behaviors are
/// stored *outside* this struct so a node can freely send packets / arm
/// timers while its own `&mut self` is live.
pub struct SimCore {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue,
    pub(crate) arena: PacketArena,
    pub(crate) topo: Topology,
    pub(crate) routing: Routing,
    pub(crate) prefixes: PrefixTable,
    pub(crate) links: Vec<LinkRuntime>,
    pub(crate) registry: Registry,
    pub(crate) metrics: EngineMetrics,
    pub(crate) spans: Option<SpanRecorder>,
    pub(crate) trace: Trace,
    pub(crate) rng: Rng,
    pub(crate) next_pkt_id: u64,
    /// Present while this core runs as one domain of the parallel engine
    /// (see [`crate::parallel`]); `None` in the ordinary sequential
    /// engine. Reroutes scheduling through provisional keys, provisional
    /// packet ids, and the cross-domain outbox.
    pub(crate) domain: Option<Box<crate::parallel::DomainExt>>,
}

impl SimCore {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The (immutable) topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Read the routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Mutate the routing tables. This is an **operator-privilege** action
    /// in the paper's threat model (§2.1) — only code standing in for the
    /// operator (or for the legitimate control plane) should call it.
    pub fn routing_mut(&mut self) -> &mut Routing {
        &mut self.routing
    }

    /// Read announced destination prefixes.
    pub fn prefixes(&self) -> &PrefixTable {
        &self.prefixes
    }

    /// Global counters, reconstructed as a plain-struct view over the
    /// metrics registry.
    pub fn counters(&self) -> Counters {
        let r = &self.registry;
        let m = &self.metrics;
        Counters {
            delivered: r.counter_value(m.delivered),
            sunk: r.counter_value(m.sunk),
            dropped_queue: r.counter_value(m.dropped_queue),
            dropped_tap: r.counter_value(m.dropped_tap),
            dropped_fault: r.counter_value(m.dropped_fault),
            dropped_ttl: r.counter_value(m.dropped_ttl),
            dropped_program: r.counter_value(m.dropped_program),
            dropped_no_route: r.counter_value(m.dropped_no_route),
        }
    }

    /// The metrics registry (read-only). Engine counters live under the
    /// `netsim.` prefix; node logic may register its own metrics via
    /// [`Ctx::metrics`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the metrics registry (for scenario harnesses
    /// that export their own metrics alongside the engine's).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Resolve a destination address to its sink node: exact host address
    /// first, then longest-prefix match on announced prefixes.
    pub fn resolve_dst(&self, addr: Addr) -> Option<NodeId> {
        self.topo
            .node_by_addr(addr)
            .or_else(|| self.prefixes.lookup(addr).map(|(_, n)| n))
    }

    /// Hand out a packet id if the packet does not have one yet. Under
    /// the parallel engine the id is *provisional* (the global id
    /// sequence is only known at the next barrier); the domain records
    /// the assignment so the barrier can re-number it in merged dispatch
    /// order and patch the surviving body.
    fn assign_id(&mut self, pkt: &mut Packet) {
        if pkt.id != 0 {
            return;
        }
        pkt.id = match self.domain.as_mut() {
            None => {
                self.next_pkt_id += 1;
                self.next_pkt_id
            }
            Some(d) => d.next_provisional_id(),
        };
        pkt.sent_at = self.now;
        self.registry.inc(self.metrics.created);
    }

    /// Central scheduling hook: every event the engine produces during a
    /// dispatch goes through here. Sequentially it is a plain
    /// counter-ordered schedule; under the parallel engine the event gets
    /// a provisional `(record, position)` key and parks in the domain's
    /// fresh-heap until the next barrier resolves the key (see
    /// [`crate::parallel`] for why this reproduces the sequential
    /// `(time, seq)` order exactly).
    fn schedule_event(&mut self, t: SimTime, ev: Event) {
        match self.domain.as_mut() {
            None => self.queue.schedule(t, ev),
            Some(d) => d.schedule_local(t, ev),
        }
    }

    /// Route a packet out of `from` toward its destination address.
    fn route_and_send(&mut self, from: NodeId, pkt: Packet) {
        let Some(dst_node) = self.resolve_dst(pkt.key.dst) else {
            // Count creation without assigning an id (ids are handed out
            // lazily at first link transmission, and handing one out here
            // would shift every later packet's id).
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            self.registry.inc(self.metrics.dropped_no_route);
            self.trace
                .record(self.now, TraceKind::NoRoute, Some(from), &pkt);
            return;
        };
        if dst_node == from {
            // Local delivery (e.g. a router pinging itself) — deliver now.
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            let pkt = self.arena.insert(pkt);
            self.schedule_event(self.now, Event::Deliver { node: from, pkt });
            return;
        }
        let Some(next) = self.routing.next_hop(from, dst_node) else {
            if pkt.id == 0 {
                self.registry.inc(self.metrics.created);
            }
            self.registry.inc(self.metrics.dropped_no_route);
            self.trace
                .record(self.now, TraceKind::NoRoute, Some(from), &pkt);
            return;
        };
        self.send_via(from, next, pkt);
    }

    /// Send a packet from `from` to adjacent node `next`. The packet body
    /// enters the arena here; from this point on it moves by handle.
    fn send_via(&mut self, from: NodeId, next: NodeId, mut pkt: Packet) {
        self.assign_id(&mut pkt);
        let Some(link) = self.topo.link_between(from, next) else {
            // lint: allow(panic): routing only yields adjacent hops — a miss is a harness programming error, not input
            panic!(
                "send_via: {} and {} are not adjacent",
                self.topo.node(from).name,
                self.topo.node(next).name
            );
        };
        let dir = self.links[link.0].dir_from(from);
        let pkt = self.arena.insert(pkt);
        self.offer_link(link, dir, pkt);
    }

    /// Resolve a live handle the engine itself issued. A stale handle here
    /// is an engine invariant violation, not a recoverable condition.
    fn pkt(&self, r: PacketRef) -> &Packet {
        self.arena.get(r).expect("engine holds a stale packet ref") // lint: allow(panic)
    }

    /// Remove a packet the engine is done with (drop or delivery),
    /// recycling its arena slot.
    fn take_pkt(&mut self, r: PacketRef) -> Packet {
        self.arena.take(r).expect("engine holds a stale packet ref") // lint: allow(panic)
    }

    /// Offer a packet to a link direction: faults → taps → queue.
    fn offer_link(&mut self, link: LinkId, dir: Dir, pkt: PacketRef) {
        self.links[link.0].stats_mut(dir).offered += 1;
        // 1. link up / fault injection
        let mut extra = SimDuration::ZERO;
        if !self.links[link.0].apply_fault(dir, &mut self.rng, &mut extra) {
            self.registry.inc(self.metrics.dropped_fault);
            let dropped = self.take_pkt(pkt);
            self.trace
                .record(self.now, TraceKind::FaultDrop, None, &dropped);
            return;
        }
        // 2. taps (MitM)
        let mut taps = std::mem::take(self.links[link.0].taps_mut(dir));
        let mut verdict = TapAction::Forward;
        let mut injected = Vec::new();
        for tap in &mut taps {
            let body = self
                .arena
                .get_mut(pkt)
                .expect("engine holds a stale packet ref"); // lint: allow(panic)
            match tap.intercept(self.now, dir, body, &mut injected) {
                TapAction::Forward => {}
                other => {
                    verdict = other;
                    break;
                }
            }
        }
        *self.links[link.0].taps_mut(dir) = taps;
        for extra_pkt in injected {
            let mut p = extra_pkt;
            self.assign_id(&mut p);
            let p = self.arena.insert(p);
            self.schedule_event(self.now, Event::Offer { link, dir, pkt: p });
        }
        match verdict {
            TapAction::Forward => {}
            TapAction::Drop => {
                self.links[link.0].stats_mut(dir).dropped_tap += 1;
                self.registry.inc(self.metrics.dropped_tap);
                let dropped = self.take_pkt(pkt);
                self.trace
                    .record(self.now, TraceKind::TapDrop, None, &dropped);
                return;
            }
            TapAction::Delay(d) => {
                // The tap's delay buffer is the wheel itself: the handle
                // parks in its slot until the re-offer fires.
                self.schedule_event(self.now + d, Event::Offer { link, dir, pkt });
                return;
            }
        }
        // 3. jitter re-offers later, bypassing faults/taps
        if extra > SimDuration::ZERO {
            self.schedule_event(self.now + extra, Event::Offer { link, dir, pkt });
            return;
        }
        self.enqueue_link(link, dir, pkt);
    }

    /// DropTail enqueue + transmitter start.
    pub(crate) fn enqueue_link(&mut self, link: LinkId, dir: Dir, pkt: PacketRef) {
        let cap = self.links[link.0].info.queue_cap;
        let lr = &mut self.links[link.0];
        let st = lr.dir_state(dir);
        let depth = st.queue.len();
        if st.in_flight.is_some() {
            if depth >= cap {
                lr.stats_mut(dir).dropped_queue += 1;
                self.registry.inc(self.metrics.dropped_queue);
                self.registry
                    .record(self.metrics.queue_depth, depth as u64);
                let dropped = self.take_pkt(pkt);
                self.trace
                    .record(self.now, TraceKind::QueueDrop, None, &dropped);
                return;
            }
            st.queue.push_back(pkt);
        } else {
            self.start_tx(link, dir, pkt);
        }
        self.registry.record(self.metrics.queue_depth, depth as u64);
    }

    fn start_tx(&mut self, link: LinkId, dir: Dir, pkt: PacketRef) {
        let bw = self.links[link.0].info.bandwidth;
        let ser = bw.serialization_delay(self.pkt(pkt).size);
        self.trace
            .record(self.now, TraceKind::TxStart, None, self.arena.get(pkt).expect("engine holds a stale packet ref")); // lint: allow(panic)
        self.links[link.0].dir_state(dir).in_flight = Some(pkt);
        self.schedule_event(self.now + ser, Event::TxComplete { link, dir });
    }

    pub(crate) fn tx_complete(&mut self, link: LinkId, dir: Dir) {
        let prop = self.links[link.0].info.delay;
        let dst = self.links[link.0].dst_node(dir);
        let pkt = self.links[link.0]
            .dir_state(dir)
            .in_flight
            .take()
            // lint: allow(panic): TxComplete is only scheduled after the transmitter placed a packet in flight here
            .expect("tx_complete with no in-flight packet");
        let size = self.pkt(pkt).size;
        let stats = self.links[link.0].stats_mut(dir);
        stats.delivered += 1;
        stats.bytes_delivered += size as u64;
        let arrive = self.now + prop;
        // The propagation hop is the only place an event can cross a
        // domain boundary: under the parallel engine a remote delivery
        // goes to the outbox (arriving at least one lookahead ahead, per
        // the partition invariant) instead of a local queue.
        let remote = match self.domain.as_ref() {
            Some(d) => d.is_remote(dst),
            None => false,
        };
        if remote {
            self.domain
                .as_mut()
                .expect("checked above") // lint: allow(panic)
                .push_outbox(arrive, dst, pkt);
        } else {
            self.schedule_event(arrive, Event::Deliver { node: dst, pkt });
        }
        // Start next queued packet, if any.
        if let Some(next) = self.links[link.0].dir_state(dir).queue.pop_front() {
            self.start_tx(link, dir, next);
        }
    }

    /// The packet arena (read-only; occupancy statistics).
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Sync arena occupancy gauges and wheel work counters into the
    /// metrics registry. Called at run boundaries, not per event, so the
    /// hot path carries no metrics cost.
    pub(crate) fn sync_structural_metrics(&mut self) {
        let ws = self.queue.wheel_stats();
        let m = &mut self.metrics;
        self.registry.add(
            m.wheel_cascades,
            ws.cascades.saturating_sub(m.last_wheel.cascades),
        );
        self.registry.add(
            m.wheel_cascaded_entries,
            ws.cascaded_entries
                .saturating_sub(m.last_wheel.cascaded_entries),
        );
        self.registry.add(
            m.wheel_deferred,
            ws.deferred.saturating_sub(m.last_wheel.deferred),
        );
        m.last_wheel = ws;
        let recycled = self.arena.recycled();
        self.registry.add(
            m.arena_recycled,
            recycled.saturating_sub(m.last_recycled),
        );
        m.last_recycled = recycled;
        self.registry.observe(m.arena_live, self.arena.live() as f64);
        self.registry
            .observe(m.arena_capacity, self.arena.capacity() as f64);
        self.registry
            .observe(m.arena_high_water, self.arena.high_water() as f64);
    }
}

/// Handle given to node logic while it runs. Everything a host or router may
/// legitimately do — read the clock, send packets, arm timers, draw
/// randomness — goes through here.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    /// The node this context belongs to.
    pub node: NodeId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's address.
    pub fn addr(&self) -> Addr {
        self.core.topo.node(self.node).addr
    }

    /// The topology (read-only).
    pub fn topo(&self) -> &Topology {
        self.core.topo()
    }

    /// The routing tables (read-only; routing changes are operator actions
    /// done through [`Simulator::core_mut`]).
    pub fn routing(&self) -> &Routing {
        self.core.routing()
    }

    /// Resolve a destination address to its sink node.
    pub fn resolve_dst(&self, addr: Addr) -> Option<NodeId> {
        self.core.resolve_dst(addr)
    }

    /// Send a packet, routed from this node toward `pkt.key.dst`.
    pub fn send(&mut self, pkt: Packet) {
        self.core.route_and_send(self.node, pkt);
    }

    /// Send a packet to a specific adjacent next hop (used by routers whose
    /// data-plane programs override the routing table).
    pub fn send_via(&mut self, next: NodeId, pkt: Packet) {
        self.core.send_via(self.node, next, pkt);
    }

    /// Arm a one-shot timer delivering `token` to this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let node = self.node;
        self.core
            .schedule_event(self.core.now + delay, Event::Timer { node, token });
    }

    /// Deterministic randomness.
    ///
    /// # Panics
    ///
    /// Panics under the parallel engine: the engine RNG is a single
    /// sequential stream, and a domain drawing from a clone would diverge
    /// from the sequential engine. Logic that needs randomness must carry
    /// its own seeded [`Rng`] (every scenario logic in this workspace
    /// already does); the parallel preconditions in [`crate::parallel`]
    /// keep the engine's own draws (fault injection) off this path.
    pub fn rng(&mut self) -> &mut Rng {
        assert!(
            self.core.domain.is_none(),
            "Ctx::rng is not available under the parallel engine; \
             give the node logic its own seeded Rng instead"
        );
        &mut self.core.rng
    }

    /// Count a TTL-expiry drop (used by router logic).
    pub fn count_ttl_drop(&mut self) {
        let id = self.core.metrics.dropped_ttl;
        self.core.registry.inc(id);
    }

    /// Count a drop decided by a data-plane program.
    pub fn count_program_drop(&mut self) {
        let id = self.core.metrics.dropped_program;
        self.core.registry.inc(id);
    }

    /// Count a packet that reached a node with no local consumer.
    pub fn count_no_route(&mut self) {
        let id = self.core.metrics.dropped_no_route;
        self.core.registry.inc(id);
    }

    /// Count a packet consumed locally by a router (e.g. a ping to the
    /// router's own address).
    pub fn count_router_local(&mut self) {
        let id = self.core.metrics.consumed_router;
        self.core.registry.inc(id);
    }

    /// Count a forwarding decision where a data-plane program overrode
    /// the routing table (per-node counter
    /// `netsim.program.forward.<node>`).
    pub fn count_program_forward(&mut self) {
        let id = match self.core.metrics.program_forward[self.node.0] {
            Some(id) => id,
            None => {
                let name = format!(
                    "netsim.program.forward.{}",
                    self.core.topo.node(self.node).name
                );
                let id = self.core.registry.counter(&name);
                self.core.metrics.program_forward[self.node.0] = Some(id);
                id
            }
        };
        self.core.registry.inc(id);
    }

    /// The metrics registry, for node logic recording its own metrics
    /// alongside the engine's (`netsim.`-prefixed) counters.
    pub fn metrics(&mut self) -> &mut Registry {
        &mut self.core.registry
    }
}

/// One link direction's restorable state (queue contents, in-flight
/// packet, fault configuration).
#[derive(Debug, Clone)]
pub struct DirCheckpoint {
    /// Queued packets, head first.
    pub queue: Vec<Packet>,
    /// Packet currently being serialized, if any.
    pub in_flight: Option<Packet>,
    /// Fault-injection configuration.
    pub fault: FaultConfig,
}

/// One link's restorable state (both directions plus statistics).
#[derive(Debug, Clone)]
pub struct LinkCheckpoint {
    /// Administrative up/down state.
    pub up: bool,
    /// The a→b direction.
    pub ab: DirCheckpoint,
    /// The b→a direction.
    pub ba: DirCheckpoint,
    /// a→b statistics.
    pub stats_ab: LinkDirStats,
    /// b→a statistics.
    pub stats_ba: LinkDirStats,
}

/// A restorable, structured checkpoint of a [`Simulator`]'s logical
/// state, produced by [`Simulator::checkpoint`] and consumed by
/// [`Simulator::restore`].
///
/// The checkpoint captures everything [`Simulator::state_hash`] hashes:
/// clock, RNG, pending events (in dispatch order), link state, routing,
/// prefix announcements, and per-node logic state (as opaque blobs from
/// [`NodeLogic::save_state`]). Telemetry (metrics registry, traces,
/// spans) is observability, not logical state, and is deliberately
/// excluded. Byte serialization of this struct is `dui-replay`'s job.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Simulated time the checkpoint was taken at.
    pub now: SimTime,
    /// Engine RNG state.
    pub rng: [u64; 4],
    /// Packet id allocator cursor.
    pub next_pkt_id: u64,
    /// Whether `on_start` hooks have already run.
    pub started: bool,
    /// Pending events, sorted in dispatch order (self-contained: packets
    /// by value, no arena needed to interpret them).
    pub events: Vec<(SimTime, SavedEvent)>,
    /// Per-link state, indexed by `LinkId`.
    pub links: Vec<LinkCheckpoint>,
    /// Per-node logic blobs (`None` = no logic installed on that node).
    pub logics: Vec<Option<Vec<u8>>>,
    /// Flattened routing table: `routing[src][dst]` = next hop.
    pub routing: Vec<Vec<Option<NodeId>>>,
    /// Announced prefixes.
    pub prefixes: Vec<(Prefix, NodeId)>,
    /// [`Simulator::state_hash`] at checkpoint time (lets consumers
    /// verify a restore reproduced the exact state).
    pub state_hash: u64,
}

/// What [`Simulator::step_limited`] dispatched: the event's time, kind
/// label, and full-content digest — the per-event record the
/// `dui-replay` recorder writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteppedEvent {
    /// Event time (now the current simulated time).
    pub time: SimTime,
    /// Kind label (`deliver`, `tx_complete`, `timer`, `offer`).
    pub kind: &'static str,
    /// Digest of the event's full content.
    pub digest: u64,
}

/// The top-level simulator: topology + per-node behavior + event loop.
pub struct Simulator {
    pub(crate) core: SimCore,
    pub(crate) logics: Vec<Option<Box<dyn NodeLogic>>>,
    pub(crate) started: bool,
    /// Worker-thread budget for the parallel engine; `0` = plain
    /// sequential engine (the default).
    pub(crate) sim_threads: usize,
    /// Cached domain decomposition (a pure function of the immutable
    /// topology).
    pub(crate) domain_map: Option<std::sync::Arc<crate::parallel::DomainMap>>,
    /// What the parallel engine did (or why it fell back) on the most
    /// recent `run_until`.
    pub(crate) last_parallel: Option<crate::parallel::ParallelOutcome>,
}

impl Simulator {
    /// Build a simulator over `topo` with shortest-path routing and a
    /// deterministic RNG seeded by `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let routing = Routing::shortest_paths(&topo);
        let links = topo.links().iter().cloned().map(LinkRuntime::new).collect();
        let n = topo.node_count();
        let mut registry = Registry::new();
        let metrics = EngineMetrics::new(&mut registry, n);
        Simulator {
            core: SimCore {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                arena: PacketArena::new(),
                topo,
                routing,
                prefixes: PrefixTable::new(),
                links,
                registry,
                metrics,
                spans: None,
                trace: Trace::disabled(),
                rng: Rng::new(seed),
                next_pkt_id: 0,
                domain: None,
            },
            logics: (0..n).map(|_| None).collect(),
            started: false,
            sim_threads: 0,
            domain_map: None,
            last_parallel: None,
        }
    }

    /// Opt in to the parallel engine with a budget of `n` worker threads
    /// (`0` restores the plain sequential engine). Any `n >= 1` switches
    /// `run_until` to the domain-sharded execution path — `n = 1` runs
    /// the same domain decomposition on the calling thread, which is what
    /// makes results byte-identical across every `n` (see
    /// [`crate::parallel`] for the full determinism argument). Runs that
    /// fail the parallel preconditions (taps installed, active
    /// random-loss/jitter faults, tracing or spans enabled, or a topology
    /// that partitions into a single domain) silently fall back to the
    /// sequential engine; [`Simulator::last_parallel_outcome`] reports
    /// which path was taken.
    pub fn set_sim_threads(&mut self, n: usize) {
        self.sim_threads = n;
    }

    /// The configured parallel worker budget (`0` = sequential).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// What the parallel engine did on the most recent `run_until`:
    /// `None` before any run (or with `sim_threads == 0`), otherwise
    /// either a window/domain report or the precondition that forced a
    /// sequential fallback.
    pub fn last_parallel_outcome(&self) -> Option<&crate::parallel::ParallelOutcome> {
        self.last_parallel.as_ref()
    }

    /// Install behavior for a node (replacing any previous behavior).
    pub fn set_logic(&mut self, node: NodeId, logic: Box<dyn NodeLogic>) {
        self.logics[node.0] = Some(logic);
    }

    /// Borrow a node's behavior, downcast to its concrete type. Panics if
    /// the node has no logic or the type does not match — both are test/
    /// harness programming errors.
    pub fn logic_mut<T: NodeLogic + 'static>(&mut self, node: NodeId) -> &mut T {
        self.logics[node.0]
            .as_mut()
            // lint: allow(panic): documented contract — callers install logic before asking for it
            .expect("node has no logic installed")
            .as_any_mut()
            .downcast_mut::<T>()
            // lint: allow(panic): documented contract — the caller names the installed concrete type
            .expect("node logic has a different concrete type")
    }

    /// Shared read access to the engine core.
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// Mutable access to the engine core (routing changes, etc.). This is
    /// the operator-privilege surface.
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// Announce a destination prefix as sunk by `node`.
    pub fn announce_prefix(&mut self, prefix: Prefix, node: NodeId) {
        self.core.prefixes.announce(prefix, node);
    }

    /// Install a MitM tap on one direction of a link.
    pub fn install_tap(&mut self, link: LinkId, dir: Dir, tap: Box<dyn LinkTap>) {
        self.core.links[link.0].taps_mut(dir).push(tap);
    }

    /// Configure benign fault injection on one direction of a link.
    pub fn set_fault(&mut self, link: LinkId, dir: Dir, fault: FaultConfig) {
        self.core.links[link.0].dir_state(dir).fault = fault;
    }

    /// Administratively fail / restore a link (both directions).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.core.links[link.0].up = up;
    }

    /// Is the link currently up?
    pub fn link_up(&self, link: LinkId) -> bool {
        self.core.links[link.0].up
    }

    /// Per-direction link statistics.
    pub fn link_stats(&self, link: LinkId, dir: Dir) -> crate::link::LinkDirStats {
        *self.core.links[link.0].stats(dir)
    }

    /// Enable bounded in-memory tracing (for examples / debugging).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Trace::enabled(capacity);
    }

    /// Enable span tracing of the event loop: each dispatched event is
    /// recorded as a span keyed by deterministic `SimTime` nanoseconds,
    /// in a ring holding at most `capacity` completed spans.
    pub fn enable_spans(&mut self, capacity: usize) {
        self.core.spans = Some(SpanRecorder::new(capacity));
    }

    /// The event-loop span recorder, if [`Self::enable_spans`] was called.
    pub fn spans(&self) -> Option<&SpanRecorder> {
        self.core.spans.as_ref()
    }

    /// Freeze the metrics registry into a mergeable snapshot, folding in
    /// every node logic's own metrics ([`NodeLogic::export_metrics`]).
    ///
    /// Logics export into a fresh registry on each call (in node-index
    /// order, so float sums stay byte-stable), which keeps repeated
    /// sampling — e.g. a scenario runner snapshotting at every phase
    /// boundary — idempotent: current values, not re-accumulated ones.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.core.registry.snapshot();
        let mut node_reg = dui_telemetry::registry::Registry::new();
        for logic in self.logics.iter().flatten() {
            logic.export_metrics(&mut node_reg);
        }
        snap.merge(&node_reg.snapshot());
        snap
    }

    /// Recorded trace events.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.core.trace.events()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Global counters (a by-value view over the metrics registry).
    pub fn counters(&self) -> Counters {
        self.core.counters()
    }

    /// Inject a packet at a node as if its application sent it.
    pub fn inject(&mut self, node: NodeId, pkt: Packet) {
        self.start_if_needed();
        self.core.route_and_send(node, pkt);
    }

    pub(crate) fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.logics.len() {
            if let Some(mut logic) = self.logics[i].take() {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node: NodeId(i),
                };
                logic.on_start(&mut ctx);
                self.logics[i] = Some(logic);
            }
        }
    }

    /// Run the event loop until simulated time `t` (inclusive of events at
    /// exactly `t`). Time then rests at `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_if_needed();
        if self.sim_threads > 0 {
            match crate::parallel::run_parallel(self, t) {
                Ok(report) => {
                    self.last_parallel = Some(crate::parallel::ParallelOutcome::Ran(report));
                    return;
                }
                Err(reason) => {
                    // Count the fallback (total + per reason) so harnesses
                    // can report how often the parallel path declined.
                    let total = self.core.registry.counter("netsim.parallel.fallback");
                    self.core.registry.inc(total);
                    let by_reason = self
                        .core
                        .registry
                        .counter(&format!("netsim.parallel.fallback.{}", reason.key()));
                    self.core.registry.inc(by_reason);
                    self.last_parallel =
                        Some(crate::parallel::ParallelOutcome::Fallback(reason));
                    // fall through to the sequential engine
                }
            }
        }
        while let Some(et) = self.core.queue.peek_time() {
            if et > t {
                break;
            }
            let Some((time, event)) = self.core.queue.pop() else {
                break;
            };
            debug_assert!(time >= self.core.now, "time went backwards");
            self.core.now = time;
            self.dispatch(time, event);
        }
        self.core.now = t;
        self.core.sync_structural_metrics();
    }

    /// Dispatch one event, maintaining delivery counters and (when
    /// enabled) recording the dispatch as a sim-time span.
    pub(crate) fn dispatch(&mut self, time: SimTime, event: Event) {
        if let Some(spans) = self.core.spans.as_mut() {
            let label = match &event {
                Event::Deliver { .. } => "deliver",
                Event::TxComplete { .. } => "tx_complete",
                Event::Timer { .. } => "timer",
                Event::Offer { .. } => "offer",
            };
            spans.enter(label, time.as_nanos());
        }
        match event {
            Event::Deliver { node, pkt } => {
                self.core.registry.inc(self.core.metrics.delivered);
                // Delivery retires the handle: the body moves out of the
                // arena (recycling the slot) and into the node logic.
                let body = self.core.take_pkt(pkt);
                self.core
                    .trace
                    .record(time, TraceKind::Deliver, Some(node), &body);
                if let Some(mut logic) = self.logics[node.0].take() {
                    if self.core.topo.node(node).kind == crate::topology::NodeKind::Host {
                        self.core
                            .registry
                            .inc(self.core.metrics.delivered_endpoint);
                    }
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    logic.on_packet(&mut ctx, body);
                    self.logics[node.0] = Some(logic);
                } else {
                    // No behavior installed: node is a pure sink.
                    self.core.registry.inc(self.core.metrics.sunk);
                }
            }
            Event::TxComplete { link, dir } => self.core.tx_complete(link, dir),
            Event::Timer { node, token } => {
                if let Some(mut logic) = self.logics[node.0].take() {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        node,
                    };
                    logic.on_timer(&mut ctx, token);
                    self.logics[node.0] = Some(logic);
                }
            }
            Event::Offer { link, dir, pkt } => self.core.enqueue_link(link, dir, pkt),
        }
        if let Some(spans) = self.core.spans.as_mut() {
            spans.exit(self.core.now.as_nanos());
        }
    }

    /// Dispatch exactly one pending event, provided it is due at or
    /// before `limit`. Returns `None` — and rests the clock at `limit`
    /// — once no event remains within the limit, so
    /// `while sim.step_limited(t).is_some() {}` is equivalent to
    /// `sim.run_until(t)`. This is the hook the `dui-replay` recorder
    /// drives the engine through.
    pub fn step_limited(&mut self, limit: SimTime) -> Option<SteppedEvent> {
        self.start_if_needed();
        if self.core.queue.peek_time().is_some_and(|et| et <= limit) {
            if let Some((time, event)) = self.core.queue.pop() {
                debug_assert!(time >= self.core.now, "time went backwards");
                self.core.now = time;
                let kind = event.kind();
                let mut d = StateDigest::labeled("event");
                event.state_digest(&mut d, &self.core.arena);
                let digest = d.finish();
                self.dispatch(time, event);
                return Some(SteppedEvent { time, kind, digest });
            }
        }
        self.core.now = limit;
        self.core.sync_structural_metrics();
        None
    }

    /// Fold the engine's complete logical state into `d`: clock, RNG,
    /// pending events (dispatch order), link queues and statistics,
    /// routing, prefix announcements, and every node logic's
    /// [`NodeLogic::state_digest`] contribution.
    ///
    /// Telemetry (metrics registry, traces, spans) is excluded: it is
    /// observability about the run, not state that influences it.
    pub fn state_digest(&self, d: &mut StateDigest) {
        d.write_u64(self.core.now.0);
        d.write_u64(self.core.next_pkt_id);
        for w in self.core.rng.state() {
            d.write_u64(w);
        }
        d.write_bool(self.started);
        // Events and link queues hold handles; resolve each through the
        // arena and digest the packet *contents*, byte-identical to the
        // pre-arena engine (golden hashes must not change).
        let events = self.core.queue.snapshot_refs();
        d.write_len(events.len());
        for (t, e) in &events {
            d.write_u64(t.0);
            e.state_digest(d, &self.core.arena);
        }
        d.write_len(self.core.links.len());
        for lr in &self.core.links {
            d.write_bool(lr.up);
            for (st, stats) in [(&lr.ab, &lr.stats_ab), (&lr.ba, &lr.stats_ba)] {
                d.write_len(st.queue.len());
                for p in &st.queue {
                    self.core.pkt(*p).state_digest(d);
                }
                match st.in_flight {
                    None => d.write_u8(0),
                    Some(p) => {
                        d.write_u8(1);
                        self.core.pkt(p).state_digest(d);
                    }
                }
                d.write_f64(st.fault.drop_prob);
                d.write_opt_u64(st.fault.jitter_max.map(|j| j.as_nanos()));
                for c in [
                    stats.offered,
                    stats.delivered,
                    stats.bytes_delivered,
                    stats.dropped_queue,
                    stats.dropped_tap,
                    stats.dropped_fault,
                ] {
                    d.write_u64(c);
                }
            }
            d.write_usize(lr.taps_ab.len());
            d.write_usize(lr.taps_ba.len());
        }
        let n = self.core.topo.node_count();
        for src in 0..n {
            for dst in 0..n {
                d.write_opt_u64(
                    self.core
                        .routing
                        .next_hop(NodeId(src), NodeId(dst))
                        .map(|h| h.0 as u64),
                );
            }
        }
        d.write_len(self.core.prefixes.entries().len());
        for (p, node) in self.core.prefixes.entries() {
            d.write_u32(p.addr.0);
            d.write_u8(p.len);
            d.write_usize(node.0);
        }
        d.write_len(self.logics.len());
        for logic in &self.logics {
            match logic {
                None => d.write_u8(0),
                Some(l) => {
                    d.write_u8(1);
                    l.state_digest(d);
                }
            }
        }
    }

    /// 64-bit digest of the engine's complete logical state (see
    /// [`Simulator::state_digest`] for what is covered).
    pub fn state_hash(&self) -> u64 {
        let mut d = StateDigest::labeled("netsim");
        self.state_digest(&mut d);
        d.finish()
    }

    /// Capture a restorable checkpoint of the engine's logical state.
    ///
    /// Fails (all-or-nothing) if any installed node logic does not
    /// support [`NodeLogic::save_state`] or if MitM taps are installed
    /// (trait objects with no serialization contract) — recordings of
    /// such simulations remain hash-checkable, just not resumable.
    pub fn checkpoint(&self) -> Result<EngineCheckpoint, String> {
        for lr in &self.core.links {
            if !lr.taps_ab.is_empty() || !lr.taps_ba.is_empty() {
                return Err("cannot checkpoint a simulation with link taps installed".into());
            }
        }
        let mut logics = Vec::with_capacity(self.logics.len());
        for (i, logic) in self.logics.iter().enumerate() {
            match logic {
                None => logics.push(None),
                Some(l) => match l.save_state() {
                    Some(bytes) => logics.push(Some(bytes)),
                    None => {
                        return Err(format!(
                            "node '{}' has logic that does not support checkpointing",
                            self.core.topo.node(NodeId(i)).name
                        ))
                    }
                },
            }
        }
        // Materialize link queues through the arena: each packet is
        // cloned exactly once, inside the arena module.
        let arena = &self.core.arena;
        let dir_ckpt = |st: &crate::link::DirState| DirCheckpoint {
            queue: st
                .queue
                .iter()
                .map(|r| {
                    arena
                        .snapshot_packet(*r)
                        .expect("engine holds a stale packet ref") // lint: allow(panic)
                })
                .collect(),
            in_flight: st.in_flight.map(|r| {
                arena
                    .snapshot_packet(r)
                    .expect("engine holds a stale packet ref") // lint: allow(panic)
            }),
            fault: st.fault,
        };
        let links = self
            .core
            .links
            .iter()
            .map(|lr| LinkCheckpoint {
                up: lr.up,
                ab: dir_ckpt(&lr.ab),
                ba: dir_ckpt(&lr.ba),
                stats_ab: lr.stats_ab,
                stats_ba: lr.stats_ba,
            })
            .collect();
        let n = self.core.topo.node_count();
        let routing = (0..n)
            .map(|src| {
                (0..n)
                    .map(|dst| self.core.routing.next_hop(NodeId(src), NodeId(dst)))
                    .collect()
            })
            .collect();
        Ok(EngineCheckpoint {
            now: self.core.now,
            rng: self.core.rng.state(),
            next_pkt_id: self.core.next_pkt_id,
            started: self.started,
            events: self.core.queue.snapshot_sorted(&self.core.arena),
            links,
            logics,
            routing,
            prefixes: self.core.prefixes.entries().to_vec(),
            state_hash: self.state_hash(),
        })
    }

    /// Restore a checkpoint taken from a simulator with the same
    /// topology and node logics (typically a freshly rebuilt scenario).
    /// Consumes the checkpoint: packet bodies *move* into the rebuilt
    /// arena, no re-clone.
    ///
    /// Pending events are re-scheduled in dispatch order — `(time,
    /// seq)` ordering is total, so the rebuilt queue pops identically
    /// regardless of the original sequence numbers. Arena slot assignment
    /// and wheel internals are rebuilt fresh; both are implementation
    /// detail outside the logical state, so [`Simulator::state_hash`]
    /// still reproduces the checkpoint's hash. Telemetry counters are
    /// *not* restored (they remain whatever the receiving simulator
    /// accumulated), matching their exclusion from the state hash.
    pub fn restore(&mut self, ckpt: EngineCheckpoint) -> Result<(), String> {
        if ckpt.logics.len() != self.logics.len() {
            return Err("checkpoint node count does not match topology".into());
        }
        if ckpt.links.len() != self.core.links.len() {
            return Err("checkpoint link count does not match topology".into());
        }
        if ckpt.routing.len() != self.core.topo.node_count() {
            return Err("checkpoint routing table does not match topology".into());
        }
        for lr in &self.core.links {
            if !lr.taps_ab.is_empty() || !lr.taps_ba.is_empty() {
                return Err("cannot restore into a simulation with link taps installed".into());
            }
        }
        for (i, blob) in ckpt.logics.iter().enumerate() {
            match (&mut self.logics[i], blob) {
                (Some(l), Some(bytes)) => l.load_state(bytes)?,
                (None, None) => {}
                (Some(_), None) => {
                    return Err(format!(
                        "checkpoint has no state for node '{}' which has logic installed",
                        self.core.topo.node(NodeId(i)).name
                    ))
                }
                (None, Some(_)) => {
                    return Err(format!(
                        "checkpoint has state for node '{}' which has no logic installed",
                        self.core.topo.node(NodeId(i)).name
                    ))
                }
            }
        }
        self.core.now = ckpt.now;
        self.core.rng = Rng::from_state(ckpt.rng);
        self.core.next_pkt_id = ckpt.next_pkt_id;
        self.started = ckpt.started;
        // Rebuild arena + queue together: every saved packet moves into a
        // fresh arena exactly once (no clone — the checkpoint is consumed).
        self.core.arena = PacketArena::new();
        let mut queue = EventQueue::new();
        for (t, e) in ckpt.events {
            let live = e.into_live(&mut self.core.arena);
            queue.schedule(t, live);
        }
        self.core.queue = queue;
        // Counters in the registry export deltas against the last synced
        // wheel/arena stats; both were just reset, so re-baseline.
        self.core.metrics.last_wheel = self.core.queue.wheel_stats();
        self.core.metrics.last_recycled = self.core.arena.recycled();
        for (lr, lc) in self.core.links.iter_mut().zip(ckpt.links) {
            lr.up = lc.up;
            lr.ab.queue = lc
                .ab
                .queue
                .into_iter()
                .map(|p| self.core.arena.insert(p))
                .collect();
            lr.ab.in_flight = lc.ab.in_flight.map(|p| self.core.arena.insert(p));
            lr.ab.fault = lc.ab.fault;
            lr.ba.queue = lc
                .ba
                .queue
                .into_iter()
                .map(|p| self.core.arena.insert(p))
                .collect();
            lr.ba.in_flight = lc.ba.in_flight.map(|p| self.core.arena.insert(p));
            lr.ba.fault = lc.ba.fault;
            lr.stats_ab = lc.stats_ab;
            lr.stats_ba = lc.stats_ba;
        }
        let n = self.core.topo.node_count();
        for src in 0..n {
            for dst in 0..n {
                self.core.routing.set_next_hop(
                    NodeId(src),
                    NodeId(dst),
                    ckpt.routing[src][dst],
                );
            }
        }
        self.core.prefixes = PrefixTable::new();
        for (p, node) in &ckpt.prefixes {
            self.core.prefixes.announce(*p, *node);
        }
        Ok(())
    }

    /// Run until the event queue drains (or `max` events, as a hang guard).
    /// Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max: u64) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while let Some((time, event)) = self.core.queue.pop() {
            self.core.now = time;
            n += 1;
            assert!(n <= max, "simulation did not quiesce within {max} events");
            self.dispatch(time, event);
        }
        self.core.sync_structural_metrics();
        n
    }
}
