//! Runtime link state: transmission, queueing, fault injection, and MitM
//! taps.
//!
//! Each link is full-duplex: the two directions have independent queues and
//! transmitters. A packet offered to a direction passes, in order, through
//!
//! 1. the *up/down* check (an administratively failed link silently drops —
//!    this is how experiments model the physical failures Blink reacts to),
//! 2. the *fault injector* (random loss / jitter, as in smoltcp's example
//!    fault injection),
//! 3. the *taps* (the man-in-the-middle privilege of the paper's §2.1: a
//!    tap can observe, modify, drop, delay, or inject traffic on the link,
//!    but cannot do anything elsewhere in the network),
//! 4. the DropTail queue + transmitter.

use crate::arena::PacketRef;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkInfo, NodeId};
use dui_stats::Rng;
use std::collections::VecDeque;

/// Direction of travel across a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From endpoint `a` to endpoint `b`.
    AtoB,
    /// From endpoint `b` to endpoint `a`.
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flipped(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }
}

/// What a tap decides to do with an intercepted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapAction {
    /// Let it continue (possibly after in-place modification).
    Forward,
    /// Silently drop it.
    Drop,
    /// Hold it for the given extra delay, then enqueue it (bypassing taps).
    Delay(SimDuration),
}

/// A man-in-the-middle interception point on one link direction.
///
/// This is the concrete embodiment of the paper's MitM attacker privilege:
/// "record, modify, drop, and delay traffic that crosses these links, as
/// well as inject traffic. However, she cannot break encryption." Our
/// packets expose only header/metadata fields, so a tap manipulating them
/// stays within that boundary by construction.
pub trait LinkTap: Send {
    /// Rule on one packet. May mutate `pkt` (header rewriting) and push
    /// extra packets into `inject`; injected packets are offered to the same
    /// link direction immediately after this one, without re-running taps.
    fn intercept(
        &mut self,
        now: SimTime,
        dir: Dir,
        pkt: &mut Packet,
        inject: &mut Vec<Packet>,
    ) -> TapAction;

    /// Human-readable label for traces.
    fn label(&self) -> &str {
        "tap"
    }
}

/// Random loss / jitter on a link direction (benign impairment, distinct
/// from an attacker tap).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability that an offered packet is dropped.
    pub drop_prob: f64,
    /// If set, adds uniform random extra delay in `[0, max]` to each packet.
    pub jitter_max: Option<SimDuration>,
}

/// Per-direction transmitter + queue state. Queued and in-flight packets
/// live in the engine's [`crate::arena::PacketArena`]; the link holds only
/// their handles.
#[derive(Debug, Default)]
pub(crate) struct DirState {
    pub queue: VecDeque<PacketRef>,
    /// Packet currently being serialized, if any.
    pub in_flight: Option<PacketRef>,
    pub fault: FaultConfig,
}

/// Per-link-direction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkDirStats {
    /// Packets offered to this direction (before any dropping).
    pub offered: u64,
    /// Packets fully delivered to the far node.
    pub delivered: u64,
    /// Bytes fully delivered.
    pub bytes_delivered: u64,
    /// DropTail queue drops.
    pub dropped_queue: u64,
    /// Drops decided by taps.
    pub dropped_tap: u64,
    /// Drops from fault injection or the link being down.
    pub dropped_fault: u64,
}

/// Runtime state of one link (both directions).
pub(crate) struct LinkRuntime {
    pub info: LinkInfo,
    pub up: bool,
    pub ab: DirState,
    pub ba: DirState,
    pub taps_ab: Vec<Box<dyn LinkTap>>,
    pub taps_ba: Vec<Box<dyn LinkTap>>,
    pub stats_ab: LinkDirStats,
    pub stats_ba: LinkDirStats,
}

impl LinkRuntime {
    pub fn new(info: LinkInfo) -> Self {
        LinkRuntime {
            info,
            up: true,
            ab: DirState::default(),
            ba: DirState::default(),
            taps_ab: Vec::new(),
            taps_ba: Vec::new(),
            stats_ab: LinkDirStats::default(),
            stats_ba: LinkDirStats::default(),
        }
    }

    pub fn dir_state(&mut self, dir: Dir) -> &mut DirState {
        match dir {
            Dir::AtoB => &mut self.ab,
            Dir::BtoA => &mut self.ba,
        }
    }

    pub fn stats(&self, dir: Dir) -> &LinkDirStats {
        match dir {
            Dir::AtoB => &self.stats_ab,
            Dir::BtoA => &self.stats_ba,
        }
    }

    pub fn stats_mut(&mut self, dir: Dir) -> &mut LinkDirStats {
        match dir {
            Dir::AtoB => &mut self.stats_ab,
            Dir::BtoA => &mut self.stats_ba,
        }
    }

    pub fn taps_mut(&mut self, dir: Dir) -> &mut Vec<Box<dyn LinkTap>> {
        match dir {
            Dir::AtoB => &mut self.taps_ab,
            Dir::BtoA => &mut self.taps_ba,
        }
    }

    /// The node a packet travelling `dir` arrives at.
    pub fn dst_node(&self, dir: Dir) -> NodeId {
        match dir {
            Dir::AtoB => self.info.b,
            Dir::BtoA => self.info.a,
        }
    }

    /// The node a packet travelling `dir` departs from.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn src_node(&self, dir: Dir) -> NodeId {
        match dir {
            Dir::AtoB => self.info.a,
            Dir::BtoA => self.info.b,
        }
    }

    /// Direction for a packet leaving `from` over this link.
    pub fn dir_from(&self, from: NodeId) -> Dir {
        if from == self.info.a {
            Dir::AtoB
        } else {
            debug_assert_eq!(from, self.info.b, "node not on link");
            Dir::BtoA
        }
    }

    /// Apply fault injection. Returns `false` if the packet is to be
    /// dropped; may compute extra jitter delay into `extra`.
    pub fn apply_fault(&mut self, dir: Dir, rng: &mut Rng, extra: &mut SimDuration) -> bool {
        if !self.up {
            self.stats_mut(dir).dropped_fault += 1;
            return false;
        }
        let fault = self.dir_state(dir).fault;
        if fault.drop_prob > 0.0 && rng.chance(fault.drop_prob) {
            self.stats_mut(dir).dropped_fault += 1;
            return false;
        }
        if let Some(max) = fault.jitter_max {
            if max > SimDuration::ZERO {
                *extra = SimDuration::from_nanos(rng.range_u64(0, max.as_nanos() + 1));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, FlowKey, Packet};
    use crate::time::Bandwidth;
    use crate::topology::LinkId;

    fn info() -> LinkInfo {
        LinkInfo {
            a: NodeId(0),
            b: NodeId(1),
            bandwidth: Bandwidth::mbps(10),
            delay: SimDuration::from_millis(1),
            queue_cap: 4,
        }
    }

    fn pkt() -> Packet {
        Packet::udp(
            FlowKey::udp(Addr::new(1, 0, 0, 1), 1, Addr::new(1, 0, 0, 2), 2),
            100,
        )
    }

    #[test]
    fn dir_geometry() {
        let l = LinkRuntime::new(info());
        assert_eq!(l.dst_node(Dir::AtoB), NodeId(1));
        assert_eq!(l.src_node(Dir::AtoB), NodeId(0));
        assert_eq!(l.dir_from(NodeId(1)), Dir::BtoA);
        assert_eq!(Dir::AtoB.flipped(), Dir::BtoA);
    }

    #[test]
    fn down_link_drops() {
        let mut l = LinkRuntime::new(info());
        l.up = false;
        let mut rng = Rng::new(1);
        let mut extra = SimDuration::ZERO;
        assert!(!l.apply_fault(Dir::AtoB, &mut rng, &mut extra));
        assert_eq!(l.stats(Dir::AtoB).dropped_fault, 1);
    }

    #[test]
    fn fault_drop_probability() {
        let mut l = LinkRuntime::new(info());
        l.dir_state(Dir::AtoB).fault.drop_prob = 0.5;
        let mut rng = Rng::new(2);
        let mut kept = 0;
        for _ in 0..10_000 {
            let mut extra = SimDuration::ZERO;
            if l.apply_fault(Dir::AtoB, &mut rng, &mut extra) {
                kept += 1;
            }
        }
        assert!((kept as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn jitter_bounded() {
        let mut l = LinkRuntime::new(info());
        l.dir_state(Dir::AtoB).fault.jitter_max = Some(SimDuration::from_millis(5));
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let mut extra = SimDuration::ZERO;
            assert!(l.apply_fault(Dir::AtoB, &mut rng, &mut extra));
            assert!(extra <= SimDuration::from_millis(5));
        }
    }

    /// A tap that drops every packet whose payload exceeds a threshold.
    struct SizeFilter(u32);
    impl LinkTap for SizeFilter {
        fn intercept(
            &mut self,
            _now: SimTime,
            _dir: Dir,
            pkt: &mut Packet,
            _inject: &mut Vec<Packet>,
        ) -> TapAction {
            if pkt.payload > self.0 {
                TapAction::Drop
            } else {
                TapAction::Forward
            }
        }
    }

    #[test]
    fn tap_trait_object_works() {
        let mut tap: Box<dyn LinkTap> = Box::new(SizeFilter(50));
        let mut inject = Vec::new();
        let mut big = pkt();
        big.payload = 100;
        assert_eq!(
            tap.intercept(SimTime::ZERO, Dir::AtoB, &mut big, &mut inject),
            TapAction::Drop
        );
        let mut small = pkt();
        small.payload = 10;
        assert_eq!(
            tap.intercept(SimTime::ZERO, Dir::AtoB, &mut small, &mut inject),
            TapAction::Forward
        );
        let _ = LinkId(0); // silence unused import in some cfg combinations
    }
}
