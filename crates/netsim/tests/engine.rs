//! End-to-end tests of the simulation engine: delivery timing, queueing,
//! routing, TTL handling, taps, fault injection, timers, determinism.

use dui_netsim::prelude::*;
use std::any::Any;

fn line() -> (Topology, NodeId, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let r = b.router("r");
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(h1, r, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
    b.link(r, h2, Bandwidth::mbps(100), SimDuration::from_millis(1), 64);
    (b.build(), h1, r, h2)
}

fn basic_sim() -> (Simulator, NodeId, NodeId, NodeId) {
    let (topo, h1, r, h2) = line();
    let mut sim = Simulator::new(topo, 1);
    sim.set_logic(r, Box::new(RouterLogic::new()));
    sim.set_logic(h2, Box::new(SinkHost::new()));
    (sim, h1, r, h2)
}

fn udp_key() -> FlowKey {
    FlowKey::udp(Addr::new(10, 0, 0, 1), 5000, Addr::new(10, 0, 0, 2), 80)
}

#[test]
fn packet_crosses_two_links_with_correct_latency() {
    let (mut sim, h1, _r, h2) = basic_sim();
    // 1028-byte UDP packet: ser = 1028*8/100e6 = 82.24us per link, prop = 1ms per link.
    sim.inject(h1, Packet::udp(udp_key(), 1000));
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 1);
    assert_eq!(sink.total_bytes, 1000);
    // Link stats reflect one delivery per hop.
    let s0 = sim.link_stats(LinkId(0), Dir::AtoB);
    assert_eq!(s0.delivered, 1);
    assert_eq!(s0.bytes_delivered, 1028);
}

#[test]
fn queue_drops_when_overloaded() {
    // Tiny queue + slow link: flood it and check DropTail.
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(h1, h2, Bandwidth::kbps(8), SimDuration::from_millis(1), 2);
    let mut sim = Simulator::new(b.build(), 1);
    sim.set_logic(h2, Box::new(SinkHost::new()));
    for _ in 0..10 {
        sim.inject(h1, Packet::udp(udp_key(), 100));
    }
    sim.run_until(SimTime::from_secs(10));
    let stats = sim.link_stats(LinkId(0), Dir::AtoB);
    // 1 in flight + 2 queued accepted; 7 dropped.
    assert_eq!(stats.dropped_queue, 7);
    assert_eq!(stats.delivered, 3);
    assert_eq!(sim.counters().dropped_queue, 7);
}

#[test]
fn serialization_is_pipelined_not_parallel() {
    // Two packets injected at t=0 on one link must be serialized one after
    // the other: second arrives one serialization-delay later.
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(h1, h2, Bandwidth::mbps(1), SimDuration::ZERO, 16);
    let mut sim = Simulator::new(b.build(), 1);
    sim.set_logic(h2, Box::new(SinkHost::new()));
    sim.enable_trace(100);
    sim.inject(h1, Packet::udp(udp_key(), 972)); // 1000 B on wire = 8 ms at 1 Mbps
    sim.inject(h1, Packet::udp(udp_key(), 972));
    sim.run_until(SimTime::from_secs(1));
    let delivers: Vec<_> = sim
        .trace_events()
        .iter()
        .filter(|e| matches!(e.kind, dui_netsim::trace::TraceKind::Deliver))
        .map(|e| e.time)
        .collect();
    assert_eq!(delivers.len(), 2);
    let gap = delivers[1].since(delivers[0]);
    assert_eq!(gap, SimDuration::from_millis(8));
}

#[test]
fn ttl_expiry_generates_time_exceeded() {
    let (mut sim, h1, _r, _h2) = basic_sim();
    // Probe with TTL 1 expires at the router; h1 (sink logic absent -> use
    // SinkHost to catch reply) — install a sink on h1 to receive the ICMP.
    sim.set_logic(h1, Box::new(SinkHost::new()));
    let probe = Packet::probe(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2), 7, 1, 1);
    sim.inject(h1, probe);
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.counters().dropped_ttl, 1);
    let h1_sink: &mut SinkHost = sim.logic_mut(h1);
    // The ICMP reply is consumed by the sink host (not an echo request).
    assert_eq!(h1_sink.total_packets, 1);
}

#[test]
fn hosts_answer_ping() {
    let (mut sim, h1, _r, _h2) = basic_sim();
    sim.set_logic(h1, Box::new(SinkHost::new()));
    let probe = Packet::probe(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2), 9, 1, 64);
    sim.inject(h1, probe);
    sim.run_until(SimTime::from_secs(1));
    let h1_sink: &mut SinkHost = sim.logic_mut(h1);
    assert_eq!(h1_sink.total_packets, 1, "echo reply should come back");
}

#[test]
fn failed_link_blackholes_traffic() {
    let (mut sim, h1, _r, h2) = basic_sim();
    sim.set_link_up(LinkId(1), false);
    sim.inject(h1, Packet::udp(udp_key(), 100));
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 0);
    assert_eq!(sim.counters().dropped_fault, 1);
    // Restore and verify recovery.
    sim.set_link_up(LinkId(1), true);
    sim.inject(h1, Packet::udp(udp_key(), 100));
    sim.run_until(SimTime::from_secs(2));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 1);
}

#[test]
fn fault_injection_drops_statistically() {
    let (topo, h1, r, h2) = line();
    let mut sim = Simulator::new(topo, 7);
    sim.set_logic(r, Box::new(RouterLogic::new()));
    sim.set_logic(h2, Box::new(SinkHost::new()));
    sim.set_fault(
        LinkId(0),
        Dir::AtoB,
        FaultConfig {
            drop_prob: 0.5,
            jitter_max: None,
        },
    );
    for i in 0..1000u64 {
        sim.run_until(SimTime::ZERO + SimDuration::from_micros(i * 100));
        sim.inject(h1, Packet::udp(udp_key(), 10));
    }
    sim.run_until(SimTime::from_secs(60));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    let got = sink.total_packets as f64;
    assert!((got - 500.0).abs() < 80.0, "got {got}");
}

/// Tap that drops every other packet and counts what it saw.
struct AlternatingDropper {
    seen: u64,
}
impl LinkTap for AlternatingDropper {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        _pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        self.seen += 1;
        if self.seen.is_multiple_of(2) {
            TapAction::Drop
        } else {
            TapAction::Forward
        }
    }
}

#[test]
fn mitm_tap_can_drop() {
    let (mut sim, h1, _r, h2) = basic_sim();
    sim.install_tap(
        LinkId(1),
        Dir::AtoB,
        Box::new(AlternatingDropper { seen: 0 }),
    );
    for _ in 0..10 {
        sim.inject(h1, Packet::udp(udp_key(), 10));
    }
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 5);
    assert_eq!(sim.counters().dropped_tap, 5);
}

/// Tap that delays every packet by a fixed amount.
struct Delayer(SimDuration);
impl LinkTap for Delayer {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        _pkt: &mut Packet,
        _inject: &mut Vec<Packet>,
    ) -> TapAction {
        TapAction::Delay(self.0)
    }
}

#[test]
fn mitm_tap_can_delay() {
    let (mut sim, h1, _r, h2) = basic_sim();
    sim.enable_trace(100);
    sim.install_tap(
        LinkId(1),
        Dir::AtoB,
        Box::new(Delayer(SimDuration::from_millis(100))),
    );
    sim.inject(h1, Packet::udp(udp_key(), 100));
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 1);
    // Arrival must be >= 100ms (the tap delay) + 2ms propagation.
    let last = sim.trace_events().last().unwrap().time;
    assert!(last >= SimTime::from_secs_f64(0.102));
}

/// Tap that injects a copy of each packet (a rudimentary duplicator).
struct Duplicator;
impl LinkTap for Duplicator {
    fn intercept(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        pkt: &mut Packet,
        inject: &mut Vec<Packet>,
    ) -> TapAction {
        let mut copy = pkt.clone();
        copy.id = 0; // fresh id on injection
        inject.push(copy);
        TapAction::Forward
    }
}

#[test]
fn mitm_tap_can_inject() {
    let (mut sim, h1, _r, h2) = basic_sim();
    sim.install_tap(LinkId(1), Dir::AtoB, Box::new(Duplicator));
    for _ in 0..3 {
        sim.inject(h1, Packet::udp(udp_key(), 10));
    }
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 6);
}

/// Node that pings on a timer to exercise on_start/on_timer.
struct Pinger {
    dst: Addr,
    sent: u32,
    got_replies: u32,
}
impl NodeLogic for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
        if matches!(pkt.header, Header::IcmpEchoReply { .. }) {
            self.got_replies += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if self.sent < 4 {
            self.sent += 1;
            let p = Packet::probe(ctx.addr(), self.dst, 1, self.sent as u16, 64);
            ctx.send(p);
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn timers_drive_periodic_behavior() {
    let (mut sim, h1, _r, _h2) = basic_sim();
    sim.set_logic(
        h1,
        Box::new(Pinger {
            dst: Addr::new(10, 0, 0, 2),
            sent: 0,
            got_replies: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let p: &mut Pinger = sim.logic_mut(h1);
    assert_eq!(p.sent, 4);
    assert_eq!(p.got_replies, 4);
}

#[test]
fn identical_seeds_are_bit_identical() {
    let run = |seed: u64| {
        let (topo, h1, r, h2) = line();
        let mut sim = Simulator::new(topo, seed);
        sim.set_logic(r, Box::new(RouterLogic::new()));
        sim.set_logic(h2, Box::new(SinkHost::new()));
        sim.set_fault(
            LinkId(0),
            Dir::AtoB,
            FaultConfig {
                drop_prob: 0.3,
                jitter_max: Some(SimDuration::from_millis(5)),
            },
        );
        for i in 0..200 {
            let mut k = udp_key();
            k.sport = 1000 + i;
            sim.inject(h1, Packet::udp(k, 100));
        }
        sim.run_until(SimTime::from_secs(5));
        let sink: &mut SinkHost = sim.logic_mut(h2);
        (sink.total_packets, sim.counters())
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99).0, run(100).0, "different seeds should diverge");
}

#[test]
fn unroutable_packet_is_counted() {
    let (mut sim, h1, _r, _h2) = basic_sim();
    let key = FlowKey::udp(Addr::new(10, 0, 0, 1), 1, Addr::new(99, 9, 9, 9), 2);
    sim.inject(h1, Packet::udp(key, 10));
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.counters().dropped_no_route, 1);
}

#[test]
fn prefix_announcement_routes_whole_prefix() {
    let (topo, h1, r, h2) = line();
    let mut sim = Simulator::new(topo, 1);
    sim.set_logic(r, Box::new(RouterLogic::new()));
    sim.set_logic(h2, Box::new(SinkHost::new()));
    sim.announce_prefix(Prefix::new(Addr::new(20, 0, 0, 0), 8), h2);
    let key = FlowKey::udp(Addr::new(10, 0, 0, 1), 1, Addr::new(20, 5, 6, 7), 2);
    sim.inject(h1, Packet::udp(key, 10));
    sim.run_until(SimTime::from_secs(1));
    let sink: &mut SinkHost = sim.logic_mut(h2);
    assert_eq!(sink.total_packets, 1);
}

#[test]
fn run_to_quiescence_drains() {
    let (mut sim, h1, _r, _h2) = basic_sim();
    sim.inject(h1, Packet::udp(udp_key(), 10));
    let n = sim.run_to_quiescence(10_000);
    assert!(n >= 4, "at least tx/deliver per hop, got {n}");
}

#[test]
fn step_limited_is_equivalent_to_run_until() {
    let build = || {
        let (topo, h1, r, h2) = line();
        let mut sim = Simulator::new(topo, 5);
        sim.set_logic(r, Box::new(RouterLogic::new()));
        sim.set_logic(h2, Box::new(SinkHost::new()));
        for i in 0..50 {
            let mut k = udp_key();
            k.sport = 2000 + i;
            sim.inject(h1, Packet::udp(k, 200));
        }
        sim
    };
    let mut a = build();
    a.run_until(SimTime::from_secs(1));
    let mut b = build();
    let mut steps = 0u64;
    while b.step_limited(SimTime::from_secs(1)).is_some() {
        steps += 1;
    }
    assert!(steps > 100, "expected many events, got {steps}");
    assert_eq!(a.now(), b.now());
    assert_eq!(a.state_hash(), b.state_hash());
}

#[test]
fn checkpoint_restore_is_a_state_hash_fixed_point() {
    let build = || {
        let (topo, h1, r, h2) = line();
        let mut sim = Simulator::new(topo, 11);
        sim.set_logic(r, Box::new(RouterLogic::new()));
        sim.set_logic(h2, Box::new(SinkHost::new()));
        sim.set_fault(
            LinkId(0),
            Dir::AtoB,
            FaultConfig {
                drop_prob: 0.2,
                jitter_max: Some(SimDuration::from_millis(2)),
            },
        );
        (sim, h1, h2)
    };
    let (mut orig, h1, h2) = build();
    for i in 0..100 {
        let mut k = udp_key();
        k.sport = 3000 + i;
        orig.inject(h1, Packet::udp(k, 150));
    }
    // Stop mid-flight so the checkpoint carries pending events and queued packets.
    orig.run_until(SimTime::from_secs_f64(0.001));
    let ckpt = orig.checkpoint().expect("checkpointable");
    assert_eq!(ckpt.state_hash, orig.state_hash());

    // Restore into a freshly built scenario and verify the hash fixed point.
    let (mut resumed, _h1, _h2) = build();
    let expected_hash = ckpt.state_hash;
    resumed.restore(ckpt).expect("restorable");
    assert_eq!(resumed.state_hash(), expected_hash);

    // Both must now evolve identically to quiescence.
    orig.run_until(SimTime::from_secs(5));
    resumed.run_until(SimTime::from_secs(5));
    assert_eq!(orig.state_hash(), resumed.state_hash());
    let a: &mut SinkHost = orig.logic_mut(h2);
    let a = (a.total_packets, a.total_bytes);
    let b: &mut SinkHost = resumed.logic_mut(h2);
    assert_eq!(a, (b.total_packets, b.total_bytes));
}

#[test]
fn checkpoint_refuses_taps() {
    let (mut sim, _h1, _r, _h2) = basic_sim();
    sim.install_tap(LinkId(0), Dir::AtoB, Box::new(Duplicator));
    assert!(sim.checkpoint().is_err());
}
