//! Sequential-vs-parallel equivalence: the parallel engine must produce
//! byte-identical observable state — state hashes, counters, logical
//! metrics — for any `--sim-threads N`, on randomized topologies and
//! traffic, with operator actions (link flaps) interleaved between runs.

use dui_netsim::parallel::ParallelOutcome;
use dui_netsim::prelude::*;
use dui_stats::digest::StateDigest;
use std::any::Any;

/// Milliseconds → SimTime (nanosecond ticks).
fn at_ms(ms: u64) -> SimTime {
    SimTime(ms * 1_000_000)
}

/// Deterministic test-local PRNG (splitmix-ish LCG). The engine's own
/// RNG is off-limits under the parallel engine, so the traffic
/// generator carries one of these instead.
#[derive(Debug, Clone, Copy)]
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Timer-driven traffic generator: sends pseudo-random UDP bursts to
/// peer hosts off its own PRNG. Deliberately never touches `ctx.rng()`
/// and never reads `pkt.id` — the two things node logic must not do
/// under the parallel engine.
struct PulseHost {
    addr: Addr,
    peers: Vec<Addr>,
    rng: TestRng,
    bursts_left: u32,
    sent: u64,
    got_packets: u64,
    got_bytes: u64,
}

impl PulseHost {
    fn new(addr: Addr, peers: Vec<Addr>, seed: u64, bursts: u32) -> Self {
        PulseHost {
            addr,
            peers,
            rng: TestRng(seed | 1),
            bursts_left: bursts,
            sent: 0,
            got_packets: 0,
            got_bytes: 0,
        }
    }
}

impl NodeLogic for PulseHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(SimDuration::from_millis(1 + self.rng.pick(5)), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if self.bursts_left == 0 {
            return;
        }
        self.bursts_left -= 1;
        let n = 1 + self.rng.pick(3);
        for _ in 0..n {
            let dst = self.peers[self.rng.pick(self.peers.len() as u64) as usize];
            let sport = 4000 + self.rng.pick(16) as u16;
            let size = 100 + self.rng.pick(1200) as u32;
            ctx.send(Packet::udp(FlowKey::udp(self.addr, sport, dst, 9000), size));
            self.sent += 1;
        }
        ctx.set_timer(SimDuration::from_millis(1 + self.rng.pick(7)), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
        self.got_packets += 1;
        self.got_bytes += pkt.payload as u64;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_u64(self.rng.0);
        d.write_u64(self.bursts_left as u64);
        d.write_u64(self.sent);
        d.write_u64(self.got_packets);
        d.write_u64(self.got_bytes);
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(40);
        for v in [
            self.rng.0,
            self.bursts_left as u64,
            self.sent,
            self.got_packets,
            self.got_bytes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() != 40 {
            return Err("malformed pulse checkpoint".into());
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        self.rng = TestRng(word(0));
        self.bursts_left = word(1) as u32;
        self.sent = word(2);
        self.got_packets = word(3);
        self.got_bytes = word(4);
        Ok(())
    }
}

/// A pseudo-random multi-domain topology: 2–4 clusters (each a router
/// plus 1–3 hosts on sub-microsecond LAN links, so the cluster
/// contracts into one domain) joined by millisecond WAN links with
/// small queues (so cross-domain drops happen).
fn random_clustered(seed: u64) -> (Topology, Vec<NodeId>, Vec<NodeId>, Vec<Addr>) {
    let mut rng = TestRng(seed.wrapping_mul(0x9e37_79b9).wrapping_add(seed) | 1);
    let clusters = 2 + rng.pick(3) as usize;
    let mut b = TopologyBuilder::new();
    let mut routers = Vec::new();
    let mut hosts = Vec::new();
    let mut addrs = Vec::new();
    for c in 0..clusters {
        let r = b.router(&format!("r{c}"));
        for h in 0..1 + rng.pick(3) as usize {
            let addr = Addr::new(10, c as u8, h as u8, 1);
            let node = b.host(&format!("h{c}-{h}"), addr);
            b.link(
                node,
                r,
                Bandwidth::gbps(1),
                SimDuration::from_nanos(200 + rng.pick(600)),
                64,
            );
            hosts.push(node);
            addrs.push(addr);
        }
        if let Some(&prev) = routers.last() {
            b.link(
                prev,
                r,
                Bandwidth::mbps(10 + rng.pick(90)),
                SimDuration::from_millis(2 + rng.pick(7)),
                (4 + rng.pick(28)) as usize,
            );
        }
        routers.push(r);
    }
    if clusters > 2 && rng.pick(2) == 1 {
        // Close the ring so routing has real choices to make.
        b.link(
            routers[clusters - 1],
            routers[0],
            Bandwidth::mbps(10 + rng.pick(90)),
            SimDuration::from_millis(2 + rng.pick(7)),
            (4 + rng.pick(28)) as usize,
        );
    }
    (b.build(), routers, hosts, addrs)
}

/// Build a fully wired simulator over `topo`: routers route, every host
/// pulses traffic at every other host.
fn wire(topo: Topology, routers: &[NodeId], hosts: &[NodeId], addrs: &[Addr], seed: u64) -> Simulator {
    let mut sim = Simulator::new(topo, seed);
    for &r in routers {
        sim.set_logic(r, Box::new(RouterLogic::new()));
    }
    for (i, &h) in hosts.iter().enumerate() {
        let peers: Vec<Addr> = addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &a)| a)
            .collect();
        sim.set_logic(
            h,
            Box::new(PulseHost::new(addrs[i], peers, seed ^ (i as u64) << 8, 40)),
        );
    }
    sim
}

/// Metrics snapshot with the structural engine metrics stripped: these
/// measure the machine (arena/wheel internals), which legitimately
/// differs between the sequential engine and the domain decomposition.
/// Everything else must match exactly.
fn logical_metrics(sim: &Simulator) -> String {
    let mut snap = sim.metrics_snapshot();
    let structural = |k: &str| k.starts_with("netsim.arena.") || k.starts_with("netsim.wheel.");
    snap.counters.retain(|k, _| !structural(k));
    snap.gauges.retain(|k, _| !structural(k));
    snap.hists.retain(|k, _| !structural(k));
    snap.to_json_line("logical")
}

/// Drive `sim` through the shared schedule of runs and interleaved
/// link flaps, collecting the state hash at every milestone.
fn drive(sim: &mut Simulator, flap: LinkId) -> (Vec<u64>, Option<ParallelOutcome>) {
    let mut hashes = Vec::new();
    let mut first = None;
    for (i, ms) in [50u64, 120, 200, 320].into_iter().enumerate() {
        sim.run_until(at_ms(ms));
        if first.is_none() {
            first = sim.last_parallel_outcome().copied();
        }
        hashes.push(sim.state_hash());
        if i == 1 {
            sim.set_link_up(flap, false);
        }
        if i == 2 {
            sim.set_link_up(flap, true);
        }
    }
    (hashes, first)
}

/// The WAN link joining the first two clusters (always present —
/// topologies have ≥ 2 clusters). Links are created hosts-first per
/// cluster, so the first inter-router link is the first one whose
/// endpoints are both routers.
fn first_wan_link(sim: &Simulator, routers: &[NodeId]) -> LinkId {
    for (i, l) in sim.core().topo().links().iter().enumerate() {
        if routers.contains(&l.a) && routers.contains(&l.b) {
            return LinkId(i);
        }
    }
    unreachable!("clustered topologies always have a WAN link");
}

fn assert_parallel_ran(outcome: Option<ParallelOutcome>) {
    match outcome {
        Some(ParallelOutcome::Ran(report)) => {
            assert!(report.windows > 0, "parallel run executed no windows");
            assert!(report.domains >= 2);
        }
        other => panic!("expected a parallel run, got {other:?}"),
    }
}

#[test]
fn parallel_matches_sequential_across_thread_counts() {
    for seed in [1u64, 2, 3] {
        let (topo, routers, hosts, addrs) = random_clustered(seed);
        let mut reference = wire(topo.clone(), &routers, &hosts, &addrs, seed);
        let flap = first_wan_link(&reference, &routers);
        let (want, _) = drive(&mut reference, flap);
        let want_metrics = logical_metrics(&reference);
        for threads in [1usize, 2, 4, 8] {
            let mut sim = wire(topo.clone(), &routers, &hosts, &addrs, seed);
            sim.set_sim_threads(threads);
            let (got, outcome) = drive(&mut sim, flap);
            assert_eq!(
                got, want,
                "state hash diverged (seed {seed}, {threads} threads)"
            );
            assert_parallel_ran(outcome);
            assert_eq!(sim.counters(), reference.counters(), "seed {seed}");
            assert_eq!(
                logical_metrics(&sim),
                want_metrics,
                "logical metrics diverged (seed {seed}, {threads} threads)"
            );
        }
    }
}

#[test]
fn thread_counts_agree_byte_for_byte_including_structural_metrics() {
    // Across N ≥ 1 the *full* metrics snapshot must be byte-identical:
    // the decomposition is fixed by the topology, N only changes how
    // many workers execute it.
    let (topo, routers, hosts, addrs) = random_clustered(7);
    let flap;
    let (base_line, base_hash) = {
        let mut sim = wire(topo.clone(), &routers, &hosts, &addrs, 7);
        flap = first_wan_link(&sim, &routers);
        sim.set_sim_threads(1);
        drive(&mut sim, flap);
        (sim.metrics_snapshot().to_json_line("all"), sim.state_hash())
    };
    for threads in [2usize, 4, 8] {
        let mut sim = wire(topo.clone(), &routers, &hosts, &addrs, 7);
        sim.set_sim_threads(threads);
        drive(&mut sim, flap);
        assert_eq!(sim.state_hash(), base_hash, "{threads} threads");
        assert_eq!(
            sim.metrics_snapshot().to_json_line("all"),
            base_line,
            "{threads} threads"
        );
    }
}

#[test]
fn stale_cross_domain_handles_from_in_window_drops() {
    // Regression: a packet gets its id assigned in-window, then is
    // dropped (tiny WAN queue) before the barrier — the barrier's id
    // patch must tolerate the stale handle and still advance the id
    // cursor exactly like the sequential allocator.
    let mut b = TopologyBuilder::new();
    let a1 = b.host("a1", Addr::new(10, 0, 0, 1));
    let a2 = b.host("a2", Addr::new(10, 0, 1, 1));
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let z1 = b.host("z1", Addr::new(10, 1, 0, 1));
    b.link(a1, r1, Bandwidth::gbps(1), SimDuration::from_nanos(300), 64);
    b.link(a2, r1, Bandwidth::gbps(1), SimDuration::from_nanos(300), 64);
    b.link(z1, r2, Bandwidth::gbps(1), SimDuration::from_nanos(300), 64);
    // Starved WAN link: queue of 1 at low bandwidth → constant drops.
    b.link(r1, r2, Bandwidth::kbps(64), SimDuration::from_millis(3), 1);
    let topo = b.build();
    let routers = [r1, r2];
    let hosts = [a1, a2, z1];
    let addrs = [Addr::new(10, 0, 0, 1), Addr::new(10, 0, 1, 1), Addr::new(10, 1, 0, 1)];

    let mut reference = wire(topo.clone(), &routers, &hosts, &addrs, 11);
    reference.run_until(at_ms(400));
    assert!(
        reference.counters().dropped_queue > 0,
        "scenario must actually drop packets"
    );

    let mut par = wire(topo, &routers, &hosts, &addrs, 11);
    par.set_sim_threads(4);
    par.run_until(at_ms(400));
    assert_parallel_ran(par.last_parallel_outcome().copied());
    assert_eq!(par.state_hash(), reference.state_hash());
    assert_eq!(par.counters(), reference.counters());
}

#[test]
fn checkpoint_after_parallel_run_is_interchangeable() {
    let (topo, routers, hosts, addrs) = random_clustered(5);
    let mut seq = wire(topo.clone(), &routers, &hosts, &addrs, 5);
    let mut par = wire(topo.clone(), &routers, &hosts, &addrs, 5);
    par.set_sim_threads(4);
    seq.run_until(at_ms(150));
    par.run_until(at_ms(150));
    assert_parallel_ran(par.last_parallel_outcome().copied());
    assert_eq!(par.state_hash(), seq.state_hash());

    // A checkpoint taken after a parallel run restores into the
    // sequential twin (and vice versa) and both continue identically.
    let ckpt = par.checkpoint().expect("post-parallel checkpoint");
    seq.restore(ckpt).expect("restore parallel checkpoint");
    seq.run_until(at_ms(300));
    par.run_until(at_ms(300));
    assert_eq!(par.state_hash(), seq.state_hash());
}

#[test]
fn fallback_reasons_are_reported_and_results_still_match() {
    use dui_netsim::parallel::FallbackReason;

    // Single-domain topology: all links below the lookahead floor.
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(h1, h2, Bandwidth::gbps(1), SimDuration::from_nanos(100), 16);
    let mut sim = Simulator::new(b.build(), 1);
    sim.set_logic(h2, Box::new(SinkHost::new()));
    sim.set_sim_threads(4);
    sim.inject(h1, Packet::udp(FlowKey::udp(Addr::new(10, 0, 0, 1), 1, Addr::new(10, 0, 0, 2), 2), 100));
    sim.run_until(at_ms(10));
    assert_eq!(
        sim.last_parallel_outcome(),
        Some(&ParallelOutcome::Fallback(FallbackReason::SingleDomain))
    );
    assert_eq!(sim.counters().delivered, 1);

    // Probabilistic faults on a multi-domain topology.
    let (topo, routers, hosts, addrs) = random_clustered(2);
    let mut sim = wire(topo, &routers, &hosts, &addrs, 2);
    let wan = first_wan_link(&sim, &routers);
    sim.set_fault(
        wan,
        Dir::AtoB,
        FaultConfig {
            drop_prob: 0.5,
            ..FaultConfig::default()
        },
    );
    sim.set_sim_threads(4);
    sim.run_until(at_ms(50));
    assert_eq!(
        sim.last_parallel_outcome(),
        Some(&ParallelOutcome::Fallback(FallbackReason::ActiveFaults))
    );

    // Tracing on a multi-domain topology.
    let (topo, routers, hosts, addrs) = random_clustered(3);
    let mut sim = wire(topo, &routers, &hosts, &addrs, 3);
    sim.enable_trace(1024);
    sim.set_sim_threads(2);
    sim.run_until(at_ms(50));
    assert_eq!(
        sim.last_parallel_outcome(),
        Some(&ParallelOutcome::Fallback(FallbackReason::TraceEnabled))
    );
}
