//! Property-based tests of the simulator substrate: prefixes, flow keys,
//! event ordering, and routing invariants (via the in-tree `propcheck`
//! engine).

use dui_netsim::event::{Event, EventQueue};
use dui_netsim::packet::{Addr, FlowKey, Prefix};
use dui_netsim::time::{Bandwidth, SimDuration, SimTime};
use dui_netsim::topology::{NodeId, Routing, TopologyBuilder};
use dui_stats::{prop_assert, prop_assert_eq, prop_check};

prop_check! {
    fn prefix_contains_its_network_address(g) {
        let addr = g.any_u32();
        let len = g.u8(0..33);
        let p = Prefix::new(Addr(addr), len);
        prop_assert!(p.contains(p.addr));
    }

    fn prefix_longer_is_subset(g) {
        let addr = g.any_u32();
        let len = g.u8(0..32);
        let probe = g.any_u32();
        let longer = Prefix::new(Addr(addr), len + 1);
        let shorter = Prefix::new(Addr(addr), len);
        if longer.contains(Addr(probe)) {
            prop_assert!(shorter.contains(Addr(probe)));
        }
    }

    fn flowkey_reverse_involution(g) {
        let (src, dst) = (g.any_u32(), g.any_u32());
        let (sport, dport) = (g.any_u16(), g.any_u16());
        let k = FlowKey::tcp(Addr(src), sport, Addr(dst), dport);
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    fn flowkey_digest_deterministic(g) {
        let (src, dst) = (g.any_u32(), g.any_u32());
        let (sport, dport) = (g.any_u16(), g.any_u16());
        let salt = g.any_u64();
        let k = FlowKey::tcp(Addr(src), sport, Addr(dst), dport);
        prop_assert_eq!(k.digest(salt), k.digest(salt));
    }

    fn event_queue_pops_in_time_order(g) {
        let times = g.vec(1..200, |g| g.u64(0..1_000_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), Event::Timer { node: NodeId(0), token: i as u64 });
        }
        let mut prev = SimTime(0);
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    fn event_queue_fifo_at_equal_times(g) {
        let n = g.usize(1..100);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime(42), Event::Timer { node: NodeId(0), token: i as u64 });
        }
        for i in 0..n {
            match q.pop() {
                Some((_, Event::Timer { token, .. })) => prop_assert_eq!(token, i as u64),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    fn serialization_delay_monotone_in_size(g) {
        let bw = Bandwidth::bps(g.u64(1_000..10_000_000_000));
        let a = g.any_u16();
        let b = g.any_u16();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.serialization_delay(small as u32) <= bw.serialization_delay(large as u32));
    }
}

prop_check! {
    cases = 48;
    fn ring_routing_is_loop_free_and_symmetric_in_length(g) {
        // Build a ring of routers and check every pair routes with a path
        // no longer than ceil(n/2) hops and no repeated nodes.
        let n = g.usize(3..12);
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| b.router(&format!("r{i}"))).collect();
        for i in 0..n {
            b.link(
                nodes[i],
                nodes[(i + 1) % n],
                Bandwidth::mbps(10),
                SimDuration::from_millis(1),
                8,
            );
        }
        let topo = b.build();
        let routing = Routing::shortest_paths(&topo);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let path = routing.path(nodes[i], nodes[j]).expect("ring is connected");
                let distinct: std::collections::HashSet<_> = path.iter().collect();
                prop_assert_eq!(distinct.len(), path.len(), "loop-free");
                prop_assert!(path.len() - 1 <= n / 2 + 1, "near-shortest");
                // Path lengths are symmetric on a uniform ring.
                let back = routing.path(nodes[j], nodes[i]).expect("connected");
                prop_assert_eq!(back.len(), path.len());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer-wheel / baseline-heap equivalence and generational-handle safety.
// ---------------------------------------------------------------------------

prop_check! {
    fn wheel_matches_heap_on_arbitrary_sequences(g) {
        // Drive the hierarchical wheel and the reference binary heap with
        // the same arbitrary interleaving of schedules and pops. Times are
        // drawn from a mix of scales so every wheel level — and the
        // overflow heap — participates.
        use dui_netsim::wheel::{BaselineHeapQueue, TimerWheel};
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut heap: BaselineHeapQueue<u64> = BaselineHeapQueue::new();
        let ops = g.usize(1..300);
        let mut clock = 0u64;
        let mut payload = 0u64;
        for _ in 0..ops {
            if g.bool() || wheel.is_empty() {
                // Schedule at now + a delta spanning sub-tick to far-future.
                let magnitude = g.u8(0..6);
                let delta = match magnitude {
                    0 => g.u64(0..1 << 10),          // same tick
                    1 => g.u64(0..1 << 18),          // level 0
                    2 => g.u64(0..1 << 26),          // level 1
                    3 => g.u64(0..1 << 34),          // level 2
                    4 => g.u64(0..1 << 42),          // level 3
                    _ => g.u64(0..1 << 50),          // overflow
                };
                let t = clock.saturating_add(delta);
                wheel.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
            } else {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b, "pop order diverged");
                if let Some((t, _)) = a {
                    clock = clock.max(t);
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain: the full residual order must match exactly.
        while !wheel.is_empty() {
            prop_assert_eq!(wheel.pop(), heap.pop());
        }
        prop_assert!(heap.is_empty());
    }

    fn wheel_fifo_among_equal_times_any_scale(g) {
        use dui_netsim::wheel::TimerWheel;
        // Bursts at the same timestamp must pop in schedule order no
        // matter which level the timestamp lands on.
        let t = g.any_u64() >> g.u8(0..33);
        let n = g.usize(2..64);
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for i in 0..n {
            wheel.schedule(t, i);
        }
        for want in 0..n {
            match wheel.pop() {
                Some((pt, got)) => {
                    prop_assert_eq!(pt, t);
                    prop_assert_eq!(got, want, "FIFO at equal times");
                }
                None => prop_assert!(false, "wheel drained early"),
            }
        }
    }

    fn stale_packet_ref_is_typed_error_never_wrong_packet(g) {
        use dui_netsim::arena::PacketArena;
        use dui_netsim::packet::Packet;
        // Arbitrary insert/take churn; afterwards every retired handle
        // must yield StaleRef (with honest metadata) and every live handle
        // must still read back its own payload.
        let mut arena = PacketArena::new();
        let mut live: Vec<(dui_netsim::arena::PacketRef, u32)> = Vec::new();
        let mut dead: Vec<dui_netsim::arena::PacketRef> = Vec::new();
        let ops = g.usize(1..200);
        let mut stamp = 0u32;
        for _ in 0..ops {
            if g.bool() || live.is_empty() {
                let key = FlowKey::udp(Addr(g.any_u32()), g.any_u16(), Addr(g.any_u32()), g.any_u16());
                let mut p = Packet::udp(key, 64);
                p.payload = stamp;
                live.push((arena.insert(p), stamp));
                stamp += 1;
            } else {
                let i = g.usize(0..live.len());
                let (r, tag) = live.swap_remove(i);
                let p = arena.take(r).expect("live handle must take");
                prop_assert_eq!(p.payload, tag, "take returned the wrong packet");
                dead.push(r);
            }
        }
        for (r, tag) in &live {
            prop_assert_eq!(arena.get(*r).expect("live handle must read").payload, *tag);
        }
        for r in &dead {
            match arena.get(*r) {
                Ok(p) => prop_assert!(false, "stale handle read a packet: payload={}", p.payload),
                Err(e) => {
                    prop_assert_eq!(e.idx, r.index());
                    prop_assert_eq!(e.expected_gen, r.generation());
                    prop_assert!(
                        e.vacant || e.current_gen != r.generation(),
                        "stale error must show a vacated or recycled slot"
                    );
                }
            }
        }
        prop_assert_eq!(arena.live(), live.len());
    }
}
