//! Property-based tests of the simulator substrate: prefixes, flow keys,
//! event ordering, and routing invariants (via the in-tree `propcheck`
//! engine).

use dui_netsim::event::{Event, EventQueue};
use dui_netsim::packet::{Addr, FlowKey, Prefix};
use dui_netsim::time::{Bandwidth, SimDuration, SimTime};
use dui_netsim::topology::{NodeId, Routing, TopologyBuilder};
use dui_stats::{prop_assert, prop_assert_eq, prop_check};

prop_check! {
    fn prefix_contains_its_network_address(g) {
        let addr = g.any_u32();
        let len = g.u8(0..33);
        let p = Prefix::new(Addr(addr), len);
        prop_assert!(p.contains(p.addr));
    }

    fn prefix_longer_is_subset(g) {
        let addr = g.any_u32();
        let len = g.u8(0..32);
        let probe = g.any_u32();
        let longer = Prefix::new(Addr(addr), len + 1);
        let shorter = Prefix::new(Addr(addr), len);
        if longer.contains(Addr(probe)) {
            prop_assert!(shorter.contains(Addr(probe)));
        }
    }

    fn flowkey_reverse_involution(g) {
        let (src, dst) = (g.any_u32(), g.any_u32());
        let (sport, dport) = (g.any_u16(), g.any_u16());
        let k = FlowKey::tcp(Addr(src), sport, Addr(dst), dport);
        prop_assert_eq!(k.reversed().reversed(), k);
    }

    fn flowkey_digest_deterministic(g) {
        let (src, dst) = (g.any_u32(), g.any_u32());
        let (sport, dport) = (g.any_u16(), g.any_u16());
        let salt = g.any_u64();
        let k = FlowKey::tcp(Addr(src), sport, Addr(dst), dport);
        prop_assert_eq!(k.digest(salt), k.digest(salt));
    }

    fn event_queue_pops_in_time_order(g) {
        let times = g.vec(1..200, |g| g.u64(0..1_000_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), Event::Timer { node: NodeId(0), token: i as u64 });
        }
        let mut prev = SimTime(0);
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    fn event_queue_fifo_at_equal_times(g) {
        let n = g.usize(1..100);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime(42), Event::Timer { node: NodeId(0), token: i as u64 });
        }
        for i in 0..n {
            match q.pop() {
                Some((_, Event::Timer { token, .. })) => prop_assert_eq!(token, i as u64),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    fn serialization_delay_monotone_in_size(g) {
        let bw = Bandwidth::bps(g.u64(1_000..10_000_000_000));
        let a = g.any_u16();
        let b = g.any_u16();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.serialization_delay(small as u32) <= bw.serialization_delay(large as u32));
    }
}

prop_check! {
    cases = 48;
    fn ring_routing_is_loop_free_and_symmetric_in_length(g) {
        // Build a ring of routers and check every pair routes with a path
        // no longer than ceil(n/2) hops and no repeated nodes.
        let n = g.usize(3..12);
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| b.router(&format!("r{i}"))).collect();
        for i in 0..n {
            b.link(
                nodes[i],
                nodes[(i + 1) % n],
                Bandwidth::mbps(10),
                SimDuration::from_millis(1),
                8,
            );
        }
        let topo = b.build();
        let routing = Routing::shortest_paths(&topo);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let path = routing.path(nodes[i], nodes[j]).expect("ring is connected");
                let distinct: std::collections::HashSet<_> = path.iter().collect();
                prop_assert_eq!(distinct.len(), path.len(), "loop-free");
                prop_assert!(path.len() - 1 <= n / 2 + 1, "near-shortest");
                // Path lengths are symmetric on a uniform ring.
                let back = routing.path(nodes[j], nodes[i]).expect("connected");
                prop_assert_eq!(back.len(), path.len());
            }
        }
    }
}
