//! Deterministic interprocedural taint propagation.
//!
//! A breadth-first fixed point over the call graph, iterated in
//! sorted symbol-id order (ids are path-sorted, so iteration order —
//! and therefore every witness path — is a pure function of the
//! sources). Taint is monotone reachability: adding an edge can only
//! add tainted symbols, never remove one (the propcheck suite pins
//! this down), which is what makes the analysis sound-by-
//! over-approximation in the presence of Unknown edges.
//!
//! Two directions share the engine:
//!
//! * [`reach_callers`] — callee→caller flow: "anything that can reach
//!   a wall-clock read is itself clock-tainted" (the transitive
//!   determinism rules);
//! * [`reach_callees`] — caller→callee flow: "anything reachable from
//!   a parallel-engine entry point runs under the engine's
//!   shared-mutability contract" (`parallel/transitive-shared-mut`).
//!
//! `blocked` symbols are barriers: they neither receive nor forward
//! taint (quarantine boundaries, `#[cfg(test)]` regions, per-item
//! `lint: allow(...)` escapes).

use crate::callgraph::CallGraph;
use std::collections::BTreeMap;

/// How a tainted symbol was reached.
#[derive(Debug, Clone, Copy)]
pub struct Trace {
    /// The neighbor one hop closer to a seed, with the call site that
    /// links them (in the file of whichever endpoint is the caller).
    /// `None` on seeds.
    pub via: Option<(u32, u32, u32)>,
    /// Hop distance from the nearest seed.
    pub depth: u32,
}

/// Propagate taint from `seeds` to transitive callers (callee→caller
/// flow). Returns every tainted symbol with its deterministic
/// minimum-depth, minimum-id witness trace.
pub fn reach_callers(
    g: &CallGraph,
    seeds: &[u32],
    blocked: &dyn Fn(u32) -> bool,
) -> BTreeMap<u32, Trace> {
    reach(g, seeds, blocked, true)
}

/// Forward reachability from `seeds` to transitive callees
/// (caller→callee flow), same determinism guarantees.
pub fn reach_callees(
    g: &CallGraph,
    seeds: &[u32],
    blocked: &dyn Fn(u32) -> bool,
) -> BTreeMap<u32, Trace> {
    reach(g, seeds, blocked, false)
}

fn reach(
    g: &CallGraph,
    seeds: &[u32],
    blocked: &dyn Fn(u32) -> bool,
    reverse: bool,
) -> BTreeMap<u32, Trace> {
    let mut out: BTreeMap<u32, Trace> = BTreeMap::new();
    let mut sorted_seeds: Vec<u32> = seeds.to_vec();
    sorted_seeds.sort_unstable();
    sorted_seeds.dedup();
    let mut frontier: Vec<u32> = Vec::new();
    for &s in &sorted_seeds {
        if blocked(s) {
            continue;
        }
        out.insert(s, Trace { via: None, depth: 0 });
        frontier.push(s);
    }
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        // Level-synchronous expansion: every frontier symbol proposes
        // its neighbors, and each newly tainted symbol keeps the
        // minimum `(neighbor id, line, col)` proposal — a canonical
        // shortest witness independent of discovery order.
        let mut next: BTreeMap<u32, (u32, u32, u32)> = BTreeMap::new();
        for &s in &frontier {
            let edges = if reverse {
                g.callers.get(s as usize)
            } else {
                g.callees.get(s as usize)
            };
            for e in edges.into_iter().flatten() {
                if out.contains_key(&e.other) || blocked(e.other) {
                    continue;
                }
                let cand = (s, e.line, e.col);
                next.entry(e.other)
                    .and_modify(|cur| {
                        if cand < *cur {
                            *cur = cand;
                        }
                    })
                    .or_insert(cand);
            }
        }
        frontier = next.keys().copied().collect();
        for (k, via) in next {
            out.insert(
                k,
                Trace {
                    via: Some(via),
                    depth,
                },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    #[test]
    fn caller_ward_taint_follows_reverse_edges() {
        // 0 -> 1 -> 2 (seed at 2): taint flows 2 -> 1 -> 0.
        let g = CallGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = reach_callers(&g, &[2], &|_| false);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&0).map(|tr| tr.depth), Some(2));
        assert_eq!(t.get(&1).and_then(|tr| tr.via).map(|v| v.0), Some(2));
    }

    #[test]
    fn barriers_stop_propagation() {
        let g = CallGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = reach_callers(&g, &[2], &|s| s == 1);
        assert_eq!(t.keys().copied().collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn witness_prefers_smallest_neighbor() {
        // Both 1 and 2 are seeds calling into... rather: 3 calls both
        // 1 and 2 (seeds); the witness hop from 3 must pick 1.
        let g = CallGraph::from_edges(4, &[(3, 1), (3, 2)]);
        let t = reach_callers(&g, &[1, 2], &|_| false);
        assert_eq!(t.get(&3).and_then(|tr| tr.via).map(|v| v.0), Some(1));
    }

    #[test]
    fn forward_reach_follows_call_direction() {
        let g = CallGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = reach_callees(&g, &[0], &|_| false);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&2).map(|tr| tr.depth), Some(2));
    }

    #[test]
    fn cycles_terminate() {
        let g = CallGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let t = reach_callers(&g, &[0], &|_| false);
        assert_eq!(t.len(), 2);
    }
}
