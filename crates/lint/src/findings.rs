//! Findings, deterministic output, and the grandfathering baseline.
//!
//! Everything the linter emits is a pure function of the scanned
//! sources: findings sort by `(file, line, col, rule)`, the JSON-lines
//! export carries no timestamps or absolute paths, and the baseline is
//! matched structurally (rule + file + normalized line text, as a
//! multiset) so unrelated edits that shift line numbers do not
//! invalidate it.

use std::collections::HashMap;
use std::fmt::Write as _;

/// How bad a finding is. Both severities gate (a new finding of either
/// severity fails the lint); the split exists for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/robustness issue (panic paths, missing deny attribute).
    Warning,
    /// Breaks a reproduction invariant (determinism, hash stability).
    Error,
}

impl Severity {
    /// Lowercase name for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `determinism/wall-clock`.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Repo-relative file path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation of the violation.
    pub message: String,
    /// The trimmed source line (also the baseline matching key).
    pub snippet: String,
    /// Whether the checked-in baseline grandfathers this finding
    /// (assigned by [`apply_baseline`], false until then).
    pub baselined: bool,
}

/// Sort findings into the canonical deterministic order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// One JSON object on one line — the `results/lint.jsonl` record.
    /// Byte-identical across runs by construction (no wall-clock, no
    /// absolute paths, stable key order).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"baselined\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(self.rule),
            self.severity.as_str(),
            json_escape(&self.file),
            self.line,
            self.col,
            self.baselined,
            json_escape(&self.message),
            json_escape(&self.snippet),
        )
    }

    /// The baseline line for this finding: `rule<TAB>file<TAB>snippet`.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.file, self.snippet)
    }
}

/// The parsed grandfathering baseline: a multiset of
/// `rule`/`file`/`snippet` keys.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: HashMap<String, usize>,
}

impl Baseline {
    /// Parse baseline text: one `rule<TAB>file<TAB>snippet` entry per
    /// line; `#` comments and blank lines ignored. Duplicate lines
    /// grandfather multiple identical findings.
    pub fn parse(text: &str) -> Baseline {
        let mut counts = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Number of entries (with multiplicity).
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// True when the baseline grandfathers nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Serialize findings as a fresh baseline file (sorted, with a
    /// header comment). Used by `--write-baseline`.
    pub fn render(findings: &[Finding]) -> String {
        let lines: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
        render_lines(lines)
    }
}

/// The baseline file header.
const BASELINE_HEADER: &str =
    "# dui-lint baseline: grandfathered findings, one `rule<TAB>file<TAB>snippet`\n\
     # entry per line (duplicates allowed, matched as a multiset). Entries are\n\
     # matched structurally, so edits that only move lines do not invalidate\n\
     # them. Regenerate with: cargo run -p dui-lint -- --write-baseline\n";

fn render_lines(mut lines: Vec<String>) -> String {
    lines.sort();
    let mut out = String::from(BASELINE_HEADER);
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Rewrite a baseline for `--write-baseline` without losing entries
/// outside the scanned scope: current `findings` replace every old
/// entry whose file falls under one of `scanned_roots`, old entries
/// outside the scope are kept verbatim — *unless* their file no
/// longer exists at all (per `file_exists`), in which case they are
/// pruned as dead weight. A malformed old entry (no file field) is
/// dropped.
pub fn merge_baseline(
    old_text: &str,
    findings: &[Finding],
    scanned_roots: &[String],
    file_exists: &dyn Fn(&str) -> bool,
) -> String {
    let in_scope = |file: &str| {
        scanned_roots.iter().any(|r| {
            let r = r.trim_end_matches('/');
            file == r || file.starts_with(&format!("{r}/"))
        })
    };
    let mut lines: Vec<String> = Vec::new();
    for line in old_text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(file) = line.split('\t').nth(1) else {
            continue;
        };
        if !in_scope(file) && file_exists(file) {
            lines.push(line.to_string());
        }
    }
    lines.extend(findings.iter().map(Finding::baseline_key));
    render_lines(lines)
}

/// Mark findings covered by the baseline (consuming multiset entries
/// in deterministic finding order) and return
/// `(new_count, stale_entries)` — stale entries are baseline lines
/// that matched nothing, a sign the baseline can be shrunk.
pub fn apply_baseline(findings: &mut [Finding], baseline: &Baseline) -> (usize, Vec<String>) {
    let mut remaining = baseline.counts.clone();
    let mut new_count = 0usize;
    for f in findings.iter_mut() {
        let key = f.baseline_key();
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                f.baselined = true;
            }
            _ => {
                f.baselined = false;
                new_count += 1;
            }
        }
    }
    let mut stale: Vec<String> = remaining
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, _)| k)
        .collect();
    stale.sort();
    (new_count, stale)
}

/// Render the human report (destined for stderr): one aligned row per
/// finding plus a per-rule summary.
pub fn render_human(findings: &[Finding], show_baselined: bool) -> String {
    let mut out = String::new();
    for f in findings {
        if f.baselined && !show_baselined {
            continue;
        }
        let tag = if f.baselined { " [baseline]" } else { "" };
        let _ = writeln!(
            out,
            "{}:{}:{}: {} [{}]{}: {}",
            f.file,
            f.line,
            f.col,
            f.severity.as_str(),
            f.rule,
            tag,
            f.message
        );
        let _ = writeln!(out, "    {}", f.snippet);
    }
    // Per-rule summary, sorted by rule id.
    let mut per_rule: Vec<(&str, usize, usize)> = Vec::new();
    for f in findings {
        match per_rule.iter_mut().find(|(r, _, _)| *r == f.rule) {
            Some((_, total, new)) => {
                *total += 1;
                if !f.baselined {
                    *new += 1;
                }
            }
            None => per_rule.push((f.rule, 1, usize::from(!f.baselined))),
        }
    }
    per_rule.sort();
    if !per_rule.is_empty() {
        let _ = writeln!(out, "\nrule                               total   new");
        for (rule, total, new) in &per_rule {
            let _ = writeln!(out, "{rule:<34} {total:>5} {new:>5}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
            snippet: snippet.to_string(),
            baselined: false,
        }
    }

    #[test]
    fn baseline_is_a_multiset() {
        let mut findings = vec![
            f("r/a", "x.rs", 1, "dup()"),
            f("r/a", "x.rs", 2, "dup()"),
            f("r/a", "x.rs", 3, "dup()"),
        ];
        let bl = Baseline::parse("r/a\tx.rs\tdup()\nr/a\tx.rs\tdup()\n");
        let (new, stale) = apply_baseline(&mut findings, &bl);
        assert_eq!(new, 1);
        assert!(stale.is_empty());
        assert_eq!(
            findings.iter().filter(|f| f.baselined).count(),
            2,
            "two of three grandfathered"
        );
    }

    #[test]
    fn stale_entries_are_reported() {
        let mut findings = vec![f("r/a", "x.rs", 1, "a()")];
        let bl = Baseline::parse("r/a\tx.rs\ta()\nr/b\tgone.rs\tb()\n");
        let (new, stale) = apply_baseline(&mut findings, &bl);
        assert_eq!(new, 0);
        assert_eq!(stale, ["r/b\tgone.rs\tb()"]);
    }

    #[test]
    fn json_lines_are_stable_and_escaped() {
        let mut a = f("r/a", "x.rs", 1, "say \"hi\"\t");
        a.baselined = true;
        let line = a.to_json_line();
        assert_eq!(
            line,
            "{\"rule\":\"r/a\",\"severity\":\"error\",\"file\":\"x.rs\",\"line\":1,\"col\":1,\"baselined\":true,\"message\":\"m\",\"snippet\":\"say \\\"hi\\\"\\t\"}"
        );
    }

    #[test]
    fn sort_is_by_file_line_col_rule() {
        let mut v = vec![
            f("r/b", "b.rs", 1, "s"),
            f("r/a", "a.rs", 2, "s"),
            f("r/a", "a.rs", 1, "s"),
        ];
        sort_findings(&mut v);
        assert_eq!(
            v.iter().map(|f| (f.file.as_str(), f.line)).collect::<Vec<_>>(),
            [("a.rs", 1), ("a.rs", 2), ("b.rs", 1)]
        );
    }

    #[test]
    fn merge_baseline_replaces_in_scope_keeps_foreign_prunes_missing() {
        let old = "# header\n\
                   r/a\tcrates/x/src/lib.rs\told_fixed()\n\
                   r/a\tvendor/keep.rs\tkeep()\n\
                   r/a\tvendor/gone.rs\tgone()\n";
        let findings = vec![f("r/a", "crates/x/src/lib.rs", 1, "current()")];
        let merged = merge_baseline(
            old,
            &findings,
            &["crates".to_string(), "src".to_string()],
            &|file| file != "vendor/gone.rs",
        );
        let body: Vec<&str> = merged.lines().filter(|l| !l.starts_with('#')).collect();
        // In-scope old entry replaced by the current findings, the
        // out-of-scope entry with a live file kept, the entry whose
        // file vanished pruned.
        assert_eq!(
            body,
            [
                "r/a\tcrates/x/src/lib.rs\tcurrent()",
                "r/a\tvendor/keep.rs\tkeep()",
            ]
        );
    }

    #[test]
    fn render_roundtrip_via_parse() {
        let findings = vec![f("r/a", "x.rs", 1, "a()"), f("r/a", "x.rs", 2, "a()")];
        let text = Baseline::render(&findings);
        let bl = Baseline::parse(&text);
        assert_eq!(bl.len(), 2);
    }
}
