//! Conservative call graph over the symbol table.
//!
//! One pass over every symbol's body tokens finds call expressions
//! (`name(`, `path::name(`, `.name(`) and resolves them against
//! [`crate::symbols::SymbolGraph`]:
//!
//! * exact canonical path (after normalizing `crate`/`self`/`super`/
//!   `Self` and `dui_*` external-crate prefixes, and splicing the
//!   file's `use`-alias table into the head segment);
//! * last-two-segment suffix (`Type::name`, `module::name`) — robust
//!   to re-exports;
//! * bare free-fn name, preferring same-crate candidates;
//! * method calls by receiver heuristics: `self.m(...)` resolves
//!   within the enclosing impl type, anything else fans out to every
//!   method of that name (a conservative over-approximation).
//!
//! Anything that still doesn't resolve is recorded as an **Unknown
//! edge** (the callee display string, deduped per caller) so the
//! graph is explicit about where it is blind instead of silently
//! dropping edges. `.lock()` calls are deliberately *not* call edges:
//! the lock-order rule treats them as acquisitions, and modeling them
//! as both would fabricate self-deadlocks on clean code.
//!
//! Known blind spots (documented, not silent): turbofish call sites
//! (`f::<T>(…)`) and calls through function-pointer/closure values
//! resolve as Unknown.

use crate::lexer::TokKind;
use crate::parse::ParsedFile;
use crate::scan::ScannedFile;
use crate::symbols::{Symbol, SymbolGraph};
use std::collections::BTreeMap;

/// Candidate cap for bare-name and method fallbacks: a name that fans
/// out wider than this is recorded as Unknown instead (it would only
/// blur witnesses).
const MAX_CANDIDATES: usize = 8;

/// One deduplicated call edge endpoint with its witness site (the
/// first site in the caller's body, by `(line, col)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallEdge {
    /// The other endpoint's symbol id.
    pub other: u32,
    /// 1-based line of the call site, in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// One call site inside a caller's body, with every symbol the callee
/// name may resolve to.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
    /// Candidate callee symbol ids, sorted.
    pub targets: Vec<u32>,
}

/// The workspace call graph, indexed by symbol id.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per caller: every resolved call site in body order.
    pub sites: Vec<Vec<CallSite>>,
    /// Per caller: deduped forward edges, sorted by callee id.
    pub callees: Vec<Vec<CallEdge>>,
    /// Per callee: deduped reverse edges, sorted by caller id. The
    /// site is in the *caller's* file.
    pub callers: Vec<Vec<CallEdge>>,
    /// Per caller: unresolved callee displays with their first site.
    pub unknown: Vec<Vec<(String, u32, u32)>>,
}

enum Resolution {
    Resolved(Vec<u32>),
    Unknown(String),
    Skip,
}

/// Identifiers that look like calls but are keywords or enum/tuple
/// constructors — never call edges.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "mut", "ref", "where",
    "impl", "dyn", "break", "continue", "unsafe", "let", "else", "fn", "pub", "use", "mod",
    "crate", "self", "super", "Self", "true", "false", "const", "static", "type", "enum",
    "struct", "trait", "box", "await", "yield",
];

impl CallGraph {
    /// Build the graph by scanning every symbol body in id order.
    pub fn build(files: &[ParsedFile<'_>], g: &SymbolGraph) -> CallGraph {
        let n = g.symbols.len();
        let mut cg = CallGraph {
            sites: vec![Vec::new(); n],
            callees: vec![Vec::new(); n],
            callers: vec![Vec::new(); n],
            unknown: vec![Vec::new(); n],
        };
        let mut fwd: Vec<BTreeMap<u32, (u32, u32)>> = vec![BTreeMap::new(); n];
        let mut rev: Vec<BTreeMap<u32, (u32, u32)>> = vec![BTreeMap::new(); n];
        let mut unk: Vec<BTreeMap<String, (u32, u32)>> = vec![BTreeMap::new(); n];

        for (sid, sym) in g.symbols.iter().enumerate() {
            let Some(file) = files.get(sym.file_idx as usize) else {
                continue;
            };
            let Some(item) = file.items.get(sym.item_idx as usize) else {
                continue;
            };
            let Some((b0, b1)) = item.body else {
                continue;
            };
            let scan = &file.scan;
            let mut i = b0 + 1;
            while i < b1.min(scan.code.len()) {
                let t = *scan.ct(i);
                if t.kind != TokKind::Ident || scan.ctext(i + 1) != "(" {
                    i += 1;
                    continue;
                }
                let prev = if i == 0 { "" } else { scan.ctext(i - 1) };
                if prev == "fn" || NON_CALL_IDENTS.contains(&t.text) {
                    i += 1;
                    continue;
                }
                let res = if prev == "." {
                    if t.text == "lock" {
                        // Acquisition, not a call edge (see module docs).
                        i += 1;
                        continue;
                    }
                    method_targets(scan, g, sym, i, t.text)
                } else {
                    // Walk the `::` chain back to its head.
                    let mut segs = vec![t.text.to_string()];
                    let mut h = i;
                    while h >= 3
                        && scan.path_sep(h - 2)
                        && scan.ct(h - 3).kind == TokKind::Ident
                    {
                        h -= 3;
                        segs.insert(0, scan.ctext(h).to_string());
                    }
                    resolve_call(scan, g, sym, &segs)
                };
                match res {
                    Resolution::Resolved(mut targets) => {
                        targets.sort_unstable();
                        targets.dedup();
                        targets.retain(|&tid| tid != sid as u32); // no self loops
                        if !targets.is_empty() {
                            for &tid in &targets {
                                fwd[sid].entry(tid).or_insert((t.line, t.col));
                                rev[tid as usize]
                                    .entry(sid as u32)
                                    .or_insert((t.line, t.col));
                            }
                            cg.sites[sid].push(CallSite {
                                line: t.line,
                                col: t.col,
                                targets,
                            });
                        }
                    }
                    Resolution::Unknown(d) => {
                        unk[sid].entry(d).or_insert((t.line, t.col));
                    }
                    Resolution::Skip => {}
                }
                i += 1;
            }
        }

        for sid in 0..n {
            cg.callees[sid] = fwd[sid]
                .iter()
                .map(|(&o, &(l, c))| CallEdge {
                    other: o,
                    line: l,
                    col: c,
                })
                .collect();
            cg.callers[sid] = rev[sid]
                .iter()
                .map(|(&o, &(l, c))| CallEdge {
                    other: o,
                    line: l,
                    col: c,
                })
                .collect();
            cg.unknown[sid] = unk[sid]
                .iter()
                .map(|(d, &(l, c))| (d.clone(), l, c))
                .collect();
        }
        cg
    }

    /// A synthetic graph from explicit `(caller, callee)` pairs — for
    /// the taint propcheck suites. Sites carry `(line, col) = (1, 1)`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> CallGraph {
        let mut fwd: Vec<BTreeMap<u32, (u32, u32)>> = vec![BTreeMap::new(); n];
        let mut rev: Vec<BTreeMap<u32, (u32, u32)>> = vec![BTreeMap::new(); n];
        for &(a, b) in edges {
            if (a as usize) < n && (b as usize) < n {
                fwd[a as usize].entry(b).or_insert((1, 1));
                rev[b as usize].entry(a).or_insert((1, 1));
            }
        }
        let mut cg = CallGraph {
            sites: vec![Vec::new(); n],
            callees: vec![Vec::new(); n],
            callers: vec![Vec::new(); n],
            unknown: vec![Vec::new(); n],
        };
        for sid in 0..n {
            cg.callees[sid] = fwd[sid]
                .iter()
                .map(|(&o, &(l, c))| CallEdge { other: o, line: l, col: c })
                .collect();
            cg.callers[sid] = rev[sid]
                .iter()
                .map(|(&o, &(l, c))| CallEdge { other: o, line: l, col: c })
                .collect();
        }
        cg
    }

    /// Total deduplicated caller→callee pairs.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Total deduplicated unresolved-callee records.
    pub fn unknown_count(&self) -> usize {
        self.unknown.iter().map(Vec::len).sum()
    }
}

fn prefer_same_crate(g: &SymbolGraph, caller: &Symbol, ids: &[u32]) -> Vec<u32> {
    let same: Vec<u32> = ids
        .iter()
        .copied()
        .filter(|&id| {
            g.symbols
                .get(id as usize)
                .is_some_and(|s| s.crate_name == caller.crate_name)
        })
        .collect();
    if same.is_empty() {
        ids.to_vec()
    } else {
        same
    }
}

fn method_targets(
    scan: &ScannedFile<'_>,
    g: &SymbolGraph,
    caller: &Symbol,
    i: usize,
    name: &str,
) -> Resolution {
    // `self.m(...)` with a plain `self` receiver: resolve within the
    // enclosing impl type first.
    if i >= 2 && scan.ctext(i - 2) == "self" && (i < 4 || scan.ctext(i - 3) != ".") {
        if let Some(t) = &caller.self_type {
            if let Some(ids) = g.lookup_suffix2(&format!("{t}::{name}")) {
                return Resolution::Resolved(ids.to_vec());
            }
        }
    }
    match g.lookup_method(name) {
        Some(ids) => {
            let pick = prefer_same_crate(g, caller, ids);
            if pick.len() <= MAX_CANDIDATES {
                Resolution::Resolved(pick)
            } else {
                Resolution::Unknown(format!(".{name}"))
            }
        }
        None => {
            if name.starts_with(|c: char| c.is_lowercase() || c == '_') {
                Resolution::Unknown(format!(".{name}"))
            } else {
                Resolution::Skip
            }
        }
    }
}

fn resolve_call(
    scan: &ScannedFile<'_>,
    g: &SymbolGraph,
    caller: &Symbol,
    segs: &[String],
) -> Resolution {
    if segs.len() == 1 {
        let name = &segs[0];
        // Same-module free fn.
        let mut p = caller.mod_segs.clone();
        p.push(name.clone());
        if let Some(ids) = g.lookup_path(&p.join("::")) {
            return Resolution::Resolved(ids.to_vec());
        }
        // Through the file's use-alias table.
        if let Some(u) = scan.resolve_use(name) {
            if u.path.len() > 1 || u.path.first().map(String::as_str) != Some(name.as_str()) {
                return resolve_abs(g, caller, &u.path);
            }
        }
        // Bare free-fn fallback, same crate preferred.
        if let Some(ids) = g.lookup_fn(name) {
            let pick = prefer_same_crate(g, caller, ids);
            if pick.len() <= MAX_CANDIDATES {
                return Resolution::Resolved(pick);
            }
            return Resolution::Unknown(name.clone());
        }
        if name.starts_with(|c: char| c.is_lowercase() || c == '_') {
            return Resolution::Unknown(name.clone());
        }
        return Resolution::Skip; // `Some(`, `Vec(`-style constructors
    }
    // Multi-segment path: splice the head through the use table first
    // (`parallel::run(...)` with `use dui_netsim::parallel;`).
    if let Some(u) = scan.resolve_use(&segs[0]) {
        if u.path.len() > 1 || u.path.first() != Some(&segs[0]) {
            let mut full = u.path.clone();
            full.extend(segs[1..].iter().cloned());
            return resolve_abs(g, caller, &full);
        }
    }
    resolve_abs(g, caller, segs)
}

fn resolve_abs(g: &SymbolGraph, caller: &Symbol, segs: &[String]) -> Resolution {
    let mut segs: Vec<String> = segs.to_vec();
    if segs.is_empty() {
        return Resolution::Skip;
    }
    match segs[0].as_str() {
        "crate" => segs[0] = caller.crate_name.clone(),
        "self" => {
            segs.remove(0);
            let mut p = caller.mod_segs.clone();
            p.extend(segs);
            segs = p;
        }
        "super" => {
            segs.remove(0);
            let mut p = caller.mod_segs.clone();
            if p.len() > 1 {
                p.pop();
            }
            p.extend(segs);
            segs = p;
        }
        "Self" => match &caller.self_type {
            Some(t) => segs[0] = t.clone(),
            None => return Resolution::Unknown(segs.join("::")),
        },
        "std" | "core" | "alloc" => return Resolution::Unknown(segs.join("::")),
        s => {
            // Workspace crates are `dui-<name>` packages imported as
            // `dui_<name>`; canonical paths use the bare directory name.
            if let Some(rest) = s.strip_prefix("dui_") {
                if !rest.is_empty() {
                    segs[0] = rest.to_string();
                }
            }
        }
    }
    if segs.is_empty() {
        return Resolution::Skip;
    }
    if let Some(ids) = g.lookup_path(&segs.join("::")) {
        return Resolution::Resolved(ids.to_vec());
    }
    if segs.len() >= 2 {
        let suf = segs[segs.len() - 2..].join("::");
        if let Some(ids) = g.lookup_suffix2(&suf) {
            let pick = prefer_same_crate(g, caller, ids);
            if pick.len() <= MAX_CANDIDATES {
                return Resolution::Resolved(pick);
            }
        }
    }
    Resolution::Unknown(segs.join("::"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParsedFile;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<ParsedFile<'static>>, SymbolGraph, CallGraph) {
        let mut sorted: Vec<(&str, &str)> = srcs.to_vec();
        sorted.sort();
        let files: Vec<ParsedFile<'static>> = sorted
            .iter()
            .map(|(p, s)| ParsedFile::parse(p, Box::leak(s.to_string().into_boxed_str())))
            .collect();
        let g = SymbolGraph::build(&files);
        let cg = CallGraph::build(&files, &g);
        (files, g, cg)
    }

    fn id(g: &SymbolGraph, path: &str) -> u32 {
        g.lookup_path(path).and_then(|ids| ids.first().copied()).expect(path)
    }

    fn has_edge(cg: &CallGraph, from: u32, to: u32) -> bool {
        cg.callees[from as usize].iter().any(|e| e.other == to)
    }

    #[test]
    fn direct_and_cross_crate_calls_resolve() {
        let (_f, g, cg) = graph(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn seed() {}\npub fn hop() { seed(); }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "use dui_alpha::hop;\npub fn entry() { hop(); }\n\
                 pub fn qualified() { dui_alpha::seed(); }\n",
            ),
        ]);
        assert!(has_edge(&cg, id(&g, "alpha::hop"), id(&g, "alpha::seed")));
        assert!(has_edge(&cg, id(&g, "beta::entry"), id(&g, "alpha::hop")));
        assert!(has_edge(&cg, id(&g, "beta::qualified"), id(&g, "alpha::seed")));
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let (_f, g, cg) = graph(&[(
            "crates/alpha/src/lib.rs",
            "struct W;\nimpl W { fn a(&self) { self.b(); } fn b(&self) {} }\n",
        )]);
        assert!(has_edge(&cg, id(&g, "alpha::W::a"), id(&g, "alpha::W::b")));
    }

    #[test]
    fn std_calls_are_unknown_not_edges() {
        let (_f, g, cg) = graph(&[(
            "crates/alpha/src/lib.rs",
            "pub fn f() { std::mem::take(&mut 0u32); }\n",
        )]);
        let sid = id(&g, "alpha::f") as usize;
        assert!(cg.callees[sid].is_empty());
        assert_eq!(cg.unknown[sid].len(), 1);
        assert_eq!(cg.unknown[sid][0].0, "std::mem::take");
    }

    #[test]
    fn lock_calls_are_not_call_edges() {
        let (_f, g, cg) = graph(&[(
            "crates/alpha/src/lib.rs",
            "struct S;\nimpl S { fn lock(&self) {} }\n\
             pub fn f(s: &S) { s.lock(); }\n",
        )]);
        let sid = id(&g, "alpha::f") as usize;
        assert!(cg.callees[sid].is_empty());
        assert!(cg.unknown[sid].is_empty());
    }
}
