//! Item-level scanner: the resolution layer between the raw token
//! stream and the rules.
//!
//! Not a parser — a single forward pass over [`crate::lexer`] tokens
//! that recovers exactly the structure the rules need:
//!
//! * **`use` declarations**, including `as` renames, nested
//!   `{…}` groups, and glob imports — so a rule asking "is
//!   `std::time::Instant` imported here, under any name?" gets a real
//!   answer instead of a grep guess;
//! * **function boundaries** — each code token knows the innermost
//!   named `fn` whose body contains it (for the `state_digest` /
//!   `state_hash` scoping of the hash and cast rules);
//! * **impl blocks** — trait and self-type names (for `impl StateHash`
//!   / `impl StateDigest` scoping);
//! * **`#[cfg(test)]` / `#[test]` regions** — bodies gated behind test
//!   attributes are exempt from the panic rule;
//! * **inner attributes** on the crate root (for `docs/missing-deny`).
//!
//! The pass is heuristic where full parsing would be needed (macro
//! bodies look like code, a struct literal brace after a gated `const`
//! is treated as the gated region) but errs on the side the rules
//! want, and is fully deterministic.

use crate::lexer::{lex, Tok, TokKind};

/// One resolved `use` binding: `local` names `path` in this file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name the binding introduces locally (the alias after `as`,
    /// or the final path segment). `"*"` for glob imports.
    pub local: String,
    /// Full path segments, e.g. `["std", "time", "Instant"]`.
    pub path: Vec<String>,
    /// 1-based line of the binding's defining token.
    pub line: u32,
    /// 1-based column of the binding's defining token.
    pub col: u32,
}

/// A named function whose body was seen in this file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// An `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait being implemented (`impl Trait for Type`), if any.
    pub trait_name: Option<String>,
    /// The self type's head identifier (`Type` in both impl forms).
    pub type_name: String,
}

/// Per-code-token context assigned by the scanner.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokCtx {
    /// Token sits inside a `#[cfg(test)]` / `#[test]`-gated body.
    pub in_cfg_test: bool,
    /// Index into [`ScannedFile::fns`] of the innermost enclosing
    /// named function, if any.
    pub fn_idx: Option<u32>,
    /// Index into [`ScannedFile::impls`] of the innermost enclosing
    /// impl block, if any.
    pub impl_idx: Option<u32>,
}

/// A lexed and scanned source file, ready for rules.
#[derive(Debug)]
pub struct ScannedFile<'s> {
    /// Repo-relative path with `/` separators (stable across hosts).
    pub path: String,
    /// The source text.
    pub src: &'s str,
    /// The full lossless token stream.
    pub toks: Vec<Tok<'s>>,
    /// Indices into `toks` of the non-trivia (code) tokens.
    pub code: Vec<usize>,
    /// Context for each entry of `code` (parallel vector).
    pub ctx: Vec<TokCtx>,
    /// Every `use` binding in the file.
    pub uses: Vec<UseDecl>,
    /// Named functions with bodies.
    pub fns: Vec<FnInfo>,
    /// Impl blocks.
    pub impls: Vec<ImplInfo>,
    /// Crate-root inner attributes, one ident list per attribute
    /// (`#![deny(missing_docs)]` contributes `["deny",
    /// "missing_docs"]`). Grouped per attribute so rules can ask
    /// "does *one* attribute pair `deny` with `missing_docs`?" —
    /// an ident bag would conflate `#![warn(missing_docs)]` +
    /// `#![forbid(unsafe_code)]` with the real thing.
    pub inner_attrs: Vec<Vec<String>>,
    lines: Vec<&'s str>,
}

impl<'s> ScannedFile<'s> {
    /// Lex and scan `src` as the file at `path` (repo-relative).
    pub fn new(path: &str, src: &'s str) -> Self {
        let toks = lex(src);
        let mut f = ScannedFile {
            path: path.to_string(),
            src,
            code: toks
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.kind.is_trivia())
                .map(|(i, _)| i)
                .collect(),
            toks,
            ctx: Vec::new(),
            uses: Vec::new(),
            fns: Vec::new(),
            impls: Vec::new(),
            inner_attrs: Vec::new(),
            lines: src.lines().collect(),
        };
        f.scan();
        f
    }

    /// The code token at code-index `i` (not a raw token index).
    pub fn ct(&self, i: usize) -> &Tok<'s> {
        &self.toks[self.code[i]]
    }

    /// Text of code token `i`, or `""` past the end.
    pub fn ctext(&self, i: usize) -> &'s str {
        self.code.get(i).map_or("", |&j| self.toks[j].text)
    }

    /// True if code tokens `i, i+1` are `::`.
    pub fn path_sep(&self, i: usize) -> bool {
        self.ctext(i) == ":" && self.ctext(i + 1) == ":"
    }

    /// The (trimmed) text of 1-based line `n`, or `""`.
    pub fn line_text(&self, n: u32) -> &'s str {
        self.lines
            .get(n.saturating_sub(1) as usize)
            .map_or("", |l| l.trim())
    }

    /// True if 1-based line `n` or the line above contains `needle`
    /// (raw text, comments included) — the marker convention shared by
    /// the hash rule (`sorted` / `write_unordered`) and the escape
    /// annotations (`lint: allow(...)`).
    pub fn line_or_above_contains(&self, n: u32, needle: &str) -> bool {
        let here = self
            .lines
            .get(n.saturating_sub(1) as usize)
            .is_some_and(|l| l.contains(needle));
        let above = n >= 2
            && self
                .lines
                .get(n.saturating_sub(2) as usize)
                .is_some_and(|l| l.contains(needle));
        here || above
    }

    /// Resolve a local identifier through this file's `use` bindings.
    pub fn resolve_use(&self, local: &str) -> Option<&UseDecl> {
        self.uses.iter().find(|u| u.local == local)
    }

    /// The innermost function name enclosing code token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.ctx
            .get(i)
            .and_then(|c| c.fn_idx)
            .map(|k| self.fns[k as usize].name.as_str())
    }

    /// The enclosing impl block of code token `i`, if any.
    pub fn enclosing_impl(&self, i: usize) -> Option<&ImplInfo> {
        self.ctx
            .get(i)
            .and_then(|c| c.impl_idx)
            .map(|k| &self.impls[k as usize])
    }

    // ------------------------------------------------------------------
    // The scanning pass.
    // ------------------------------------------------------------------

    fn scan(&mut self) {
        #[derive(Clone, Copy)]
        struct Scope {
            test: bool,
            fn_idx: Option<u32>,
            impl_idx: Option<u32>,
        }
        let mut stack: Vec<Scope> = vec![Scope {
            test: false,
            fn_idx: None,
            impl_idx: None,
        }];
        let mut ctx = Vec::with_capacity(self.code.len());

        // Pending item state, armed between an item keyword and the `{`
        // that opens its body (or the `;` that ends a bodyless item).
        let mut pending_test = false;
        let mut pending_fn: Option<u32> = None;
        let mut pending_impl: Option<u32> = None;
        let mut impl_header: Vec<String> = Vec::new(); // idents while an impl header is open

        let mut i = 0usize;
        while i < self.code.len() {
            let top = *stack.last().unwrap_or(&Scope {
                test: false,
                fn_idx: None,
                impl_idx: None,
            });
            ctx.push(TokCtx {
                in_cfg_test: top.test,
                fn_idx: top.fn_idx,
                impl_idx: top.impl_idx,
            });
            let tok = *self.ct(i);
            let text = tok.text;
            match text {
                "#" => {
                    // Attribute: collect idents inside the balanced [ ].
                    let inner = self.ctext(i + 1) == "!";
                    let open = if inner { i + 2 } else { i + 1 };
                    if self.ctext(open) == "[" {
                        let (idents, end) = self.collect_bracketed_idents(open);
                        if inner && stack.len() == 1 {
                            self.inner_attrs.push(idents.clone());
                        }
                        // `test` marks a gated item; `not` (as in
                        // `cfg(not(test))`) cancels the gating.
                        if !inner
                            && idents.iter().any(|s| s == "test")
                            && !idents.iter().any(|s| s == "not")
                        {
                            pending_test = true;
                        }
                        // Context entries for the skipped tokens.
                        while ctx.len() < end.min(self.code.len()) {
                            ctx.push(TokCtx {
                                in_cfg_test: top.test,
                                fn_idx: top.fn_idx,
                                impl_idx: top.impl_idx,
                            });
                        }
                        i = end;
                        continue;
                    }
                }
                "fn" => {
                    let name = self.ctext(i + 1);
                    if !name.is_empty()
                        && self.ct(i + 1).kind == TokKind::Ident
                        && pending_impl.is_none()
                    {
                        self.fns.push(FnInfo {
                            name: name.to_string(),
                            line: tok.line,
                        });
                        pending_fn = Some((self.fns.len() - 1) as u32);
                    }
                }
                "impl" if pending_fn.is_none() && pending_impl.is_none() => {
                    // Only an item-position `impl` opens a block;
                    // `impl Trait` in types follows `(, :, ->, =, <, &`.
                    let prev = if i == 0 { "" } else { self.ctext(i - 1) };
                    if matches!(prev, "" | "}" | "{" | ";" | "]" | "unsafe") {
                        self.impls.push(ImplInfo {
                            trait_name: None,
                            type_name: String::new(),
                        });
                        pending_impl = Some((self.impls.len() - 1) as u32);
                        impl_header.clear();
                    }
                }
                "use" => {
                    let prev = if i == 0 { "" } else { self.ctext(i - 1) };
                    if matches!(prev, "" | "}" | ";" | "]" | "{" | "pub" | ")") {
                        let end = self.parse_use(i + 1);
                        while ctx.len() < end.min(self.code.len()) {
                            ctx.push(TokCtx {
                                in_cfg_test: top.test,
                                fn_idx: top.fn_idx,
                                impl_idx: top.impl_idx,
                            });
                        }
                        i = end;
                        continue;
                    }
                }
                "{" => {
                    if let Some(k) = pending_impl.take() {
                        self.finish_impl_header(k, &impl_header);
                        impl_header.clear();
                        stack.push(Scope {
                            test: top.test || std::mem::take(&mut pending_test),
                            fn_idx: top.fn_idx,
                            impl_idx: Some(k),
                        });
                    } else {
                        stack.push(Scope {
                            test: top.test || std::mem::take(&mut pending_test),
                            fn_idx: pending_fn.take().or(top.fn_idx),
                            impl_idx: top.impl_idx,
                        });
                    }
                }
                "}" => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
                ";" => {
                    pending_fn = None;
                    pending_impl = None;
                    pending_test = false;
                    impl_header.clear();
                }
                _ => {
                    if pending_impl.is_some() && tok.kind == TokKind::Ident {
                        impl_header.push(text.to_string());
                    }
                }
            }
            i += 1;
        }
        self.ctx = ctx;
    }

    /// Trait / self-type names from the ident run of an impl header:
    /// `impl <T: Ord> Trait <X> for Type <T>` → idents
    /// `[T, Ord, Trait, X, for, Type, T]`. `for` splits trait from
    /// type; without it the first plausible ident is the self type.
    fn finish_impl_header(&mut self, k: u32, idents: &[String]) {
        const SKIP: &[&str] = &["mut", "dyn", "const", "where", "as", "crate", "self", "Self"];
        let info = &mut self.impls[k as usize];
        if let Some(pos) = idents.iter().position(|s| s == "for") {
            // Trait name: last non-generic ident before `for`. Heuristic:
            // the last ident before `for` that is not a known keyword.
            info.trait_name = idents[..pos]
                .iter()
                .rev()
                .find(|s| !SKIP.contains(&s.as_str()))
                .cloned();
            info.type_name = idents[pos + 1..]
                .iter()
                .find(|s| !SKIP.contains(&s.as_str()))
                .cloned()
                .unwrap_or_default();
        } else {
            info.type_name = idents
                .iter()
                .find(|s| !SKIP.contains(&s.as_str()))
                .cloned()
                .unwrap_or_default();
        }
    }

    /// Idents inside one balanced `[ … ]` starting at code index
    /// `open` (which must be `[`). Returns (idents, code index one
    /// past the closing `]`).
    pub(crate) fn collect_bracketed_idents(&self, open: usize) -> (Vec<String>, usize) {
        let mut idents = Vec::new();
        let mut depth = 0i32;
        let mut i = open;
        while i < self.code.len() {
            let t = self.ct(i);
            match t.text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (idents, i + 1);
                    }
                }
                _ => {
                    if t.kind == TokKind::Ident {
                        idents.push(t.text.to_string());
                    }
                }
            }
            i += 1;
        }
        (idents, i)
    }

    /// Parse one `use` declaration starting at the code token after
    /// the `use` keyword; records bindings, returns the code index one
    /// past the terminating `;`.
    fn parse_use(&mut self, start: usize) -> usize {
        let mut i = start;
        let mut decls = Vec::new();
        self.parse_use_tree(&mut i, &mut Vec::new(), &mut decls);
        // Consume through the `;` if present.
        while i < self.code.len() && self.ctext(i) != ";" {
            i += 1;
        }
        self.uses.extend(decls);
        i + 1
    }

    fn parse_use_tree(&self, i: &mut usize, prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
        let depth_at_entry = prefix.len();
        let mut last: Option<(String, u32, u32)> = None; // seg, line, col
        while *i < self.code.len() {
            let tok = *self.ct(*i);
            match tok.text {
                ";" | "," | "}" => {
                    if let Some((seg, line, col)) = last.take() {
                        let mut path = prefix.clone();
                        path.push(seg.clone());
                        out.push(UseDecl {
                            local: seg,
                            path,
                            line,
                            col,
                        });
                    }
                    prefix.truncate(depth_at_entry);
                    if tok.text != ";" {
                        // Caller (the `{` loop) consumes `,` / `}`.
                    }
                    return;
                }
                ":" => {
                    if self.path_sep(*i) {
                        if let Some((seg, _, _)) = last.take() {
                            prefix.push(seg);
                        }
                        *i += 2;
                        continue;
                    }
                    *i += 1;
                }
                "{" => {
                    *i += 1;
                    loop {
                        self.parse_use_tree(i, prefix, out);
                        match self.ctext(*i) {
                            "," => {
                                *i += 1;
                                continue;
                            }
                            "}" => {
                                *i += 1;
                                break;
                            }
                            _ => break, // `;` or EOF: bail out
                        }
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                "as" => {
                    // `path as Alias`
                    let alias_tok = if *i + 1 < self.code.len() {
                        Some(*self.ct(*i + 1))
                    } else {
                        None
                    };
                    if let (Some((seg, _, _)), Some(a)) = (last.take(), alias_tok) {
                        let mut path = prefix.clone();
                        path.push(seg);
                        out.push(UseDecl {
                            local: a.text.to_string(),
                            path,
                            line: a.line,
                            col: a.col,
                        });
                    }
                    *i += 2;
                }
                "*" => {
                    out.push(UseDecl {
                        local: "*".to_string(),
                        path: prefix.clone(),
                        line: tok.line,
                        col: tok.col,
                    });
                    *i += 1;
                }
                _ if tok.kind == TokKind::Ident => {
                    last = Some((tok.text.to_string(), tok.line, tok.col));
                    *i += 1;
                }
                _ => {
                    *i += 1;
                }
            }
        }
        if let Some((seg, line, col)) = last.take() {
            let mut path = prefix.clone();
            path.push(seg.clone());
            out.push(UseDecl {
                local: seg,
                path,
                line,
                col,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(src: &str) -> ScannedFile<'_> {
        ScannedFile::new("crates/x/src/lib.rs", src)
    }

    #[test]
    fn use_aliases_and_groups() {
        let f = scanned(
            "use std::time::Instant as T;\n\
             use std::collections::{HashMap, HashSet as Set};\n\
             use rand::*;\n",
        );
        let t = f.resolve_use("T").unwrap();
        assert_eq!(t.path, ["std", "time", "Instant"]);
        assert_eq!(
            f.resolve_use("HashMap").unwrap().path,
            ["std", "collections", "HashMap"]
        );
        assert_eq!(
            f.resolve_use("Set").unwrap().path,
            ["std", "collections", "HashSet"]
        );
        let glob = f.uses.iter().find(|u| u.local == "*").unwrap();
        assert_eq!(glob.path, ["rand"]);
    }

    #[test]
    fn fn_bodies_are_tracked() {
        let f = scanned(
            "fn state_digest(d: &mut D) { d.write(map.keys()); }\n\
             fn other() { x(); }\n",
        );
        let keys_pos = (0..f.code.len()).find(|&i| f.ctext(i) == "keys").unwrap();
        assert_eq!(f.enclosing_fn(keys_pos), Some("state_digest"));
        let x_pos = (0..f.code.len()).find(|&i| f.ctext(i) == "x").unwrap();
        assert_eq!(f.enclosing_fn(x_pos), Some("other"));
    }

    #[test]
    fn cfg_test_regions() {
        let f = scanned(
            "fn lib_path() { a.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n\
             #[cfg(not(test))]\nfn not_gated() { c.unwrap(); }\n",
        );
        let pos_of = |name: &str| (0..f.code.len()).find(|&i| f.ctext(i) == name).unwrap();
        assert!(!f.ctx[pos_of("a")].in_cfg_test);
        assert!(f.ctx[pos_of("b")].in_cfg_test);
        assert!(!f.ctx[pos_of("c")].in_cfg_test);
    }

    #[test]
    fn impl_blocks_trait_and_type() {
        let f = scanned(
            "impl StateHash for Engine { fn state_hash(&self) -> u64 { self.x as u64 } }\n\
             impl StateDigest { fn write_u8(&mut self, v: u8) { self.go(v as u64) } }\n",
        );
        let as_positions: Vec<usize> =
            (0..f.code.len()).filter(|&i| f.ctext(i) == "as").collect();
        let im0 = f.enclosing_impl(as_positions[0]).unwrap();
        assert_eq!(im0.trait_name.as_deref(), Some("StateHash"));
        assert_eq!(im0.type_name, "Engine");
        let im1 = f.enclosing_impl(as_positions[1]).unwrap();
        assert_eq!(im1.trait_name, None);
        assert_eq!(im1.type_name, "StateDigest");
    }

    #[test]
    fn impl_trait_in_argument_position_is_not_a_block() {
        let f = scanned("fn take(f: impl Fn() -> u64) { f(); }\n");
        assert!(f.impls.is_empty());
        let fpos = (0..f.code.len()).rfind(|&i| f.ctext(i) == "f").unwrap();
        assert_eq!(f.enclosing_fn(fpos), Some("take"));
    }

    #[test]
    fn inner_attrs_grouped_per_attribute() {
        let f = scanned("#![deny(missing_docs)]\n#![forbid(unsafe_code)]\nfn x() {}\n");
        assert_eq!(
            f.inner_attrs,
            [vec!["deny".to_string(), "missing_docs".to_string()],
             vec!["forbid".to_string(), "unsafe_code".to_string()]]
        );
    }

    #[test]
    fn marker_line_queries() {
        let f = scanned("let a = 1;\n// via flows_sorted\nlet b = m.keys();\n");
        assert!(f.line_or_above_contains(3, "sorted"));
        assert!(!f.line_or_above_contains(1, "sorted"));
    }
}
