//! Item-level parser: named `fn`/method items with body spans, the
//! inline-`mod` tree, and per-token ownership — the symbol layer's
//! view of one file.
//!
//! Builds on [`crate::scan::ScannedFile`]'s lossless code-token
//! stream with a second forward pass that mirrors the scanner's
//! state machine but keeps *structure*: every named function becomes
//! an [`Item`] carrying its module path, enclosing `impl`/`trait`
//! self type, `#[cfg(test)]` gating, `// lint: allow(...)`
//! annotations, and the code-token range of its body. A parallel
//! `owner` vector maps every code token to the innermost `fn` item
//! whose body contains it (0 = the whole-file pseudo-item), which
//! gives the call-graph and taint layers an exact, gap-free
//! partition of the token stream — the property the parser propcheck
//! suite pins down.
//!
//! Like the scanner, this is a heuristic single pass, not a grammar:
//! macro bodies are treated as code, and exotic shapes (multi-line
//! attributes, const-generic default braces) may mis-assign a span.
//! It is total (never panics) and fully deterministic.

use crate::lexer::TokKind;
use crate::scan::ScannedFile;

/// One named item: a free `fn`, a method in an `impl`/`trait` block,
/// or the implicit whole-file pseudo-item at index 0.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item's name (`""` for the file pseudo-item).
    pub name: String,
    /// Inline `mod` path from the file root down to the item.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` self-type, when the item is a method.
    pub self_type: Option<String>,
    /// Trait implemented by the enclosing `impl` block, if any.
    pub trait_name: Option<String>,
    /// Gated behind `#[cfg(test)]` / `#[test]`, directly or via an
    /// enclosing gated block.
    pub cfg_test: bool,
    /// 1-based line of the `fn` keyword (0 for the file pseudo-item).
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// `lint: allow(...)` names from the item's line or the
    /// comment/attribute run directly above it, sorted + deduped.
    pub allows: Vec<String>,
    /// Code-token range of the body: `(open_brace, close_brace)`
    /// inclusive, or `None` for bodyless items (trait signatures,
    /// `extern` declarations).
    pub body: Option<(usize, usize)>,
}

impl Item {
    fn file_pseudo() -> Item {
        Item {
            name: String::new(),
            module: Vec::new(),
            self_type: None,
            trait_name: None,
            cfg_test: false,
            line: 0,
            col: 0,
            allows: Vec::new(),
            body: None,
        }
    }
}

/// A scanned file plus its item layer.
#[derive(Debug)]
pub struct ParsedFile<'s> {
    /// The underlying token-level scan.
    pub scan: ScannedFile<'s>,
    /// Items in definition order; index 0 is the file pseudo-item.
    pub items: Vec<Item>,
    /// For each code token, the index into `items` of the innermost
    /// `fn` item whose body contains it (0 = file level). Same length
    /// as `scan.code` — a total, gap-free ownership assignment.
    pub owner: Vec<u32>,
}

enum FrameKind {
    Plain,
    Fn,
    Mod,
    Type,
}

struct Frame {
    kind: FrameKind,
    test: bool,
}

impl<'s> ParsedFile<'s> {
    /// Lex, scan, and parse `src` as the file at `path`
    /// (repo-relative, `/`-separated).
    pub fn parse(path: &str, src: &'s str) -> Self {
        let scan = ScannedFile::new(path, src);
        let mut items = vec![Item::file_pseudo()];
        let mut owner: Vec<u32> = Vec::with_capacity(scan.code.len());

        let mut frames: Vec<Frame> = vec![Frame {
            kind: FrameKind::Plain,
            test: false,
        }];
        let mut fn_stack: Vec<u32> = Vec::new();
        let mut mod_path: Vec<String> = Vec::new();
        let mut type_stack: Vec<(String, Option<String>)> = Vec::new();

        let mut pending_test = false;
        let mut pending_fn: Option<Item> = None;
        let mut pending_impl: Option<Vec<String>> = None;
        let mut pending_trait: Option<String> = None;
        let mut pending_mod: Option<String> = None;
        // `(`/`[` nesting depth: a `;` only terminates a pending item
        // at depth 0 (so `fn f(x: [u8; 4])` keeps its body).
        let mut depth = 0i32;

        let mut i = 0usize;
        while i < scan.code.len() {
            let cur_owner = fn_stack.last().copied().unwrap_or(0);
            owner.push(cur_owner);
            let top_test = frames.last().is_some_and(|f| f.test);
            let tok = *scan.ct(i);
            match tok.text {
                "#" => {
                    let inner = scan.ctext(i + 1) == "!";
                    let open = if inner { i + 2 } else { i + 1 };
                    if scan.ctext(open) == "[" {
                        let (idents, end) = scan.collect_bracketed_idents(open);
                        if !inner
                            && idents.iter().any(|s| s == "test")
                            && !idents.iter().any(|s| s == "not")
                        {
                            pending_test = true;
                        }
                        while owner.len() < end.min(scan.code.len()) {
                            owner.push(cur_owner);
                        }
                        i = end;
                        continue;
                    }
                }
                "fn" => {
                    let name = scan.ctext(i + 1);
                    if !name.is_empty()
                        && scan.ct(i + 1).kind == TokKind::Ident
                        && pending_impl.is_none()
                        && pending_fn.is_none()
                    {
                        // Nested fns (inside another fn's body) are
                        // plain items: the enclosing impl type does
                        // not qualify them.
                        let (self_type, trait_name) = if fn_stack.is_empty() {
                            match type_stack.last() {
                                Some((t, tr)) => (Some(t.clone()), tr.clone()),
                                None => (None, None),
                            }
                        } else {
                            (None, None)
                        };
                        pending_fn = Some(Item {
                            name: name.to_string(),
                            module: mod_path.clone(),
                            self_type,
                            trait_name,
                            cfg_test: top_test || pending_test,
                            line: tok.line,
                            col: tok.col,
                            allows: collect_allows(&scan, tok.line),
                            body: None,
                        });
                    }
                }
                "impl" if pending_fn.is_none() && pending_impl.is_none() => {
                    let prev = if i == 0 { "" } else { scan.ctext(i - 1) };
                    if matches!(prev, "" | "}" | "{" | ";" | "]" | "unsafe") {
                        pending_impl = Some(Vec::new());
                    }
                }
                "trait" if pending_fn.is_none() && pending_impl.is_none() => {
                    let prev = if i == 0 { "" } else { scan.ctext(i - 1) };
                    let name = scan.ctext(i + 1);
                    if matches!(prev, "" | "}" | "{" | ";" | "]" | "pub" | ")" | "unsafe")
                        && !name.is_empty()
                        && scan.ct(i + 1).kind == TokKind::Ident
                    {
                        pending_trait = Some(name.to_string());
                    }
                }
                "mod" if pending_fn.is_none() && pending_impl.is_none() => {
                    let prev = if i == 0 { "" } else { scan.ctext(i - 1) };
                    let name = scan.ctext(i + 1);
                    if matches!(prev, "" | "}" | "{" | ";" | "]" | "pub" | ")")
                        && !name.is_empty()
                        && scan.ct(i + 1).kind == TokKind::Ident
                    {
                        pending_mod = Some(name.to_string());
                    }
                }
                "use" => {
                    let prev = if i == 0 { "" } else { scan.ctext(i - 1) };
                    if matches!(prev, "" | "}" | ";" | "]" | "{" | "pub" | ")") {
                        let mut end = i + 1;
                        while end < scan.code.len() && scan.ctext(end) != ";" {
                            end += 1;
                        }
                        end += 1;
                        while owner.len() < end.min(scan.code.len()) {
                            owner.push(cur_owner);
                        }
                        i = end;
                        continue;
                    }
                }
                "(" | "[" => depth += 1,
                ")" | "]" => depth = (depth - 1).max(0),
                "{" => {
                    let gate = std::mem::take(&mut pending_test);
                    if let Some(mut item) = pending_fn.take() {
                        item.cfg_test = item.cfg_test || gate || top_test;
                        item.body = Some((i, i)); // end patched at the `}`
                        let id = items.len() as u32;
                        let test = top_test || item.cfg_test;
                        items.push(item);
                        fn_stack.push(id);
                        frames.push(Frame {
                            kind: FrameKind::Fn,
                            test,
                        });
                        pending_impl = None;
                        pending_trait = None;
                        pending_mod = None;
                    } else if let Some(header) = pending_impl.take() {
                        let (trait_name, type_name) = split_impl_header(&header);
                        type_stack.push((type_name, trait_name));
                        frames.push(Frame {
                            kind: FrameKind::Type,
                            test: top_test || gate,
                        });
                    } else if let Some(name) = pending_trait.take() {
                        type_stack.push((name, None));
                        frames.push(Frame {
                            kind: FrameKind::Type,
                            test: top_test || gate,
                        });
                    } else if let Some(name) = pending_mod.take() {
                        mod_path.push(name);
                        frames.push(Frame {
                            kind: FrameKind::Mod,
                            test: top_test || gate,
                        });
                    } else {
                        frames.push(Frame {
                            kind: FrameKind::Plain,
                            test: top_test || gate,
                        });
                    }
                }
                "}" => {
                    if frames.len() > 1 {
                        if let Some(fr) = frames.pop() {
                            match fr.kind {
                                FrameKind::Fn => {
                                    if let Some(id) = fn_stack.pop() {
                                        if let Some(it) = items.get_mut(id as usize) {
                                            if let Some((s, _)) = it.body {
                                                it.body = Some((s, i));
                                            }
                                        }
                                    }
                                }
                                FrameKind::Mod => {
                                    mod_path.pop();
                                }
                                FrameKind::Type => {
                                    type_stack.pop();
                                }
                                FrameKind::Plain => {}
                            }
                        }
                    }
                }
                ";" if depth == 0 => {
                    if let Some(item) = pending_fn.take() {
                        items.push(item); // bodyless: trait sig / extern decl
                    }
                    pending_impl = None;
                    pending_trait = None;
                    pending_mod = None;
                    pending_test = false;
                }
                _ => {
                    if tok.kind == TokKind::Ident {
                        if let Some(h) = pending_impl.as_mut() {
                            h.push(tok.text.to_string());
                        }
                    }
                }
            }
            i += 1;
        }

        ParsedFile { scan, items, owner }
    }

    /// Maximal runs of same-owner code tokens as `(start, end, owner)`
    /// half-open ranges — by construction a gap-free, overlap-free
    /// partition of `0..scan.code.len()` (the parser propcheck pins
    /// this down).
    pub fn owner_spans(&self) -> Vec<(usize, usize, u32)> {
        let mut spans = Vec::new();
        let mut start = 0usize;
        for i in 1..=self.owner.len() {
            if i == self.owner.len() || self.owner[i] != self.owner[start] {
                spans.push((start, i, self.owner[start]));
                start = i;
            }
        }
        spans
    }
}

/// Trait / self-type split of an impl-header ident run (same
/// heuristic as the scanner's): `for` splits trait from type.
fn split_impl_header(idents: &[String]) -> (Option<String>, String) {
    const SKIP: &[&str] = &["mut", "dyn", "const", "where", "as", "crate", "self", "Self"];
    if let Some(pos) = idents.iter().position(|s| s == "for") {
        let trait_name = idents[..pos]
            .iter()
            .rev()
            .find(|s| !SKIP.contains(&s.as_str()))
            .cloned();
        let type_name = idents[pos + 1..]
            .iter()
            .find(|s| !SKIP.contains(&s.as_str()))
            .cloned()
            .unwrap_or_default();
        (trait_name, type_name)
    } else {
        let type_name = idents
            .iter()
            .find(|s| !SKIP.contains(&s.as_str()))
            .cloned()
            .unwrap_or_default();
        (None, type_name)
    }
}

/// `lint: allow(NAME)` names on `fn_line` or the comment/attribute
/// run directly above it (up to 10 lines), sorted + deduped.
fn collect_allows(scan: &ScannedFile<'_>, fn_line: u32) -> Vec<String> {
    fn push_line(text: &str, names: &mut Vec<String>) {
        let mut rest = text;
        const MARK: &str = "lint: allow(";
        while let Some(p) = rest.find(MARK) {
            let after = &rest[p + MARK.len()..];
            match after.find(')') {
                Some(end) => {
                    let name = after[..end].trim();
                    if !name.is_empty() {
                        names.push(name.to_string());
                    }
                    rest = &after[end + 1..];
                }
                None => break,
            }
        }
    }
    let mut names = Vec::new();
    push_line(scan.line_text(fn_line), &mut names);
    let mut l = fn_line.saturating_sub(1);
    let mut budget = 10;
    while l >= 1 && budget > 0 {
        let text = scan.line_text(l);
        if !(text.starts_with("//") || text.starts_with('#')) {
            break;
        }
        push_line(text, &mut names);
        l -= 1;
        budget -= 1;
    }
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile<'_> {
        ParsedFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn items_carry_module_and_type_context() {
        let f = parsed(
            "fn free() { helper(); }\n\
             mod inner {\n  pub fn nested_mod_fn() {}\n}\n\
             impl Widget { fn method(&self) {} }\n\
             impl Render for Widget { fn draw(&self) {} }\n\
             trait Shape { fn area(&self) -> f64; fn default_m(&self) { self.area(); } }\n",
        );
        let by_name = |n: &str| f.items.iter().find(|i| i.name == n).expect(n);
        assert_eq!(by_name("free").module, Vec::<String>::new());
        assert_eq!(by_name("nested_mod_fn").module, ["inner"]);
        assert_eq!(by_name("method").self_type.as_deref(), Some("Widget"));
        let draw = by_name("draw");
        assert_eq!(draw.self_type.as_deref(), Some("Widget"));
        assert_eq!(draw.trait_name.as_deref(), Some("Render"));
        assert_eq!(by_name("default_m").self_type.as_deref(), Some("Shape"));
        assert!(by_name("area").body.is_none(), "trait sig has no body");
    }

    #[test]
    fn owner_is_a_partition_and_tracks_bodies() {
        let f = parsed("fn a() { x(); }\nfn b() { fn c() { y(); } c(); }\n");
        assert_eq!(f.owner.len(), f.scan.code.len());
        let spans = f.owner_spans();
        assert_eq!(spans.first().map(|s| s.0), Some(0));
        assert_eq!(spans.last().map(|s| s.1), Some(f.scan.code.len()));
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0, "no gaps or overlaps");
        }
        let idx_of = |name: &str| {
            (0..f.scan.code.len())
                .find(|&i| f.scan.ctext(i) == name)
                .expect(name)
        };
        let item_named = |n: &str| {
            f.items.iter().position(|i| i.name == n).expect(n) as u32
        };
        assert_eq!(f.owner[idx_of("x")], item_named("a"));
        assert_eq!(f.owner[idx_of("y")], item_named("c"), "nested fn owns its body");
    }

    #[test]
    fn cfg_test_gating_propagates() {
        let f = parsed(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn case() {}\n}\n",
        );
        let by_name = |n: &str| f.items.iter().find(|i| i.name == n).expect(n);
        assert!(!by_name("lib").cfg_test);
        assert!(by_name("helper").cfg_test);
        assert!(by_name("case").cfg_test);
    }

    #[test]
    fn allows_are_collected_above_the_item() {
        let f = parsed(
            "// lint: allow(panic): invariant documented\n\
             // lint: allow(transitive-wall-clock): quarantined\n\
             fn noisy() {}\n\
             fn clean() {}\n",
        );
        let by_name = |n: &str| f.items.iter().find(|i| i.name == n).expect(n);
        assert_eq!(by_name("noisy").allows, ["panic", "transitive-wall-clock"]);
        assert!(by_name("clean").allows.is_empty());
    }

    #[test]
    fn semicolons_inside_brackets_do_not_kill_the_body() {
        let f = parsed("fn packed(x: [u8; 4]) { consume(x); }\n");
        let packed = f.items.iter().find(|i| i.name == "packed").expect("packed");
        assert!(packed.body.is_some(), "array-typed arg keeps the body");
        let idx = (0..f.scan.code.len())
            .find(|&i| f.scan.ctext(i) == "consume")
            .expect("consume");
        assert_eq!(f.items[f.owner[idx] as usize].name, "packed");
    }

    #[test]
    fn body_spans_are_brace_delimited() {
        let f = parsed("fn a() { x(); }\n");
        let a = f.items.iter().find(|i| i.name == "a").expect("a");
        let (b0, b1) = a.body.expect("body");
        assert_eq!(f.scan.ctext(b0), "{");
        assert_eq!(f.scan.ctext(b1), "}");
        assert!(b0 < b1);
    }
}
