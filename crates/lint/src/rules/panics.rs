//! `panic/library-unwrap`: `unwrap` / `expect` / `panic!` in library
//! paths are landmines under adversarial input — the paper's whole
//! premise is that inputs are attacker-controlled, so a library that
//! can be panicked is a library that can be crashed.
//!
//! Scope: `crates/*/src/**` and the root `src/**`, excluding
//! `src/bin/` (binaries may die on bad CLI input), `#[cfg(test)]` /
//! `#[test]`-gated bodies, and doc comments (doc examples are comment
//! text to the lexer and never reach the rules).
//!
//! Escape hatch: a `// lint: allow(panic): <reason>` comment on the
//! offending line or the line above. The reason is part of the
//! convention — an allow without a why does not document an invariant.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const RULE: &str = "panic/library-unwrap";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(panic)";

/// `panic/library-unwrap`.
pub fn library_unwrap(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    if !PathClass::of(file).is_library_src() {
        return;
    }
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident {
            continue;
        }
        if file.ctx.get(i).is_some_and(|c| c.in_cfg_test) {
            continue;
        }
        let what = if (t.text == "unwrap" || t.text == "expect")
            && file.ctext(i.wrapping_sub(1)) == "."
            && file.ctext(i + 1) == "("
        {
            Some(format!(".{}()", t.text))
        } else if t.text == "panic" && file.ctext(i + 1) == "!" {
            Some("panic!".to_string())
        } else {
            None
        };
        if let Some(what) = what {
            if file.line_or_above_contains(t.line, ALLOW) {
                continue;
            }
            out.push(finding_at(
                file,
                i,
                RULE,
                Severity::Warning,
                format!(
                    "{what} in a library path — return a typed error, or document the \
                     invariant and annotate with `// {ALLOW}: <reason>`"
                ),
            ));
        }
    }
}
