//! `docs/missing-deny`: every library crate root must carry
//! `#![deny(missing_docs)]`.
//!
//! The workspace's rustdoc gate (`RUSTDOCFLAGS="-D warnings"`) only
//! fires on lints that are *enabled*; `missing_docs` is allow-by-
//! default, so a crate without the deny attribute can silently grow
//! undocumented public API. This rule makes the attribute itself the
//! checked invariant: doc coverage then regresses at compile time, in
//! the offending crate, instead of never.

use super::PathClass;
use crate::findings::{Finding, Severity};
use crate::scan::ScannedFile;

const RULE: &str = "docs/missing-deny";

/// `docs/missing-deny`.
pub fn missing_deny(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    let Some(crate_name) = PathClass::of(file).crate_root() else {
        return;
    };
    // One attribute must pair deny/forbid with missing_docs —
    // `#![warn(missing_docs)]` next to `#![forbid(unsafe_code)]` does
    // not count.
    let has_deny = file.inner_attrs.iter().any(|attr| {
        attr.iter().any(|s| s == "missing_docs")
            && attr.iter().any(|s| s == "deny" || s == "forbid")
    });
    if !has_deny {
        out.push(Finding {
            rule: RULE,
            severity: Severity::Warning,
            file: file.path.clone(),
            line: 1,
            col: 1,
            message: format!(
                "crate root of `{crate_name}` lacks `#![deny(missing_docs)]` — public \
                 API must stay documented (the rustdoc gate only checks enabled lints)"
            ),
            snippet: file.line_text(1).to_string(),
            baselined: false,
        });
    }
}
