//! `arena/no-packet-clone`: packet bodies live in the `dui-netsim`
//! `PacketArena` slab and move by 8-byte handle; cloning a `Packet`
//! anywhere else silently reintroduces
//! the by-value copies the arena refactor removed. The one sanctioned
//! clone site is `PacketArena::snapshot_packet` (checkpoint
//! materialization) inside `crates/netsim/src/arena.rs`, which this rule
//! exempts wholesale.
//!
//! Token patterns caught (alias-unaware on purpose — `Packet` is never
//! re-aliased in this workspace):
//!
//! 1. `Packet::clone(..)` / `<Packet as Clone>::clone(..)` — an explicit
//!    path call through the type.
//! 2. `.clone()` / `.cloned()` whose receiver token names a packet
//!    (`pkt`, `packet`, or any ident containing those stems, e.g.
//!    `in_flight_pkt`).
//!
//! Scope: library paths only, `#[cfg(test)]` bodies excluded (tests
//! build fixtures by value).
//!
//! Escape hatch: `// lint: allow(packet-clone): <reason>` on the
//! offending line or the line above, mirroring the panic rule.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const RULE: &str = "arena/no-packet-clone";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(packet-clone)";

/// True if `text` names a packet binding by convention.
fn names_packet(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("pkt") || lower.contains("packet")
}

/// `arena/no-packet-clone`.
pub fn no_packet_clone(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    let class = PathClass::of(file);
    if !class.is_library_src() || class.is_arena_module() {
        return;
    }
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident || (t.text != "clone" && t.text != "cloned") {
            continue;
        }
        if file.ctx.get(i).is_some_and(|c| c.in_cfg_test) {
            continue;
        }
        if file.ctext(i + 1) != "(" {
            continue;
        }
        let what = match file.ctext(i.wrapping_sub(1)) {
            // `Packet::clone(..)` or `<Packet as Clone>::clone(..)`.
            ":" if t.text == "clone" && file.ctext(i.wrapping_sub(3)) == "Packet" => {
                Some("Packet::clone(..)".to_string())
            }
            // `.clone()` / `.cloned()` on a packet-named receiver. The
            // receiver is the ident two tokens back, possibly behind a
            // closing `)` / `]` of a call or index chain — only the
            // plain-ident form is checked; chained calls go through the
            // explicit-path pattern or the receiver's own name.
            "." => {
                let recv = file.ctext(i.wrapping_sub(2));
                if names_packet(recv) {
                    Some(format!("{recv}.{}()", t.text))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = what {
            if file.line_or_above_contains(t.line, ALLOW) {
                continue;
            }
            out.push(finding_at(
                file,
                i,
                RULE,
                Severity::Warning,
                format!(
                    "{what} copies a packet body outside the arena — move the \
                     PacketRef handle instead, or snapshot via \
                     PacketArena::snapshot_packet; if the copy is deliberate, \
                     annotate with `// {ALLOW}: <reason>`"
                ),
            ));
        }
    }
}
