//! The arena discipline rules: state that lives in a slab moves by
//! 8-byte handle, and nothing outside the slab may copy it by value or
//! iterate it through an unordered side index.
//!
//! `arena/no-packet-clone`: packet bodies live in the `dui-netsim`
//! `PacketArena` slab and move by 8-byte handle; cloning a `Packet`
//! anywhere else silently reintroduces
//! the by-value copies the arena refactor removed. The one sanctioned
//! clone site is `PacketArena::snapshot_packet` (checkpoint
//! materialization) inside `crates/netsim/src/arena.rs`, which this rule
//! exempts wholesale.
//!
//! `arena/no-flow-clone`: the same contract for per-flow TCP state,
//! which lives in `dui-tcp`'s `FlowPool` columns and moves by `FlowRef`.
//! In pool code (`crates/tcp/src/`, `crates/flowgen/src/`) the rule
//! forbids (a) iterating a `FlowKey`-keyed map — the `by_key` index is
//! a lookup structure; pool slot order is the canonical iteration
//! order, so iterating the map reintroduces the nondeterministic
//! `HashMap` walks (and their `sorted-keys` workarounds) the pool
//! refactor deleted — and (b) `.clone()` / `.cloned()` on bindings that
//! name pooled flow state (`flow`, `endpoint`, `conn`, `sender`,
//! `receiver` stems), which would copy a flow out of its columns.
//! Escape hatch: `// lint: allow(flow-clone): <reason>`.
//!
//! Token patterns caught (alias-unaware on purpose — `Packet` is never
//! re-aliased in this workspace):
//!
//! 1. `Packet::clone(..)` / `<Packet as Clone>::clone(..)` — an explicit
//!    path call through the type.
//! 2. `.clone()` / `.cloned()` whose receiver token names a packet
//!    (`pkt`, `packet`, or any ident containing those stems, e.g.
//!    `in_flight_pkt`).
//!
//! Scope: library paths only, `#[cfg(test)]` bodies excluded (tests
//! build fixtures by value).
//!
//! Escape hatch: `// lint: allow(packet-clone): <reason>` on the
//! offending line or the line above, mirroring the panic rule.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const RULE: &str = "arena/no-packet-clone";
const FLOW_RULE: &str = "arena/no-flow-clone";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(packet-clone)";

/// The flow rule's escape-hatch annotation.
pub const FLOW_ALLOW: &str = "lint: allow(flow-clone)";

/// True if `text` names a packet binding by convention.
fn names_packet(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("pkt") || lower.contains("packet")
}

/// True if `text` names pooled flow state by convention.
fn names_flow(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    ["flow", "endpoint", "conn", "sender", "receiver"]
        .iter()
        .any(|stem| lower.contains(stem))
}

/// Method names that walk a map's entries.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// `arena/no-packet-clone`.
pub fn no_packet_clone(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    let class = PathClass::of(file);
    if !class.is_library_src() || class.is_arena_module() {
        return;
    }
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident || (t.text != "clone" && t.text != "cloned") {
            continue;
        }
        if file.ctx.get(i).is_some_and(|c| c.in_cfg_test) {
            continue;
        }
        if file.ctext(i + 1) != "(" {
            continue;
        }
        let what = match file.ctext(i.wrapping_sub(1)) {
            // `Packet::clone(..)` or `<Packet as Clone>::clone(..)`.
            ":" if t.text == "clone" && file.ctext(i.wrapping_sub(3)) == "Packet" => {
                Some("Packet::clone(..)".to_string())
            }
            // `.clone()` / `.cloned()` on a packet-named receiver. The
            // receiver is the ident two tokens back, possibly behind a
            // closing `)` / `]` of a call or index chain — only the
            // plain-ident form is checked; chained calls go through the
            // explicit-path pattern or the receiver's own name.
            "." => {
                let recv = file.ctext(i.wrapping_sub(2));
                if names_packet(recv) {
                    Some(format!("{recv}.{}()", t.text))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = what {
            if file.line_or_above_contains(t.line, ALLOW) {
                continue;
            }
            out.push(finding_at(
                file,
                i,
                RULE,
                Severity::Warning,
                format!(
                    "{what} copies a packet body outside the arena — move the \
                     PacketRef handle instead, or snapshot via \
                     PacketArena::snapshot_packet; if the copy is deliberate, \
                     annotate with `// {ALLOW}: <reason>`"
                ),
            ));
        }
    }
}

/// `arena/no-flow-clone`.
pub fn no_flow_clone(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    let class = PathClass::of(file);
    if !class.is_flow_pool_scope() {
        return;
    }
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident {
            continue;
        }
        if file.ctx.get(i).is_some_and(|c| c.in_cfg_test) {
            continue;
        }
        // (a) `for .. in ..by_key.. {` — a loop over the lookup index.
        // The pattern window is bounded: destructuring heads and the
        // iterated expression are short in practice.
        if t.text == "for" {
            let Some(at) = for_loop_over_by_key(file, i) else {
                continue;
            };
            let tk = file.ct(at);
            if !file.line_or_above_contains(tk.line, FLOW_ALLOW) {
                out.push(finding_at(
                    file,
                    at,
                    FLOW_RULE,
                    Severity::Warning,
                    format!(
                        "loop iterates the FlowKey-keyed index — `by_key` is a \
                         lookup structure; pool slot order (FlowPool::iter_refs) \
                         is the canonical iteration order; if the walk is \
                         deliberate, annotate with `// {FLOW_ALLOW}: <reason>`"
                    ),
                ));
            }
            continue;
        }
        let method_call = file.ctext(i + 1) == "(" && file.ctext(i.wrapping_sub(1)) == ".";
        if !method_call {
            continue;
        }
        let recv = file.ctext(i.wrapping_sub(2));
        // (b) iteration methods on the index.
        if ITER_METHODS.contains(&t.text) && recv.contains("by_key") {
            if file.line_or_above_contains(t.line, FLOW_ALLOW) {
                continue;
            }
            out.push(finding_at(
                file,
                i,
                FLOW_RULE,
                Severity::Warning,
                format!(
                    "{recv}.{}() iterates the FlowKey-keyed index — `by_key` is \
                     a lookup structure; pool slot order (FlowPool::iter_refs) \
                     is the canonical iteration order; if the walk is \
                     deliberate, annotate with `// {FLOW_ALLOW}: <reason>`",
                    t.text
                ),
            ));
            continue;
        }
        // (c) by-value clones of pooled flow state.
        if (t.text == "clone" || t.text == "cloned") && names_flow(recv) {
            if file.line_or_above_contains(t.line, FLOW_ALLOW) {
                continue;
            }
            out.push(finding_at(
                file,
                i,
                FLOW_RULE,
                Severity::Warning,
                format!(
                    "{recv}.{}() copies pooled flow state by value — move the \
                     FlowRef handle instead; if the copy is deliberate, \
                     annotate with `// {FLOW_ALLOW}: <reason>`",
                    t.text
                ),
            ));
        }
    }
}

/// For a `for` keyword at code index `i`, the code index of a token
/// naming `by_key` inside the loop's iterated expression, if any.
fn for_loop_over_by_key(file: &ScannedFile<'_>, i: usize) -> Option<usize> {
    let mut j = i + 1;
    // Find the `in` separating the pattern from the expression.
    loop {
        if j >= file.code.len() || j - i > 24 {
            return None;
        }
        let tj = file.ct(j);
        if tj.kind == TokKind::Ident && tj.text == "in" {
            break;
        }
        if tj.text == "{" {
            return None;
        }
        j += 1;
    }
    // Scan the expression up to the body brace.
    let start = j;
    j += 1;
    while j < file.code.len() && j - start <= 24 {
        let tj = file.ct(j);
        if tj.text == "{" {
            return None;
        }
        if tj.kind == TokKind::Ident && tj.text.contains("by_key") {
            return Some(j);
        }
        j += 1;
    }
    None
}
