//! `cast/lossy-in-digest`: `as u64` / `as f64` casts inside digest
//! paths silently truncate (`f64 as u64` drops the fraction and
//! saturates) or round (`u64 as f64` loses low bits above 2^53) — and
//! a digest that loses bits can call two *different* states "equal",
//! which is the one lie the record/replay subsystem must never tell.
//!
//! Scope: the digest-defining locations — `crates/replay/src/**` and
//! `crates/stats/src/digest.rs` — and within those only the contexts
//! that feed digests: bodies of `fn state_digest` / `fn state_hash` /
//! `fn config_digest`, `impl StateHash` blocks, and the
//! `impl StateDigest` primitive layer itself.
//!
//! The fix is to use the typed `StateDigest::write_*` methods (which
//! centralize the widening in one audited place) or `f64::to_bits`.
//! Escape hatch: `// lint: allow(cast): <reason>` on the line or the
//! line above — the `StateDigest` primitives themselves carry these,
//! with the losslessness argument spelled out per line.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::scan::ScannedFile;

const RULE: &str = "cast/lossy-in-digest";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(cast)";

const DIGEST_FNS: &[&str] = &["state_digest", "state_hash", "config_digest"];
const DIGEST_IMPLS: &[&str] = &["StateHash", "StateDigest"];

/// `cast/lossy-in-digest`.
pub fn lossy_in_digest(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    if !PathClass::of(file).is_digest_scope() {
        return;
    }
    for i in 0..file.code.len() {
        if file.ctext(i) != "as" {
            continue;
        }
        let target = file.ctext(i + 1);
        if target != "u64" && target != "f64" {
            continue;
        }
        let in_digest_fn = file
            .enclosing_fn(i)
            .is_some_and(|name| DIGEST_FNS.contains(&name));
        let in_digest_impl = file.enclosing_impl(i).is_some_and(|im| {
            im.trait_name
                .as_deref()
                .is_some_and(|t| DIGEST_IMPLS.contains(&t))
                || DIGEST_IMPLS.contains(&im.type_name.as_str())
        });
        if !in_digest_fn && !in_digest_impl {
            continue;
        }
        let t = file.ct(i);
        if file.line_or_above_contains(t.line, ALLOW) {
            continue;
        }
        out.push(finding_at(
            file,
            i,
            RULE,
            Severity::Warning,
            format!(
                "`as {target}` in a digest path can lose bits — use the typed \
                 StateDigest::write_* methods or to_bits(), or annotate with \
                 `// {ALLOW}: <reason>` if the widening is provably lossless"
            ),
        ));
    }
}
