//! The shipped rules and the per-file entry point.
//!
//! | id | severity | guards |
//! |----|----------|--------|
//! | `determinism/wall-clock` | error | no `std::time::Instant` / `SystemTime` in library code, alias-aware |
//! | `determinism/ambient-rng` | error | no `rand` crate / `thread_rng` / `OsRng` in library code |
//! | `hash/unordered-iter` | error | no unordered-container iteration feeding `state_digest` / `state_hash`; no `HashMap`/`HashSet` in `crates/replay` at all |
//! | `panic/library-unwrap` | warning | no `unwrap` / `expect` / `panic!` in library paths outside `#[cfg(test)]` |
//! | `cast/lossy-in-digest` | warning | no `as u64` / `as f64` inside digest/StateHash paths |
//! | `docs/missing-deny` | warning | every library crate root carries `#![deny(missing_docs)]` |
//! | `arena/no-packet-clone` | warning | no `Packet` clones outside `crates/netsim/src/arena.rs` — packets move by handle |
//! | `arena/no-flow-clone` | warning | no FlowKey-keyed map iteration or by-value flow clones in pool code (`crates/tcp/src/`, `crates/flowgen/src/`) — flows move by `FlowRef` |
//! | `parallel/no-shared-mut` | error | no `unsafe` / `static mut` / `UnsafeCell` / `Cell` / `RefCell` / `Rc` / `transmute` in `crates/netsim/src/parallel/` — `std::sync` only |
//! | `determinism/transitive-wall-clock` | error | nothing outside the quarantine *reaches* a wall-clock read through the call graph |
//! | `determinism/transitive-rng` | error | nothing outside the quarantine reaches an ambient randomness source |
//! | `parallel/lock-order` | error | lock-acquisition order is acyclic across the concurrent subsystems, composed through calls |
//! | `parallel/transitive-shared-mut` | error | the shared-mut ban extends to everything reachable *from* the parallel engine |
//!
//! The first nine are per-file token rules ([`FILE_RULES`]); the last
//! four run over the whole-workspace [`Analysis`] — symbol graph, call
//! graph, taint — and report witness call chains ([`GRAPH_RULES`]).
//!
//! Sanctioned escapes (documented per rule): `crates/bench/` and
//! `crates/telemetry/src/wallclock.rs` for the determinism rules
//! (direct and transitive); `sorted` / `write_unordered` markers for
//! the hash rule; `// lint: allow(panic)`, `// lint: allow(cast)`,
//! `// lint: allow(packet-clone)`, `// lint: allow(flow-clone)`, and
//! `// lint: allow(shared-mut)`
//! line annotations for the panic, cast, arena, and parallel rules;
//! per-item `// lint: allow(transitive-wall-clock)` /
//! `(transitive-rng)` / `(transitive-shared-mut)` / `(lock-order)`
//! annotations for the graph rules.

pub mod arena;
pub mod casts;
pub mod determinism;
pub mod docs;
pub mod hash;
pub mod lockorder;
pub mod panics;
pub mod parallel;
pub mod transitive;

use crate::analysis::Analysis;
use crate::findings::{Finding, Severity};
use crate::scan::ScannedFile;

/// Rule ids in a stable order (for reports and summaries).
pub const RULE_IDS: &[&str] = &[
    "determinism/wall-clock",
    "determinism/ambient-rng",
    "hash/unordered-iter",
    "panic/library-unwrap",
    "cast/lossy-in-digest",
    "docs/missing-deny",
    "arena/no-packet-clone",
    "arena/no-flow-clone",
    "parallel/no-shared-mut",
    "determinism/transitive-wall-clock",
    "determinism/transitive-rng",
    "parallel/lock-order",
    "parallel/transitive-shared-mut",
];

/// The per-file token rules, paired with their ids (for per-rule
/// timing in the bench self-profile).
pub const FILE_RULES: &[(&str, fn(&ScannedFile<'_>, &mut Vec<Finding>))] = &[
    ("determinism/wall-clock", determinism::wall_clock),
    ("determinism/ambient-rng", determinism::ambient_rng),
    ("hash/unordered-iter", hash::unordered_iter),
    ("panic/library-unwrap", panics::library_unwrap),
    ("cast/lossy-in-digest", casts::lossy_in_digest),
    ("docs/missing-deny", docs::missing_deny),
    ("arena/no-packet-clone", arena::no_packet_clone),
    ("arena/no-flow-clone", arena::no_flow_clone),
    ("parallel/no-shared-mut", parallel::no_shared_mut),
];

/// The whole-workspace graph rules, paired with their ids.
pub const GRAPH_RULES: &[(&str, fn(&Analysis<'_>, &mut Vec<Finding>))] = &[
    (
        "determinism/transitive-wall-clock",
        transitive::transitive_wall_clock,
    ),
    ("determinism/transitive-rng", transitive::transitive_rng),
    ("parallel/lock-order", lockorder::lock_order),
    (
        "parallel/transitive-shared-mut",
        transitive::transitive_shared_mut,
    ),
];

/// Run every per-file rule over one scanned file.
pub fn check_file(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    for (_, rule) in FILE_RULES {
        rule(file, out);
    }
}

/// Run every graph rule over the workspace analysis.
pub fn check_graph(a: &Analysis<'_>, out: &mut Vec<Finding>) {
    for (_, rule) in GRAPH_RULES {
        rule(a, out);
    }
}

/// Path classification shared by the rules. Paths are repo-relative
/// with `/` separators.
pub(crate) struct PathClass<'a> {
    path: &'a str,
}

impl<'a> PathClass<'a> {
    pub fn of(file: &'a ScannedFile<'_>) -> Self {
        PathClass { path: &file.path }
    }

    /// Classify a bare path (for the graph rules, which work from
    /// symbols rather than scanned files).
    pub fn from_path(path: &'a str) -> Self {
        PathClass { path }
    }

    /// The bench harness: sanctioned to read wall clocks (it times
    /// stages and owns the CLI).
    pub fn is_bench(&self) -> bool {
        self.path.starts_with("crates/bench/")
    }

    /// The explicitly non-deterministic self-profiler module.
    pub fn is_wallclock_module(&self) -> bool {
        self.path == "crates/telemetry/src/wallclock.rs"
    }

    /// Exempt from the determinism rules?
    pub fn determinism_sanctioned(&self) -> bool {
        self.is_bench() || self.is_wallclock_module()
    }

    /// Library source: `crates/<c>/src/**` or the root `src/**`,
    /// excluding `src/bin/` (binaries may panic on bad CLI input).
    pub fn is_library_src(&self) -> bool {
        let in_src = self.path.starts_with("src/")
            || (self.path.starts_with("crates/") && self.path.contains("/src/"));
        in_src && !self.path.contains("/src/bin/")
    }

    /// Inside the record/replay subsystem (unordered containers banned
    /// outright there)?
    pub fn is_replay(&self) -> bool {
        self.path.starts_with("crates/replay/")
    }

    /// The packet arena itself — the one sanctioned `Packet` clone site
    /// (`snapshot_packet`), exempt from `arena/no-packet-clone`.
    pub fn is_arena_module(&self) -> bool {
        self.path == "crates/netsim/src/arena.rs"
    }

    /// Pool code for `arena/no-flow-clone`: the crates whose per-flow
    /// state lives in `FlowPool` columns and moves by `FlowRef`.
    pub fn is_flow_pool_scope(&self) -> bool {
        self.path.starts_with("crates/tcp/src/") || self.path.starts_with("crates/flowgen/src/")
    }

    /// Inside the domain-parallel engine, where `parallel/no-shared-mut`
    /// bans unsynchronized shared mutability outright.
    pub fn is_parallel_engine(&self) -> bool {
        self.path.starts_with("crates/netsim/src/parallel/")
            || self.path.starts_with("crates/supervisord/src/")
    }

    /// A digest-defining file for `cast/lossy-in-digest` scoping.
    pub fn is_digest_scope(&self) -> bool {
        self.path.starts_with("crates/replay/src/") || self.path == "crates/stats/src/digest.rs"
    }

    /// `Some(crate_dir_name)` when this is a library crate root
    /// (`crates/<c>/src/lib.rs`), or `Some("dui")` for the workspace
    /// root `src/lib.rs`.
    pub fn crate_root(&self) -> Option<&'a str> {
        if self.path == "src/lib.rs" {
            return Some("dui");
        }
        let rest = self.path.strip_prefix("crates/")?;
        let (name, tail) = rest.split_once('/')?;
        (tail == "src/lib.rs").then_some(name)
    }
}

/// Construct a finding anchored at code token `i` of `file`.
pub(crate) fn finding_at(
    file: &ScannedFile<'_>,
    i: usize,
    rule: &'static str,
    severity: Severity,
    message: String,
) -> Finding {
    let t = file.ct(i);
    Finding {
        rule,
        severity,
        file: file.path.clone(),
        line: t.line,
        col: t.col,
        message,
        snippet: file.line_text(t.line).to_string(),
        baselined: false,
    }
}
