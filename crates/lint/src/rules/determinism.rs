//! `determinism/wall-clock` and `determinism/ambient-rng`: library
//! code must not read wall clocks or ambient randomness.
//!
//! Every quantitative claim the workspace reproduces rests on
//! simulations being pure functions of `(config, seed)`. These two
//! rules are the token-aware replacements for the old grep gate
//! (`Instant::now|std::time::Instant|SystemTime|thread_rng|rand::`),
//! closing its blind spots:
//!
//! * renamed imports — `use std::time::Instant as Clock;` and
//!   `use std::time as tm; tm::Instant::now()` are caught through the
//!   scanner's alias table;
//! * comments and string literals no longer false-positive (the lexer
//!   never shows them to the rules);
//! * `use std::time::Duration` no longer needs to be avoided — only
//!   the clock types are flagged, not the whole module.
//!
//! Sanctioned escapes, identical to the grep gate: `crates/bench/`
//! (the harness times stages and owns the CLI) and
//! `crates/telemetry/src/wallclock.rs` (the explicitly
//! non-deterministic self-profiler).
//!
//! The raw hit detectors (`wall_clock_hits`, `ambient_rng_hits`)
//! are shared with the transitive taint rules in
//! [`crate::rules::transitive`], which use them as seed sites.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const WALL: &str = "determinism/wall-clock";
const RNG: &str = "determinism/ambient-rng";

/// The forbidden clock types in `std::time`.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

fn is_std_time(path: &[String]) -> bool {
    matches!(path, [a, b, ..] if a == "std" && b == "time")
}

/// Raw wall-clock hits in one file, regardless of path sanctioning:
/// `(code index, what)` pairs, deduped by source position. `what` is
/// the short description the direct rule embeds in its message and
/// the transitive rules embed in seed descriptions.
pub(crate) fn wall_clock_hits(file: &ScannedFile<'_>) -> Vec<(usize, String)> {
    let mut hits: Vec<(usize, String)> = Vec::new();
    let mut seen: Vec<(u32, u32)> = Vec::new();
    let mut push = |i: usize, what: String, hits: &mut Vec<(usize, String)>| {
        let t = file.ct(i);
        if seen.contains(&(t.line, t.col)) {
            return;
        }
        seen.push((t.line, t.col));
        hits.push((i, what));
    };

    // (a) Imports of the clock types, under any alias, incl. globs of
    // the whole module.
    for u in &file.uses {
        let from_std_time = is_std_time(&u.path);
        let imports_clock = from_std_time
            && u.path
                .last()
                .is_some_and(|s| CLOCK_TYPES.contains(&s.as_str()) || u.local == "*");
        if imports_clock {
            // Anchor on the matching code token (the alias or segment).
            if let Some(i) = (0..file.code.len()).find(|&i| {
                let t = file.ct(i);
                t.line == u.line && t.col == u.col
            }) {
                push(
                    i,
                    format!("imports wall-clock type `{}`", u.path.join("::")),
                    &mut hits,
                );
            }
        }
    }

    // (b)-(d) Path-expression forms.
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident {
            continue;
        }
        // (b) Fully-qualified `std::time::Instant` / `::SystemTime`.
        if t.text == "std"
            && file.path_sep(i + 1)
            && file.ctext(i + 3) == "time"
            && file.path_sep(i + 4)
            && CLOCK_TYPES.contains(&file.ctext(i + 6))
        {
            push(i, format!("uses `std::time::{}`", file.ctext(i + 6)), &mut hits);
            continue;
        }
        // (c) Bare `Instant::now` / `SystemTime::now`.
        if CLOCK_TYPES.contains(&t.text) && file.path_sep(i + 1) && file.ctext(i + 3) == "now" {
            push(i, format!("calls `{}::now`", t.text), &mut hits);
            continue;
        }
        // (d) Through aliases: `Clock::now` where `use … as Clock`, or
        // `tm::Instant` where `use std::time as tm`.
        if file.path_sep(i + 1) {
            if let Some(u) = file.resolve_use(t.text) {
                let aliased_clock = is_std_time(&u.path)
                    && u.path.last().is_some_and(|s| CLOCK_TYPES.contains(&s.as_str()));
                let module_alias = u.path.len() == 2 && is_std_time(&u.path);
                if aliased_clock {
                    push(
                        i,
                        format!("`{}` aliases `{}`", t.text, u.path.join("::")),
                        &mut hits,
                    );
                } else if module_alias && CLOCK_TYPES.contains(&file.ctext(i + 3)) {
                    push(
                        i,
                        format!("`{}::{}` resolves to std::time", t.text, file.ctext(i + 3)),
                        &mut hits,
                    );
                }
            }
        }
    }
    hits
}

/// `determinism/wall-clock`.
pub fn wall_clock(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    if PathClass::of(file).determinism_sanctioned() {
        return;
    }
    for (i, what) in wall_clock_hits(file) {
        out.push(finding_at(
            file,
            i,
            WALL,
            Severity::Error,
            format!(
                "{what} — library code must be a pure function of (config, seed); \
                 simulated time comes from SimTime, wall-clock timing belongs in \
                 crates/bench or telemetry::wallclock"
            ),
        ));
    }
}

/// Raw ambient-randomness hits in one file, regardless of path
/// sanctioning: `(code index, what)` pairs, deduped by position.
pub(crate) fn ambient_rng_hits(file: &ScannedFile<'_>) -> Vec<(usize, String)> {
    let mut hits: Vec<(usize, String)> = Vec::new();
    let mut seen: Vec<(u32, u32)> = Vec::new();
    // Ambient randomness entry points, caught as bare identifiers. The
    // full-token match means `strand` or `thread_rng_like` never
    // false-positive the way the old substring grep could.
    const AMBIENT_IDENTS: &[&str] = &["thread_rng", "OsRng", "getrandom", "from_entropy"];
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = if AMBIENT_IDENTS.contains(&t.text) {
            Some(format!("uses ambient randomness source `{}`", t.text))
        } else if t.text == "rand" && file.path_sep(i + 1) {
            Some("uses the `rand` crate".to_string())
        } else if file.path_sep(i + 1) {
            file.resolve_use(t.text)
                .filter(|u| u.path.first().is_some_and(|s| s == "rand"))
                .map(|u| format!("`{}` aliases `{}`", t.text, u.path.join("::")))
        } else {
            None
        };
        if let Some(what) = hit {
            if !seen.contains(&(t.line, t.col)) {
                seen.push((t.line, t.col));
                hits.push((i, what));
            }
        }
    }
    // Imports rooted at the rand crate (aliased leaves are caught
    // above on use; the import itself is the declaration of intent).
    for u in &file.uses {
        if u.path.first().is_some_and(|s| s == "rand") {
            if let Some(i) = (0..file.code.len()).find(|&i| {
                let t = file.ct(i);
                t.line == u.line && t.col == u.col
            }) {
                let t = file.ct(i);
                if !seen.contains(&(t.line, t.col)) {
                    seen.push((t.line, t.col));
                    hits.push((i, format!("imports `{}`", u.path.join("::"))));
                }
            }
        }
    }
    hits
}

/// `determinism/ambient-rng`.
pub fn ambient_rng(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    if PathClass::of(file).determinism_sanctioned() {
        return;
    }
    for (i, what) in ambient_rng_hits(file) {
        out.push(finding_at(
            file,
            i,
            RNG,
            Severity::Error,
            format!(
                "{what} — all randomness must flow from the seeded dui_stats::Rng so \
                 runs replay bit-identically"
            ),
        ));
    }
}
