//! `parallel/no-shared-mut`: the domain-parallel engine under
//! `crates/netsim/src/parallel/` and the streaming detection pipeline
//! under `crates/supervisord/src/` must not smuggle in unsynchronized
//! shared mutability.
//!
//! The parallel engine's determinism proof rests on a simple discipline:
//! during a window, workers touch only domain-owned state; everything
//! crossing domains moves through the single-threaded barrier. The safe
//! way to express that in Rust is ownership plus `std::sync` primitives
//! (`Mutex`, `Barrier`, `Arc` over immutable data) — which the borrow
//! checker then enforces. What this rule bans are the constructs that
//! opt *out* of that enforcement:
//!
//! * `unsafe` blocks/fns (including `transmute`) — sidestep the borrow
//!   checker entirely;
//! * `static mut` — ambient shared mutability, racy by construction;
//! * `UnsafeCell` — raw interior mutability;
//! * `Cell` / `RefCell` / `Rc` — single-threaded interior mutability
//!   and shared ownership; `!Sync`/`!Send`, so smuggling one across the
//!   worker boundary requires an `unsafe impl` that would lie about it.
//!
//! `std::sync` types are explicitly fine and deliberately not matched.
//!
//! Escape hatch: `// lint: allow(shared-mut): <reason>` on the
//! offending line or the line above, for the rare case where an audited
//! exception is genuinely needed.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const RULE: &str = "parallel/no-shared-mut";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(shared-mut)";

/// Type/function names whose bare appearance is a violation (also
/// matched by `parallel/transitive-shared-mut` outside the engine).
pub(crate) const BANNED_IDENTS: &[&str] = &["UnsafeCell", "RefCell", "Cell", "Rc", "transmute"];

/// `parallel/no-shared-mut`.
pub fn no_shared_mut(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    if !PathClass::of(file).is_parallel_engine() {
        return;
    }
    let push = |i: usize, what: &str, out: &mut Vec<Finding>| {
        let t = file.ct(i);
        if file.line_or_above_contains(t.line, ALLOW) {
            return;
        }
        out.push(finding_at(
            file,
            i,
            RULE,
            Severity::Error,
            format!(
                "{what} in the parallel engine — domain state must be owned by \
                 exactly one worker per window, with cross-domain effects routed \
                 through the barrier; use ownership or std::sync, or annotate with \
                 `// {ALLOW}: <reason>`"
            ),
        ));
    };
    for i in 0..file.code.len() {
        let t = file.ct(i);
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "unsafe" {
            push(i, "`unsafe` code", out);
        } else if t.text == "static" && file.ctext(i + 1) == "mut" {
            push(i, "`static mut`", out);
        } else if BANNED_IDENTS.contains(&t.text) {
            // `Rc::new(...)`, `RefCell<...>`, `use std::cell::Cell`,
            // `mem::transmute(...)` — any appearance counts; there is no
            // benign use of these names inside the parallel engine.
            push(i, &format!("`{}`", t.text), out);
        }
    }
}
