//! Interprocedural rules: `determinism/transitive-wall-clock`,
//! `determinism/transitive-rng`, and `parallel/transitive-shared-mut`.
//!
//! The token-level determinism rules catch the function that calls
//! `Instant::now()`. These rules catch everything that *reaches* it:
//! a helper that launders a wall-clock read through two crates of
//! innocent-looking plumbing taints every caller on the path, and each
//! tainted function is reported with the exact witness call chain that
//! connects it to the seed. The chain is deterministic — the taint
//! engine ([`crate::taint`]) always picks the minimum-depth,
//! minimum-id path — so findings (and the baseline) are byte-stable.
//!
//! Flow directions differ per family:
//!
//! * clock/rng taint flows **caller-ward** ([`reach_callers`]): the
//!   seed is the function containing the forbidden read, and anything
//!   that can call into it inherits the impurity. Quarantine files
//!   (`crates/bench/`, `telemetry::wallclock`) and `#[cfg(test)]`
//!   items are barriers — a bench stage may time whatever it likes.
//! * shared-mut taint flows **callee-ward** ([`reach_callees`]): the
//!   seeds are the parallel-engine entry points, and anything they
//!   reach runs under the engine's ownership discipline even when it
//!   lives outside the engine's directories, so the banned constructs
//!   (`unsafe`, `static mut`, `RefCell`, …) are banned there too.
//!
//! Escape hatches are per *item*, not per line: `// lint:
//! allow(transitive-wall-clock): <reason>` (resp. `transitive-rng`,
//! `transitive-shared-mut`) on the line(s) above a `fn` both silences
//! the finding on that function and stops propagation through it.

use super::{determinism, parallel, PathClass};
use crate::analysis::Analysis;
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;
use crate::taint::{reach_callees, reach_callers};
use std::collections::BTreeMap;

const WALL: &str = "determinism/transitive-wall-clock";
const RNG: &str = "determinism/transitive-rng";
const SHARED: &str = "parallel/transitive-shared-mut";

/// Construct a finding at an explicit position in `sid`'s file.
fn finding_for(
    a: &Analysis<'_>,
    sid: u32,
    line: u32,
    col: u32,
    rule: &'static str,
    message: String,
) -> Option<Finding> {
    let file = a.file_of(sid)?;
    Some(Finding {
        rule,
        severity: Severity::Error,
        file: file.scan.path.clone(),
        line,
        col,
        message,
        snippet: file.scan.line_text(line).to_string(),
        baselined: false,
    })
}

/// Shared engine for the clock/rng pair: seed at per-file token hits,
/// propagate caller-ward, report every non-seed tainted symbol with
/// its witness chain. (Seeds themselves are the direct rules' job.)
fn transitive_from_hits(
    a: &Analysis<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    allow: &str,
    hits: &dyn Fn(&ScannedFile<'_>) -> Vec<(usize, String)>,
    reaches: &str,
    remedy: &str,
) {
    // Seed descriptions: symbol id -> what its body does, taken from
    // the first (lowest-position) hit inside the symbol.
    let mut seed_desc: BTreeMap<u32, String> = BTreeMap::new();
    for (fi, file) in a.files.iter().enumerate() {
        if PathClass::from_path(&file.scan.path).determinism_sanctioned() {
            continue;
        }
        for (i, what) in hits(&file.scan) {
            let owner = file.owner.get(i).copied().unwrap_or(0);
            if owner == 0 {
                // File-level hit (a `use`, a const initializer): no
                // function to taint; the direct rule already flags it.
                continue;
            }
            let Some(sid) = a.symbols.id_of(fi as u32, owner) else {
                continue;
            };
            if a.symbols
                .symbols
                .get(sid as usize)
                .is_some_and(|s| s.cfg_test)
            {
                continue;
            }
            seed_desc.entry(sid).or_insert(what);
        }
    }
    let seeds: Vec<u32> = seed_desc.keys().copied().collect();
    let blocked = |sid: u32| -> bool {
        let Some(s) = a.symbols.symbols.get(sid as usize) else {
            return true;
        };
        if s.cfg_test {
            return true;
        }
        let Some(f) = a.files.get(s.file_idx as usize) else {
            return true;
        };
        if PathClass::from_path(&f.scan.path).determinism_sanctioned() {
            return true;
        }
        a.item_allows(sid).iter().any(|al| al == allow)
    };
    let taint = reach_callers(&a.graph, &seeds, &blocked);
    for (&sid, tr) in &taint {
        let Some((_, line, col)) = tr.via else {
            continue;
        };
        let chain = a.chain(sid, &taint);
        let Some(&seed) = chain.last() else {
            continue;
        };
        let desc = seed_desc.get(&seed).map_or("", String::as_str);
        let msg = format!(
            "`{}` reaches {reaches} through its call graph: {}; `{}` {desc} — \
             {remedy}, or annotate the item with `// lint: allow({allow}): <reason>`",
            a.path_of(sid),
            a.chain_str(&chain),
            a.path_of(seed),
        );
        if let Some(f) = finding_for(a, sid, line, col, rule, msg) {
            out.push(f);
        }
    }
}

/// `determinism/transitive-wall-clock`.
pub fn transitive_wall_clock(a: &Analysis<'_>, out: &mut Vec<Finding>) {
    transitive_from_hits(
        a,
        out,
        WALL,
        "transitive-wall-clock",
        &determinism::wall_clock_hits,
        "a wall-clock read",
        "library code must be a pure function of (config, seed); quarantine \
         timing in crates/bench or telemetry::wallclock",
    );
}

/// `determinism/transitive-rng`.
pub fn transitive_rng(a: &Analysis<'_>, out: &mut Vec<Finding>) {
    transitive_from_hits(
        a,
        out,
        RNG,
        "transitive-rng",
        &determinism::ambient_rng_hits,
        "an ambient randomness source",
        "all randomness must flow from the seeded dui_stats::Rng so runs \
         replay bit-identically",
    );
}

/// `parallel/transitive-shared-mut`: the banned shared-mutability
/// constructs, checked in everything *reachable from* the parallel
/// engine, not just inside its directories.
pub fn transitive_shared_mut(a: &Analysis<'_>, out: &mut Vec<Finding>) {
    let mut seeds: Vec<u32> = Vec::new();
    for (sid, s) in a.symbols.symbols.iter().enumerate() {
        if s.cfg_test {
            continue;
        }
        let Some(f) = a.files.get(s.file_idx as usize) else {
            continue;
        };
        if PathClass::from_path(&f.scan.path).is_parallel_engine() {
            seeds.push(sid as u32);
        }
    }
    let blocked =
        |sid: u32| -> bool { !a.symbols.symbols.get(sid as usize).is_some_and(|s| !s.cfg_test) };
    let taint = reach_callees(&a.graph, &seeds, &blocked);
    for (&sid, tr) in &taint {
        if tr.via.is_none() {
            continue; // engine-internal: the file rule covers it
        }
        let Some(pf) = a.file_of(sid) else {
            continue;
        };
        if PathClass::from_path(&pf.scan.path).is_parallel_engine() {
            continue; // ditto — reached but already in scope
        }
        if a.item_allows(sid)
            .iter()
            .any(|al| al == "transitive-shared-mut")
        {
            continue;
        }
        let Some(sym) = a.symbols.symbols.get(sid as usize) else {
            continue;
        };
        let mut chain = a.chain(sid, &taint);
        chain.reverse(); // entry -> … -> sid
        let entry = chain.first().copied().unwrap_or(sid);
        let chain_s = a.chain_str(&chain);
        // Scan exactly the tokens owned by this item (the `owner`
        // partition keeps nested fns from double-reporting).
        for i in 0..pf.scan.code.len() {
            if pf.owner.get(i).copied().unwrap_or(0) != sym.item_idx {
                continue;
            }
            let t = pf.scan.ct(i);
            if t.kind != TokKind::Ident {
                continue;
            }
            let what = if t.text == "unsafe" {
                Some("`unsafe` code".to_string())
            } else if t.text == "static" && pf.scan.ctext(i + 1) == "mut" {
                Some("`static mut`".to_string())
            } else if parallel::BANNED_IDENTS.contains(&t.text) {
                Some(format!("`{}`", t.text))
            } else {
                None
            };
            let Some(what) = what else { continue };
            if pf.scan.line_or_above_contains(t.line, parallel::ALLOW) {
                continue;
            }
            let msg = format!(
                "{what} in `{}`, which runs under the parallel engine: {chain_s}; \
                 `{}` is an engine entry point — code reachable from the engine \
                 must honor its ownership discipline; use ownership or std::sync, \
                 or annotate the item with `// lint: allow(transitive-shared-mut): \
                 <reason>`",
                a.path_of(sid),
                a.path_of(entry),
            );
            if let Some(f) = finding_for(a, sid, t.line, t.col, SHARED, msg) {
                out.push(f);
            }
        }
    }
}
