//! `hash/unordered-iter`: a `StateHash` digest must never fold
//! unordered-container iteration, or the "same" state hashes
//! differently across runs.
//!
//! Replaces the old awk brace-counting heuristic with the scanner's
//! real function-boundary tracking. Two sub-rules, same as before:
//!
//! 1. `crates/replay` (the subsystem defining the digests) must not
//!    use `HashMap` / `HashSet` at all — everything it hashes is
//!    Vec-shaped.
//! 2. Inside any `fn state_digest` / `fn state_hash` body, map/set
//!    iteration (`.keys()`, `.values()`, or a `HashMap` / `HashSet`
//!    mention — alias-aware) is forbidden unless the line or the one
//!    above carries a `sorted` marker (a call like `flows_sorted()`,
//!    or a comment) or goes through `write_unordered`, the commutative
//!    fold built for exactly this case.

use super::{finding_at, PathClass};
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;

const RULE: &str = "hash/unordered-iter";

const UNORDERED: &[&str] = &["HashMap", "HashSet"];
const DIGEST_FNS: &[&str] = &["state_digest", "state_hash"];

fn names_unordered(file: &ScannedFile<'_>, i: usize) -> Option<&'static str> {
    let t = file.ct(i);
    if t.kind != TokKind::Ident {
        return None;
    }
    if let Some(n) = UNORDERED.iter().find(|n| **n == t.text) {
        return Some(n);
    }
    // Aliased: `use std::collections::HashMap as Map;`
    file.resolve_use(t.text)
        .and_then(|u| u.path.last())
        .and_then(|last| UNORDERED.iter().find(|n| **n == last.as_str()))
        .copied()
}

/// `hash/unordered-iter`.
pub fn unordered_iter(file: &ScannedFile<'_>, out: &mut Vec<Finding>) {
    let class = PathClass::of(file);
    let in_replay = class.is_replay();
    for i in 0..file.code.len() {
        let t = file.ct(i);
        // Sub-rule 1: unordered containers banned outright in replay.
        if in_replay {
            if let Some(n) = names_unordered(file, i) {
                out.push(finding_at(
                    file,
                    i,
                    RULE,
                    Severity::Error,
                    format!(
                        "`{n}` is banned in crates/replay — everything the record/replay \
                         subsystem hashes is Vec-shaped (see docs/determinism.md, D3)"
                    ),
                ));
                continue;
            }
        }
        // Sub-rule 2: unordered iteration inside digest fn bodies.
        let in_digest_fn = file
            .enclosing_fn(i)
            .is_some_and(|name| DIGEST_FNS.contains(&name));
        if !in_digest_fn {
            continue;
        }
        let offending = if t.kind == TokKind::Ident
            && (t.text == "keys" || t.text == "values")
            && file.ctext(i.wrapping_sub(1)) == "."
            && file.ctext(i + 1) == "("
        {
            Some(format!(".{}() iteration", t.text))
        } else {
            names_unordered(file, i).map(|n| format!("`{n}` mention"))
        };
        if let Some(what) = offending {
            let suppressed = file.line_or_above_contains(t.line, "sorted")
                || file.line_or_above_contains(t.line, "write_unordered");
            if !suppressed {
                out.push(finding_at(
                    file,
                    i,
                    RULE,
                    Severity::Error,
                    format!(
                        "{what} inside `{}` feeds unordered iteration into a StateHash \
                         digest — sort first (`*_sorted`) or fold via \
                         StateDigest::write_unordered",
                        file.enclosing_fn(i).unwrap_or(DIGEST_FNS[0]),
                    ),
                ));
            }
        }
    }
}
