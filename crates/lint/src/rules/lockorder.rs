//! `parallel/lock-order`: cyclic lock-acquisition orders across the
//! concurrent subsystems are deadlocks waiting for the right
//! interleaving.
//!
//! Scope: the domain-parallel engine (`crates/netsim/src/parallel/`),
//! the streaming detection pipeline (`crates/supervisord/src/`), and
//! the bounded telemetry channel (`crates/telemetry/src/channel.rs`)
//! — the three places in the workspace where `std::sync` guards
//! actually contend.
//!
//! Per function the rule recovers the *lock-acquisition sequence*: a
//! `.lock()` call is an acquisition of a named lock identity (the
//! receiver chain, `self` replaced by the impl type, index
//! expressions collapsed — `self.slots[i]` and `self.slots[j]` are
//! the same identity), and the guard is held
//!
//! * to the end of the enclosing block when `let`-bound (honoring an
//!   explicit `drop(guard)`), or
//! * to the end of the statement when used as a temporary
//!   (`x.lock().push(…)`).
//!
//! Acquiring `B` while holding `A` records the order edge `A -> B`.
//! Sequences compose through the call graph: calling `f()` while
//! holding `A` adds `A -> L` for every lock in `f`'s transitive
//! acquisition summary, so a cycle split across two crates is still a
//! cycle. Distinct-identity cycles in the resulting order graph are
//! reported once each, with every constituent edge's witness site.
//! Self-edges are deliberately not reported: `slots[i]` vs `slots[j]`
//! collapse to one identity, and flagging `A -> A` would false-positive
//! every sharded-slot pattern the engine is built on.
//!
//! Escape hatch: `// lint: allow(lock-order): <reason>` on the
//! acquisition line (or the line above) drops that acquisition from
//! the analysis.

use crate::analysis::Analysis;
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::scan::ScannedFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const RULE: &str = "parallel/lock-order";

/// The escape-hatch annotation.
pub const ALLOW: &str = "lint: allow(lock-order)";

/// Files whose lock acquisitions participate in the order graph.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/netsim/src/parallel/")
        || path.starts_with("crates/supervisord/src/")
        || path == "crates/telemetry/src/channel.rs"
}

/// One order edge `from -> to` with its witness site.
struct EdgeInfo {
    file: String,
    line: u32,
    col: u32,
    holder: u32,
    via: Option<u32>,
}

/// `parallel/lock-order`.
pub fn lock_order(a: &Analysis<'_>, out: &mut Vec<Finding>) {
    let n = a.symbols.symbols.len();
    // Per symbol: locks it acquires directly.
    let mut own: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    // `held -> acquired` pairs observed directly, with acquire sites.
    let mut acquire_edges: Vec<(String, String, u32, u32, u32)> = Vec::new();
    // Calls made while holding a lock: `(sid, held, target, line, col)`.
    let mut call_holds: Vec<(u32, String, u32, u32, u32)> = Vec::new();

    for (sid, sym) in a.symbols.symbols.iter().enumerate() {
        if sym.cfg_test {
            continue;
        }
        let Some(pf) = a.files.get(sym.file_idx as usize) else {
            continue;
        };
        if !in_scope(&pf.scan.path) {
            continue;
        }
        let Some(item) = pf.items.get(sym.item_idx as usize) else {
            continue;
        };
        let Some((b0, b1)) = item.body else {
            continue;
        };
        walk_body(
            a,
            sid as u32,
            sym.self_type.as_deref(),
            &pf.scan,
            b0,
            b1,
            &mut own[sid],
            &mut acquire_edges,
            &mut call_holds,
        );
    }

    // Transitive acquisition summaries: own locks plus everything
    // reachable through callees, to a fixed point (bounded — the
    // lattice height is the number of distinct lock identities).
    let mut summary = own;
    for _ in 0..=n {
        let mut changed = false;
        for sid in 0..n {
            let mut add: Vec<String> = Vec::new();
            for e in a.graph.callees.get(sid).into_iter().flatten() {
                let Some(other) = summary.get(e.other as usize) else {
                    continue;
                };
                for l in other {
                    if !summary[sid].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            for l in add {
                if summary[sid].insert(l) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // The lock-order graph, min witness site per edge.
    let mut adj: BTreeMap<String, BTreeMap<String, EdgeInfo>> = BTreeMap::new();
    let mut insert = |from: &str, to: &str, info: EdgeInfo| {
        let slot = adj
            .entry(from.to_string())
            .or_default()
            .entry(to.to_string());
        match slot {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(info);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let cur = o.get();
                if (info.file.as_str(), info.line, info.col)
                    < (cur.file.as_str(), cur.line, cur.col)
                {
                    o.insert(info);
                }
            }
        }
    };
    for (held, lock, sid, line, col) in &acquire_edges {
        let file = a.file_of(*sid).map_or(String::new(), |f| f.scan.path.clone());
        insert(
            held,
            lock,
            EdgeInfo {
                file,
                line: *line,
                col: *col,
                holder: *sid,
                via: None,
            },
        );
    }
    for (sid, held, target, line, col) in &call_holds {
        let Some(locks) = summary.get(*target as usize) else {
            continue;
        };
        for lock in locks {
            if lock == held {
                continue;
            }
            let file = a.file_of(*sid).map_or(String::new(), |f| f.scan.path.clone());
            insert(
                held,
                lock,
                EdgeInfo {
                    file,
                    line: *line,
                    col: *col,
                    holder: *sid,
                    via: Some(*target),
                },
            );
        }
    }

    // Shortest cycle through each node, canonicalized and deduped.
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        if let Some(cycle) = shortest_cycle(&adj, start) {
            cycles.insert(canonical(cycle));
        }
    }

    for cycle in &cycles {
        let mut segments: Vec<String> = Vec::new();
        let mut anchor: Option<(&str, u32, u32)> = None;
        for k in 0..cycle.len() {
            let from = &cycle[k];
            let to = &cycle[(k + 1) % cycle.len()];
            let Some(info) = adj.get(from).and_then(|m| m.get(to)) else {
                continue;
            };
            let via = info
                .via
                .map_or(String::new(), |t| format!(" via `{}`", a.path_of(t)));
            segments.push(format!(
                "{from} -> {to} at {}:{} in `{}`{via}",
                info.file,
                info.line,
                a.path_of(info.holder),
            ));
            let cand = (info.file.as_str(), info.line, info.col);
            if anchor.map_or(true, |cur| cand < cur) {
                anchor = Some(cand);
            }
        }
        let Some((file, line, col)) = anchor else {
            continue;
        };
        let snippet = a
            .files
            .iter()
            .find(|f| f.scan.path == file)
            .map_or(String::new(), |f| f.scan.line_text(line).to_string());
        out.push(Finding {
            rule: RULE,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col,
            message: format!(
                "lock-order cycle [{}]: {} — lock acquisition order must be \
                 globally consistent; annotate the acquisition with `// lint: \
                 allow(lock-order): <reason>` if the overlap is provably impossible",
                cycle.join(", "),
                segments.join("; "),
            ),
            snippet,
            baselined: false,
        });
    }
}

/// Recover one function's acquisition sequence and call-under-lock
/// events from its body tokens.
#[allow(clippy::too_many_arguments)]
fn walk_body(
    a: &Analysis<'_>,
    sid: u32,
    self_type: Option<&str>,
    scan: &ScannedFile<'_>,
    b0: usize,
    b1: usize,
    own: &mut BTreeSet<String>,
    acquire_edges: &mut Vec<(String, String, u32, u32, u32)>,
    call_holds: &mut Vec<(u32, String, u32, u32, u32)>,
) {
    // Call sites of this symbol, addressed by the callee token position.
    let mut sites: BTreeMap<(u32, u32), &[u32]> = BTreeMap::new();
    for s in a.graph.sites.get(sid as usize).into_iter().flatten() {
        sites.insert((s.line, s.col), &s.targets);
    }
    // Locks held per enclosing block: `(identity, let binding)`.
    let mut blocks: Vec<Vec<(String, Option<String>)>> = vec![Vec::new()];
    // Unbound guard temporaries, live to the end of the statement.
    let mut stmt_locks: Vec<String> = Vec::new();
    // The binding introduced by the current `let` statement, if any.
    let mut stmt_let: Option<String> = None;

    let mut i = b0 + 1;
    while i < b1.min(scan.code.len()) {
        let t = *scan.ct(i);
        match (t.kind, t.text) {
            (TokKind::Punct, "{") => {
                blocks.push(Vec::new());
                stmt_locks.clear();
                stmt_let = None;
            }
            (TokKind::Punct, "}") => {
                if blocks.len() > 1 {
                    blocks.pop();
                } else if let Some(b) = blocks.last_mut() {
                    b.clear();
                }
                stmt_locks.clear();
                stmt_let = None;
            }
            (TokKind::Punct, ";") => {
                stmt_locks.clear();
                stmt_let = None;
            }
            (TokKind::Ident, "let") => {
                // The binding name: first ident after `let`, skipping
                // `mut` and pattern punctuation.
                let mut j = i + 1;
                while j < b1 {
                    let nt = scan.ct(j);
                    if nt.kind == TokKind::Ident && nt.text != "mut" {
                        stmt_let = Some(nt.text.to_string());
                        break;
                    }
                    if nt.kind == TokKind::Punct && matches!(nt.text, "=" | ";") {
                        break;
                    }
                    j += 1;
                }
            }
            (TokKind::Ident, "drop")
                if scan.ctext(i + 1) == "("
                    && scan.ct(i + 2).kind == TokKind::Ident
                    && scan.ctext(i + 3) == ")" =>
            {
                let name = scan.ctext(i + 2);
                for b in blocks.iter_mut() {
                    b.retain(|(_, bind)| bind.as_deref() != Some(name));
                }
            }
            (TokKind::Ident, "lock")
                if scan.ctext(i.wrapping_sub(1)) == "." && scan.ctext(i + 1) == "(" =>
            {
                if !scan.line_or_above_contains(t.line, ALLOW) {
                    let identity = lock_identity(scan, i, self_type, t.line);
                    for (held, _) in blocks.iter().flatten() {
                        if *held != identity {
                            acquire_edges.push((
                                held.clone(),
                                identity.clone(),
                                sid,
                                t.line,
                                t.col,
                            ));
                        }
                    }
                    for held in &stmt_locks {
                        if *held != identity {
                            acquire_edges.push((
                                held.clone(),
                                identity.clone(),
                                sid,
                                t.line,
                                t.col,
                            ));
                        }
                    }
                    own.insert(identity.clone());
                    match &stmt_let {
                        Some(b) => {
                            if let Some(frame) = blocks.last_mut() {
                                frame.push((identity, Some(b.clone())));
                            }
                        }
                        None => stmt_locks.push(identity),
                    }
                }
            }
            (TokKind::Ident, _) => {
                if let Some(targets) = sites.get(&(t.line, t.col)) {
                    for (held, _) in blocks.iter().flatten() {
                        for &tgt in targets.iter() {
                            call_holds.push((sid, held.clone(), tgt, t.line, t.col));
                        }
                    }
                    for held in &stmt_locks {
                        for &tgt in targets.iter() {
                            call_holds.push((sid, held.clone(), tgt, t.line, t.col));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// The lock identity of the receiver chain ending at the `.` before
/// code token `i` (which is the `lock` ident): idents joined with
/// `.`, a leading `self` replaced by the impl type, index expressions
/// collapsed to their base. A receiver that is not a simple chain
/// gets a per-line opaque identity.
fn lock_identity(
    scan: &ScannedFile<'_>,
    i: usize,
    self_type: Option<&str>,
    line: u32,
) -> String {
    let mut segs: Vec<String> = Vec::new();
    // j walks the chain leftward, starting at the token before `.`.
    let mut j = i.wrapping_sub(2);
    loop {
        if j >= scan.code.len() {
            break;
        }
        let t = scan.ct(j);
        if t.kind == TokKind::Punct && t.text == "]" {
            // Collapse `base[expr]` to `base`: skip to the matching `[`.
            let mut depth = 1i32;
            let mut k = j;
            while depth > 0 && k > 0 {
                k -= 1;
                match scan.ctext(k) {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            if depth != 0 || k == 0 {
                return format!("<expr@{line}>");
            }
            j = k.wrapping_sub(1);
            continue;
        }
        if t.kind != TokKind::Ident {
            break;
        }
        segs.push(t.text.to_string());
        if j >= 2 && scan.ctext(j - 1) == "." {
            j -= 2;
            continue;
        }
        break;
    }
    if segs.is_empty() {
        return format!("<expr@{line}>");
    }
    segs.reverse();
    if segs[0] == "self" {
        segs[0] = self_type.unwrap_or("self").to_string();
    }
    segs.join(".")
}

/// Shortest cycle through `start`, BFS in sorted-neighbor order (so
/// the witness cycle is deterministic).
fn shortest_cycle(
    adj: &BTreeMap<String, BTreeMap<String, EdgeInfo>>,
    start: &str,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for v in adj.get(u).map(|m| m.keys()).into_iter().flatten() {
            if v == start {
                // Reconstruct start -> … -> u.
                let mut path = vec![u];
                while let Some(&p) = parent.get(path[path.len() - 1]) {
                    path.push(p);
                }
                path.reverse();
                return Some(path.into_iter().map(str::to_string).collect());
            }
            if v != u && !parent.contains_key(v.as_str()) {
                parent.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Rotate a cycle so its lexicographically smallest node comes first.
fn canonical(mut cycle: Vec<String>) -> Vec<String> {
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(k, _)| k)
    else {
        return cycle;
    };
    cycle.rotate_left(min_pos);
    cycle
}
