//! Whole-workspace analysis: parsed files + symbol graph + call
//! graph, and the deterministic JSONL dump behind `--graph-dump`.

use crate::callgraph::CallGraph;
use crate::findings::json_escape;
use crate::parse::ParsedFile;
use crate::symbols::SymbolGraph;
use crate::taint::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Headline sizes of one analysis, for reports and telemetry.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalysisStats {
    /// Files parsed.
    pub files: usize,
    /// Named fn/method symbols.
    pub symbols: usize,
    /// Resolved call edges (deduped caller→callee pairs).
    pub edges: usize,
    /// Unresolved callee records (deduped per caller).
    pub unknown: usize,
}

/// The whole-workspace analysis the graph rules run over.
#[derive(Debug)]
pub struct Analysis<'s> {
    /// Parsed files in path-sorted order.
    pub files: Vec<ParsedFile<'s>>,
    /// The symbol table.
    pub symbols: SymbolGraph,
    /// The call graph.
    pub graph: CallGraph,
}

impl<'s> Analysis<'s> {
    /// Build the symbol and call-graph layers over already-parsed
    /// files (which must be path-sorted).
    pub fn from_files(files: Vec<ParsedFile<'s>>) -> Analysis<'s> {
        let symbols = SymbolGraph::build(&files);
        let graph = CallGraph::build(&files, &symbols);
        Analysis {
            files,
            symbols,
            graph,
        }
    }

    /// Parse `sources` (`(path, src)`, already sorted) and build.
    pub fn build(sources: &'s [(String, String)]) -> Analysis<'s> {
        let files: Vec<ParsedFile<'s>> = sources
            .iter()
            .map(|(p, s)| ParsedFile::parse(p, s))
            .collect();
        Analysis::from_files(files)
    }

    /// Headline sizes.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            files: self.files.len(),
            symbols: self.symbols.symbols.len(),
            edges: self.graph.edge_count(),
            unknown: self.graph.unknown_count(),
        }
    }

    /// The canonical display path of symbol `sid` (`""` if out of
    /// range — never happens for ids produced by this analysis).
    pub fn path_of(&self, sid: u32) -> &str {
        self.symbols
            .symbols
            .get(sid as usize)
            .map_or("", |s| s.path.as_str())
    }

    /// The defining file of symbol `sid`.
    pub fn file_of(&self, sid: u32) -> Option<&ParsedFile<'s>> {
        let s = self.symbols.symbols.get(sid as usize)?;
        self.files.get(s.file_idx as usize)
    }

    /// The `lint: allow(...)` names attached to symbol `sid`'s item.
    pub fn item_allows(&self, sid: u32) -> &[String] {
        let Some(s) = self.symbols.symbols.get(sid as usize) else {
            return &[];
        };
        self.files
            .get(s.file_idx as usize)
            .and_then(|f| f.items.get(s.item_idx as usize))
            .map_or(&[], |it| it.allows.as_slice())
    }

    /// Follow a taint trace from `start` toward its seed, returning
    /// the hop chain `[start, …, seed]` as symbol ids.
    pub fn chain(&self, start: u32, taint: &BTreeMap<u32, Trace>) -> Vec<u32> {
        let mut out = vec![start];
        let mut cur = start;
        let mut guard = 0usize;
        while let Some(tr) = taint.get(&cur) {
            match tr.via {
                Some((next, _, _)) if guard < 256 => {
                    out.push(next);
                    cur = next;
                    guard += 1;
                }
                _ => break,
            }
        }
        out
    }

    /// Render a hop chain as `a -> b -> c` of canonical paths.
    pub fn chain_str(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for (k, &id) in ids.iter().enumerate() {
            if k > 0 {
                out.push_str(" -> ");
            }
            out.push_str(self.path_of(id));
        }
        out
    }

    /// The call graph as deterministic JSON lines: one `sym` record
    /// per symbol (id order = path order), then per caller every
    /// resolved call site (`call`) and unresolved callee (`unknown`).
    /// Byte-identical across runs on an unchanged tree — verify.sh
    /// dumps twice and byte-compares.
    pub fn graph_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.symbols.symbols {
            let file = self
                .files
                .get(s.file_idx as usize)
                .map_or("", |f| f.scan.path.as_str());
            let _ = writeln!(
                out,
                "{{\"type\":\"sym\",\"path\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"test\":{},\"library\":{}}}",
                json_escape(&s.path),
                json_escape(file),
                s.line,
                s.col,
                s.cfg_test,
                s.library,
            );
        }
        for (sid, sites) in self.graph.sites.iter().enumerate() {
            let from = self.path_of(sid as u32);
            for site in sites {
                for &t in &site.targets {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"call\",\"from\":\"{}\",\"to\":\"{}\",\"line\":{},\"col\":{}}}",
                        json_escape(from),
                        json_escape(self.path_of(t)),
                        site.line,
                        site.col,
                    );
                }
            }
            for (d, l, c) in self.graph.unknown.get(sid).into_iter().flatten() {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"unknown\",\"from\":\"{}\",\"to\":\"{}\",\"line\":{},\"col\":{}}}",
                    json_escape(from),
                    json_escape(d),
                    l,
                    c,
                );
            }
        }
        out
    }
}
