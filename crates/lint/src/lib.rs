//! # dui-lint
//!
//! Std-only, token-aware static analysis for the workspace — the
//! in-tree replacement for the grep/awk determinism gates that used to
//! live in `scripts/lint_determinism.sh` (that script is now a thin
//! wrapper over this crate).
//!
//! Every quantitative claim this repository reproduces (Fig. 2, C1–C3)
//! rests on simulations being pure functions of `(config, seed)`. A
//! grep pattern cannot see `use`-aliasing, comments, or string
//! literals, and silently misses renamed imports of `Instant` or
//! `thread_rng` — and *no* per-file check can see a wall-clock read
//! laundered through two crates of helper functions. The analyzer is
//! layered accordingly:
//!
//! * [`lexer`] — a hand-rolled, lossless Rust lexer (raw strings,
//!   nested block comments, lifetimes, char literals);
//! * [`scan`] — a lightweight item scanner tracking `use`
//!   declarations, `fn` boundaries, `impl` blocks, and `#[cfg(test)]`
//!   regions — enough resolution for the per-file rules;
//! * [`parse`] — an item-level parser over the same token stream:
//!   every `fn`/method with its body span, module path, enclosing
//!   type, and per-item `lint: allow(...)` attributes, plus the
//!   `owner` partition mapping each code token to its innermost `fn`;
//! * [`symbols`] — the cross-crate symbol graph (canonical paths,
//!   suffix/method indexes);
//! * [`callgraph`] — a conservative call graph (direct calls, alias
//!   and `::`-path resolution, receiver-type method heuristics;
//!   unresolved calls recorded as explicit Unknown edges);
//! * [`taint`] — deterministic interprocedural taint propagation with
//!   canonical witness paths;
//! * [`rules`] — the shipped rules (see that module's table): eight
//!   per-file token rules and four whole-workspace graph rules;
//! * [`findings`] — deterministic findings, JSON-lines export, and the
//!   grandfathering [`Baseline`].
//!
//! ## Running
//!
//! ```sh
//! cargo run -p dui-lint                         # lint crates/ + src/
//! cargo run -p dui-lint -- --json --baseline lint.baseline
//! cargo run -p dui-lint -- --write-baseline     # regenerate lint.baseline
//! cargo run -p dui-lint -- --graph-dump         # call graph as JSONL
//! cargo run -p dui-lint -- crates/netsim        # lint a subtree
//! ```
//!
//! Output is deterministic: findings sort by `(file, line, col,
//! rule)`, the human table goes to stderr, and `--json` writes
//! byte-identical-across-runs JSON lines to `results/lint.jsonl`
//! (verified by `scripts/verify.sh`, which runs the lint — and the
//! graph dump — twice and byte-compares). Exit code is nonzero iff a
//! finding is not grandfathered by the baseline.
//!
//! ## Library use
//!
//! The harness's `experiments lint` stage and the fixture tests drive
//! the same entry points:
//!
//! ```
//! let findings = dui_lint::lint_source(
//!     "crates/x/src/lib.rs",
//!     "use std::time::Instant as Clock;\nfn f() { Clock::now(); }\n",
//! );
//! assert!(findings.iter().any(|f| f.rule == "determinism/wall-clock"));
//! ```
//!
//! Multi-file (cross-crate) inputs go through [`lint_sources`]:
//!
//! ```
//! let findings = dui_lint::lint_sources(&[
//!     (
//!         "crates/a/src/lib.rs".to_string(),
//!         "pub fn t() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n"
//!             .to_string(),
//!     ),
//!     (
//!         "crates/b/src/lib.rs".to_string(),
//!         "pub fn run() -> u64 { dui_a::t() }\n".to_string(),
//!     ),
//! ]);
//! assert!(findings
//!     .iter()
//!     .any(|f| f.rule == "determinism/transitive-wall-clock" && f.file == "crates/b/src/lib.rs"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod callgraph;
pub mod findings;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod taint;

pub use analysis::{Analysis, AnalysisStats};
pub use findings::{
    apply_baseline, render_human, sort_findings, Baseline, Finding, Severity,
};

use parse::ParsedFile;
use std::io;
use std::path::{Path, PathBuf};

/// Self-profile of one analyzer run: wall-clock nanoseconds per phase
/// and per rule, read from an injected clock (the lint crate itself
/// never touches `std::time` — the bench harness passes
/// `Instant`-based closures, tests pass counters or zeros).
#[derive(Debug, Default, Clone)]
pub struct Profile {
    /// `(phase, ns)` for the analysis phases: `parse`, `graph`
    /// (symbol + call graph construction), `taint` (the graph rules).
    pub phases: Vec<(&'static str, u64)>,
    /// `(rule id, ns)` for every rule, file rules then graph rules.
    pub rules: Vec<(&'static str, u64)>,
}

/// Run the full analyzer over in-memory sources (`(path, src)`,
/// **must be path-sorted** — symbol ids and witness chains depend on
/// input order only through this canonical order). `clock` is sampled
/// around each phase and rule for the self-profile; pass `|| 0` when
/// timing is not wanted.
pub fn run_rules(
    sources: &[(String, String)],
    clock: &mut dyn FnMut() -> u64,
) -> (Vec<Finding>, AnalysisStats, Profile) {
    let t0 = clock();
    let files: Vec<ParsedFile<'_>> = sources
        .iter()
        .map(|(p, s)| ParsedFile::parse(p, s))
        .collect();
    let parse_ns = clock().saturating_sub(t0);

    let mut findings = Vec::new();
    let mut rule_times: Vec<(&'static str, u64)> = Vec::new();
    for &(id, rule) in rules::FILE_RULES {
        let r0 = clock();
        for f in &files {
            rule(&f.scan, &mut findings);
        }
        rule_times.push((id, clock().saturating_sub(r0)));
    }

    let g0 = clock();
    let a = Analysis::from_files(files);
    let graph_ns = clock().saturating_sub(g0);
    let stats = a.stats();

    let t1 = clock();
    for &(id, rule) in rules::GRAPH_RULES {
        let r0 = clock();
        rule(&a, &mut findings);
        rule_times.push((id, clock().saturating_sub(r0)));
    }
    let taint_ns = clock().saturating_sub(t1);

    sort_findings(&mut findings);
    (
        findings,
        stats,
        Profile {
            phases: vec![("parse", parse_ns), ("graph", graph_ns), ("taint", taint_ns)],
            rules: rule_times,
        },
    )
}

/// Lint in-memory sources (`(path, src)`, any order — sorted and
/// deduplicated internally) through the full analyzer, per-file and
/// graph rules both. This is how the fixture tests exercise
/// cross-crate rules against synthetic multi-file inputs.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let mut sorted: Vec<(String, String)> = sources.to_vec();
    sorted.sort();
    sorted.dedup();
    let (findings, _, _) = run_rules(&sorted, &mut || 0);
    findings
}

/// Lint one in-memory source as if it lived at `path` (repo-relative,
/// `/`-separated).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())])
}

/// What one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings in canonical order, `baselined` flags assigned.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not grandfathered by the baseline.
    pub new_count: usize,
    /// Baseline entries that matched nothing although their file still
    /// exists (the code was fixed — candidates for removal).
    pub stale_baseline: Vec<String>,
    /// Baseline entries whose file no longer exists on disk at all
    /// (pruned automatically by `--write-baseline`).
    pub stale_missing_file: Vec<String>,
    /// Headline analysis sizes (files, symbols, call edges, unknowns).
    pub stats: AnalysisStats,
}

impl Report {
    /// Findings that are new (not baselined).
    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.baselined)
    }

    /// Count of grandfathered findings.
    pub fn baselined_count(&self) -> usize {
        self.findings.len() - self.new_count
    }
}

/// Directories the walker never descends into: build output, VCS
/// metadata, and the lint fixture corpora (which are known-bad by
/// design and referenced by virtual path from the tests instead).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// The default scan roots, matching (and extending, by the root
/// `src/`) what the old grep gate covered.
pub const DEFAULT_PATHS: &[&str] = &["crates", "src"];

fn walk(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<(String, PathBuf, bool)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, entry.path(), is_dir));
    }
    // Deterministic order regardless of filesystem enumeration.
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, path, is_dir) in entries {
        let child_rel = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            out.push((child_rel, path));
        }
    }
    Ok(())
}

/// Read every `.rs` file under `paths` (repo-relative, resolved
/// against `root`) into path-sorted `(rel_path, src)` pairs.
pub fn read_sources(root: &Path, paths: &[String]) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for p in paths {
        let full = root.join(p);
        let rel = p.replace('\\', "/");
        let meta = std::fs::metadata(&full).map_err(|e| {
            io::Error::new(e.kind(), format!("cannot stat {}: {e}", full.display()))
        })?;
        if meta.is_dir() {
            walk(&full, &rel, &mut files)?;
        } else if rel.ends_with(".rs") {
            files.push((rel, full));
        }
    }
    files.sort();
    files.dedup();
    let mut out: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, full) in files {
        let src = std::fs::read_to_string(&full).map_err(|e| {
            io::Error::new(e.kind(), format!("cannot read {}: {e}", full.display()))
        })?;
        out.push((rel, src));
    }
    Ok(out)
}

/// Lint the `.rs` files under `paths`, apply `baseline`, and return
/// the [`Report`] plus the analyzer self-[`Profile`] read from
/// `clock`.
pub fn lint_paths_profiled(
    root: &Path,
    paths: &[String],
    baseline: &Baseline,
    clock: &mut dyn FnMut() -> u64,
) -> io::Result<(Report, Profile)> {
    let sources = read_sources(root, paths)?;
    let (mut findings, stats, profile) = run_rules(&sources, clock);
    let (new_count, stale) = apply_baseline(&mut findings, baseline);
    // Split stale entries: file still exists (the finding was fixed)
    // vs file gone entirely (the entry can only be dead weight).
    let mut stale_baseline = Vec::new();
    let mut stale_missing_file = Vec::new();
    for entry in stale {
        let file = entry.split('\t').nth(1).unwrap_or("");
        let scanned = sources.binary_search_by(|(p, _)| p.as_str().cmp(file)).is_ok();
        if scanned || root.join(file).exists() {
            stale_baseline.push(entry);
        } else {
            stale_missing_file.push(entry);
        }
    }
    Ok((
        Report {
            findings,
            files_scanned: sources.len(),
            new_count,
            stale_baseline,
            stale_missing_file,
            stats,
        },
        profile,
    ))
}

/// [`lint_paths_profiled`] without the self-profile.
pub fn lint_paths(root: &Path, paths: &[String], baseline: &Baseline) -> io::Result<Report> {
    let (report, _) = lint_paths_profiled(root, paths, baseline, &mut || 0)?;
    Ok(report)
}

/// The call graph of in-memory sources as deterministic JSONL (see
/// [`Analysis::graph_jsonl`]). Input order does not matter.
pub fn graph_dump_sources(sources: &[(String, String)]) -> String {
    let mut sorted: Vec<(String, String)> = sources.to_vec();
    sorted.sort();
    sorted.dedup();
    Analysis::build(&sorted).graph_jsonl()
}

/// The call graph of the `.rs` files under `paths` as deterministic
/// JSONL — the `--graph-dump` payload, byte-compared across two runs
/// by `scripts/verify.sh`.
pub fn graph_dump_paths(root: &Path, paths: &[String]) -> io::Result<String> {
    let sources = read_sources(root, paths)?;
    Ok(Analysis::build(&sources).graph_jsonl())
}

/// Serialize findings as JSON lines (the `results/lint.jsonl`
/// payload): one object per finding, canonical order, no timestamps —
/// byte-identical across runs on an unchanged tree.
pub fn to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_is_deterministic() {
        let src = "use std::time::Instant;\nfn f() { Instant::now(); }\n";
        let a = lint_source("crates/x/src/lib.rs", src);
        let b = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn jsonl_is_one_line_per_finding() {
        let f = lint_source(
            "crates/x/src/lib.rs",
            "use std::time::Instant;\nfn g() { x.unwrap(); }\n",
        );
        let jsonl = to_jsonl(&f);
        assert_eq!(jsonl.lines().count(), f.len());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"rule\":")));
    }

    #[test]
    fn profile_covers_every_phase_and_rule() {
        let sources = [(
            "crates/x/src/lib.rs".to_string(),
            "pub fn f() {}\n".to_string(),
        )];
        let mut tick = 0u64;
        let (_, stats, profile) = run_rules(&sources, &mut || {
            tick += 1;
            tick
        });
        assert_eq!(stats.files, 1);
        assert_eq!(stats.symbols, 1);
        assert_eq!(
            profile.phases.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            ["parse", "graph", "taint"]
        );
        assert_eq!(profile.rules.len(), rules::RULE_IDS.len());
    }
}
