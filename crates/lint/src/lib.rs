//! # dui-lint
//!
//! Std-only, token-aware static analysis for the workspace — the
//! in-tree replacement for the grep/awk determinism gates that used to
//! live in `scripts/lint_determinism.sh` (that script is now a thin
//! wrapper over this crate).
//!
//! Every quantitative claim this repository reproduces (Fig. 2, C1–C3)
//! rests on simulations being pure functions of `(config, seed)`. A
//! grep pattern cannot see `use`-aliasing, comments, or string
//! literals, and silently misses renamed imports of `Instant` or
//! `thread_rng`. This crate makes the invariants machine-checked
//! properties of the codebase:
//!
//! * [`lexer`] — a hand-rolled, lossless Rust lexer (raw strings,
//!   nested block comments, lifetimes, char literals);
//! * [`scan`] — a lightweight item scanner tracking `use`
//!   declarations, `fn` boundaries, `impl` blocks, and `#[cfg(test)]`
//!   regions — enough resolution for real rules without a parser;
//! * [`rules`] — the six shipped rules (see that module's table);
//! * [`findings`] — deterministic findings, JSON-lines export, and the
//!   grandfathering [`Baseline`].
//!
//! ## Running
//!
//! ```sh
//! cargo run -p dui-lint                         # lint crates/ + src/
//! cargo run -p dui-lint -- --json --baseline lint.baseline
//! cargo run -p dui-lint -- --write-baseline     # regenerate lint.baseline
//! cargo run -p dui-lint -- crates/netsim        # lint a subtree
//! ```
//!
//! Output is deterministic: findings sort by `(file, line, col,
//! rule)`, the human table goes to stderr, and `--json` writes
//! byte-identical-across-runs JSON lines to `results/lint.jsonl`
//! (verified by `scripts/verify.sh`, which runs the lint twice and
//! byte-compares). Exit code is nonzero iff a finding is not
//! grandfathered by the baseline.
//!
//! ## Library use
//!
//! The harness's `experiments lint` stage and the fixture tests drive
//! the same entry points:
//!
//! ```
//! let findings = dui_lint::lint_source(
//!     "crates/x/src/lib.rs",
//!     "use std::time::Instant as Clock;\nfn f() { Clock::now(); }\n",
//! );
//! assert!(findings.iter().any(|f| f.rule == "determinism/wall-clock"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use findings::{
    apply_baseline, render_human, sort_findings, Baseline, Finding, Severity,
};

use scan::ScannedFile;
use std::io;
use std::path::{Path, PathBuf};

/// Lint one in-memory source as if it lived at `path` (repo-relative,
/// `/`-separated). This is how the fixture tests exercise path-scoped
/// rules against synthetic files.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let file = ScannedFile::new(path, src);
    let mut out = Vec::new();
    rules::check_file(&file, &mut out);
    sort_findings(&mut out);
    out
}

/// What one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings in canonical order, `baselined` flags assigned.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not grandfathered by the baseline.
    pub new_count: usize,
    /// Baseline entries that matched nothing (candidates for removal).
    pub stale_baseline: Vec<String>,
}

impl Report {
    /// Findings that are new (not baselined).
    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.baselined)
    }

    /// Count of grandfathered findings.
    pub fn baselined_count(&self) -> usize {
        self.findings.len() - self.new_count
    }
}

/// Directories the walker never descends into: build output, VCS
/// metadata, and the lint fixture corpora (which are known-bad by
/// design and referenced by virtual path from the tests instead).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results"];

/// The default scan roots, matching (and extending, by the root
/// `src/`) what the old grep gate covered.
pub const DEFAULT_PATHS: &[&str] = &["crates", "src"];

fn walk(dir: &Path, rel: &str, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<(String, PathBuf, bool)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, entry.path(), is_dir));
    }
    // Deterministic order regardless of filesystem enumeration.
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, path, is_dir) in entries {
        let child_rel = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        if is_dir {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            out.push((child_rel, path));
        }
    }
    Ok(())
}

/// Lint the `.rs` files under `paths` (repo-relative, resolved against
/// `root`), apply `baseline`, and return the [`Report`].
pub fn lint_paths(root: &Path, paths: &[String], baseline: &Baseline) -> io::Result<Report> {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for p in paths {
        let full = root.join(p);
        let rel = p.replace('\\', "/");
        let meta = std::fs::metadata(&full).map_err(|e| {
            io::Error::new(e.kind(), format!("cannot stat {}: {e}", full.display()))
        })?;
        if meta.is_dir() {
            walk(&full, &rel, &mut files)?;
        } else if rel.ends_with(".rs") {
            files.push((rel, full));
        }
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    let files_scanned = files.len();
    for (rel, full) in files {
        let src = std::fs::read_to_string(&full).map_err(|e| {
            io::Error::new(e.kind(), format!("cannot read {}: {e}", full.display()))
        })?;
        let file = ScannedFile::new(&rel, &src);
        rules::check_file(&file, &mut findings);
    }
    sort_findings(&mut findings);
    let (new_count, stale_baseline) = apply_baseline(&mut findings, baseline);
    Ok(Report {
        findings,
        files_scanned,
        new_count,
        stale_baseline,
    })
}

/// Serialize findings as JSON lines (the `results/lint.jsonl`
/// payload): one object per finding, canonical order, no timestamps —
/// byte-identical across runs on an unchanged tree.
pub fn to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_is_deterministic() {
        let src = "use std::time::Instant;\nfn f() { Instant::now(); }\n";
        let a = lint_source("crates/x/src/lib.rs", src);
        let b = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn jsonl_is_one_line_per_finding() {
        let f = lint_source(
            "crates/x/src/lib.rs",
            "use std::time::Instant;\nfn g() { x.unwrap(); }\n",
        );
        let jsonl = to_jsonl(&f);
        assert_eq!(jsonl.lines().count(), f.len());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"rule\":")));
    }
}
