//! A hand-rolled, lossless Rust lexer.
//!
//! The rules in this crate need to see *code*, not comments or string
//! literals — the precise blind spot of the grep gate this crate
//! replaces. The lexer therefore classifies every byte of the input
//! into tokens (including whitespace and comments, kept as trivia) so
//! that:
//!
//! * **Losslessness** — concatenating `Tok::text` over the token
//!   stream reproduces the input byte-for-byte. The propcheck suite
//!   round-trips generated streams through `lex → re-emit → lex` and
//!   asserts a fixed point.
//! * **Totality** — any byte sequence lexes without panicking;
//!   malformed tails (an unterminated string or block comment) become
//!   one trailing token rather than an error. A linter must never be
//!   the thing that crashes the gate.
//!
//! Handled Rust surface: nested block comments, line/doc comments,
//! string and byte-string literals with escapes, raw (byte) strings
//! with arbitrary `#` fences, char literals vs. lifetimes, numeric
//! literals with type suffixes and exponents, identifiers (including
//! raw `r#ident`), and single-character punctuation. Multi-character
//! operators are deliberately left as single punct tokens: the
//! scanners in [`crate::scan`] match token *sequences*, which keeps
//! the lexer trivially deterministic.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace (spaces, tabs, newlines, carriage returns).
    Whitespace,
    /// A `//` comment up to (not including) the newline. `doc` marks
    /// `///` and `//!` forms.
    LineComment {
        /// True for `///` and `//!` doc comments.
        doc: bool,
    },
    /// A `/* ... */` comment, nesting-aware. `doc` marks `/**`, `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` doc comments.
        doc: bool,
    },
    /// An identifier or keyword (`fn`, `use`, `as`, … are not
    /// distinguished here; the scanner matches on text).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\xff'`.
    Char,
    /// A string or byte-string literal: `"…"`, `b"…"`.
    Str,
    /// A raw (byte) string literal: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// A numeric literal, including suffixes: `0xFF`, `1_000u64`, `1.5e-3`.
    Num,
    /// A single punctuation character.
    Punct,
}

impl TokKind {
    /// Whitespace or a comment — tokens rules skip over.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokKind::Whitespace | TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// Any comment kind (used to locate escape-hatch annotations).
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }
}

/// One token: a classified, located slice of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'s> {
    /// What the slice is.
    pub kind: TokKind,
    /// The exact source text (losslessness: these concatenate back to
    /// the input).
    pub text: &'s str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

/// Lex `src` into a lossless token stream. Total: never panics, never
/// drops bytes — see the module docs for the malformed-input policy.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Tok<'s>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Tok {
                kind,
                text: &self.src[start..self.pos],
                line,
                col,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Advance past one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(c) = self.peek_char() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek_char() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn next_kind(&mut self) -> TokKind {
        let c = match self.peek_char() {
            Some(c) => c,
            None => return TokKind::Whitespace, // unreachable: run() checks pos
        };
        if c.is_whitespace() {
            self.bump_while(char::is_whitespace);
            return TokKind::Whitespace;
        }
        if c == '/' {
            match self.peek(1) {
                Some(b'/') => return self.line_comment(),
                Some(b'*') => return self.block_comment(),
                _ => {}
            }
        }
        // Raw strings / byte strings: r" r#" br" b" b' (before idents,
        // since the prefixes lex as identifier starts).
        if let Some(k) = self.try_string_prefix() {
            return k;
        }
        if is_ident_start(c) {
            // r#ident raw identifiers: consume the fence with the name.
            if c == 'r' && self.peek(1) == Some(b'#') {
                if let Some(c2) = self.src[self.pos + 2..].chars().next() {
                    if is_ident_start(c2) {
                        self.bump(); // r
                        self.bump(); // #
                        self.bump_while(is_ident_continue);
                        return TokKind::Ident;
                    }
                }
            }
            self.bump_while(is_ident_continue);
            return TokKind::Ident;
        }
        if c == '\'' {
            return self.lifetime_or_char();
        }
        if c == '"' {
            return self.string();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        self.bump();
        TokKind::Punct
    }

    fn line_comment(&mut self) -> TokKind {
        // `///` and `//!` are doc comments; `////…` is a plain comment
        // (matching rustc's classification).
        let rest = &self.bytes[self.pos..];
        let doc = (rest.get(2) == Some(&b'/') && rest.get(3) != Some(&b'/'))
            || rest.get(2) == Some(&b'!');
        self.bump_while(|c| c != '\n');
        TokKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokKind {
        // `/**` (not `/**/` or `/***`) and `/*!` are doc comments.
        let rest = &self.bytes[self.pos..];
        let doc = (rest.get(2) == Some(&b'*')
            && rest.get(3) != Some(&b'*')
            && rest.get(3) != Some(&b'/'))
            || rest.get(2) == Some(&b'!');
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: swallow the tail
            }
        }
        TokKind::BlockComment { doc }
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'` — the literal
    /// prefixes that would otherwise start an identifier.
    fn try_string_prefix(&mut self) -> Option<TokKind> {
        let rest = &self.bytes[self.pos..];
        let (raw, byte, skip) = match rest {
            [b'r', b'"' | b'#', ..] => (true, false, 1),
            [b'b', b'r', b'"' | b'#', ..] => (true, true, 2),
            [b'b', b'"', ..] => (false, true, 1),
            [b'b', b'\'', ..] => {
                self.bump();
                return Some(self.lifetime_or_char());
            }
            _ => return None,
        };
        let _ = byte;
        if raw {
            // Count the # fence; a raw string only starts if `#…#"`.
            let mut hashes = 0usize;
            while rest.get(skip + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if rest.get(skip + hashes) != Some(&b'"') {
                return None; // `r#ident` or plain ident starting with r/br
            }
            for _ in 0..skip + hashes + 1 {
                self.bump();
            }
            // Scan to `"` followed by `hashes` #s.
            loop {
                match self.peek(0) {
                    None => break, // unterminated
                    Some(b'"') => {
                        let mut ok = true;
                        for i in 0..hashes {
                            if self.peek(1 + i) != Some(b'#') {
                                ok = false;
                                break;
                            }
                        }
                        self.bump();
                        if ok {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            break;
                        }
                    }
                    Some(_) => self.bump(),
                }
            }
            Some(TokKind::RawStr)
        } else {
            self.bump(); // b
            Some(self.string())
        }
    }

    fn string(&mut self) -> TokKind {
        self.bump(); // opening "
        loop {
            match self.peek_char() {
                None => break, // unterminated
                Some('\\') => {
                    self.bump();
                    if self.peek_char().is_some() {
                        self.bump();
                    }
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        TokKind::Str
    }

    /// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn lifetime_or_char(&mut self) -> TokKind {
        self.bump(); // opening '
        match self.peek_char() {
            Some('\\') => {
                // Escape: definitely a char literal.
                self.bump();
                if self.peek_char().is_some() {
                    self.bump();
                }
                // \u{…} and similar: scan to the closing quote.
                self.bump_while(|c| c != '\'' && c != '\n');
                if self.peek_char() == Some('\'') {
                    self.bump();
                }
                TokKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // `'abc` is a lifetime unless a `'` closes it: `'a'`.
                let mark = self.pos;
                self.bump();
                self.bump_while(is_ident_continue);
                if self.peek_char() == Some('\'') && self.pos == mark + c.len_utf8() {
                    // Exactly one char then a quote: char literal.
                    self.bump();
                    TokKind::Char
                } else {
                    TokKind::Lifetime
                }
            }
            Some('\'') | None => TokKind::Char, // `''` or trailing quote: degenerate
            Some(_) => {
                // Non-ident char then closing quote: `'+'`.
                self.bump();
                if self.peek_char() == Some('\'') {
                    self.bump();
                }
                TokKind::Char
            }
        }
    }

    fn number(&mut self) -> TokKind {
        let mut seen_dot = false;
        let mut prev_exp = false;
        while let Some(c) = self.peek_char() {
            if c.is_alphanumeric() || c == '_' {
                prev_exp = (c == 'e' || c == 'E')
                    && self.src[..self.pos]
                        .chars()
                        .next_back()
                        .is_some_and(|p| p.is_ascii_digit() || p == '.' || p == '_');
                self.bump();
            } else if c == '.' && !seen_dot {
                // `1.5` consumes the dot; `1..5` and `1.method()` do not.
                let after = self.src[self.pos + 1..].chars().next();
                if after.is_some_and(|a| a.is_ascii_digit()) {
                    seen_dot = true;
                    prev_exp = false;
                    self.bump();
                } else {
                    break;
                }
            } else if (c == '+' || c == '-') && prev_exp {
                prev_exp = false;
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lossless_on_real_code() {
        let src = include_str!("lexer.rs");
        let toks = lex(src);
        let emitted: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(emitted, src);
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r#"// Instant::now() in a comment
let s = "Instant::now()"; /* thread_rng */ real_ident"#;
        let idents: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["let", "s", "real_ident"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"r#"no "end" here"# tail"###;
        let k = kinds(src);
        assert_eq!(k[0].0, TokKind::RawStr);
        assert_eq!(k[0].1, r###"r#"no "end" here"#"###);
        assert_eq!(k[1], (TokKind::Ident, "tail"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ x";
        let k = kinds(src);
        assert_eq!(k, [(TokKind::Ident, "x")]);
        let all = lex(src);
        assert_eq!(all[0].kind, TokKind::BlockComment { doc: false });
        assert_eq!(all[0].text, "/* a /* b */ c */");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("&'a str 'x' '\\n' b'z' 'static");
        assert_eq!(
            k.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            [
                TokKind::Punct,
                TokKind::Lifetime,
                TokKind::Ident,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char,
                TokKind::Lifetime,
            ]
        );
        assert_eq!(k[1].1, "'a");
        assert_eq!(k[3].1, "'x'");
        assert_eq!(k[6].1, "'static");
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("0xFF 1_000u64 1.5e-3 0..5 1.abs()");
        assert_eq!(k[0], (TokKind::Num, "0xFF"));
        assert_eq!(k[1], (TokKind::Num, "1_000u64"));
        assert_eq!(k[2], (TokKind::Num, "1.5e-3"));
        assert_eq!(k[3], (TokKind::Num, "0"));
        assert_eq!(k[4], (TokKind::Punct, "."));
        assert_eq!(k[5], (TokKind::Punct, "."));
        assert_eq!(k[6], (TokKind::Num, "5"));
        assert_eq!(k[7], (TokKind::Num, "1"));
        assert_eq!(k[8], (TokKind::Punct, "."));
        assert_eq!(k[9], (TokKind::Ident, "abs"));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd");
        let cd = toks.iter().find(|t| t.text == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_are_total() {
        for src in ["\"never ends", "/* never ends", "r#\"never", "'", "b'"] {
            let toks = lex(src);
            let emitted: String = toks.iter().map(|t| t.text).collect();
            assert_eq!(emitted, src, "lossless on {src:?}");
        }
    }

    #[test]
    fn doc_comment_classification() {
        let all = lex("/// doc\n//! inner\n//// not doc\n// plain\n/** blockdoc */ /*!i*/ /* p */");
        let docs: Vec<bool> = all
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::LineComment { doc } | TokKind::BlockComment { doc } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, [true, true, false, false, true, true, false]);
    }
}
