//! The `dui-lint` CLI.
//!
//! ```sh
//! dui-lint [--json] [--baseline FILE] [--write-baseline]
//!          [--show-baselined] [--graph-dump] [paths…]
//! ```
//!
//! * default paths: `crates src` (repo-relative);
//! * `--baseline FILE` — grandfather the findings listed in `FILE`
//!   (exit 0 unless a *new* finding appears);
//! * `--write-baseline` — regenerate the baseline from the current
//!   findings and exit 0. Entries outside the scanned paths are kept
//!   (so a partial run does not wipe the rest), except entries whose
//!   file no longer exists, which are pruned;
//! * `--json` — additionally write `results/lint.jsonl` (deterministic
//!   JSON lines, all findings including baselined ones);
//! * `--graph-dump` — write the cross-crate call graph to
//!   `results/callgraph.jsonl` (deterministic JSONL; `scripts/verify.sh`
//!   dumps twice and byte-compares) and exit without linting;
//! * `--show-baselined` — include grandfathered findings in the human
//!   report on stderr.
//!
//! Exit codes: 0 clean, 1 new findings, 2 usage or I/O error.

use dui_lint::{findings::merge_baseline, render_human, to_jsonl, Baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dui-lint [--json] [--baseline FILE] [--write-baseline] \
         [--show-baselined] [--graph-dump] [paths…]"
    );
    ExitCode::from(2)
}

/// The repository root: the working directory if it contains one of
/// the default scan paths, else (under `cargo run`) two levels above
/// this crate's manifest.
fn find_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if dui_lint::DEFAULT_PATHS.iter().any(|p| cwd.join(p).is_dir()) {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&manifest).parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    cwd
}

fn main() -> ExitCode {
    let mut json = false;
    let mut write_baseline = false;
    let mut show_baselined = false;
    let mut graph_dump = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--show-baselined" => show_baselined = true,
            "--graph-dump" => graph_dump = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            s if s.starts_with("--") => return usage(),
            s => paths.push(s.to_string()),
        }
    }
    if paths.is_empty() {
        paths = dui_lint::DEFAULT_PATHS.iter().map(|s| s.to_string()).collect();
    }

    let root = find_root();

    if graph_dump {
        let jsonl = match dui_lint::graph_dump_paths(&root, &paths) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("dui-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let results = root.join("results");
        let path = results.join("callgraph.jsonl");
        let write = std::fs::create_dir_all(&results)
            .and_then(|()| std::fs::write(&path, &jsonl));
        if let Err(e) = write {
            eprintln!("dui-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "dui-lint: wrote {} graph records to results/callgraph.jsonl",
            jsonl.lines().count()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_file = baseline_path.unwrap_or_else(|| PathBuf::from("lint.baseline"));
    let baseline_full = root.join(&baseline_file);
    let old_baseline_text = match std::fs::read_to_string(&baseline_full) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("dui-lint: cannot read {}: {e}", baseline_full.display());
            return ExitCode::from(2);
        }
    };
    let baseline = if write_baseline {
        Baseline::default() // classify everything as new, then dump it
    } else {
        Baseline::parse(&old_baseline_text)
    };

    let report = match dui_lint::lint_paths(&root, &paths, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dui-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let text = merge_baseline(&old_baseline_text, &report.findings, &paths, &|file| {
            root.join(file).exists()
        });
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        if let Err(e) = std::fs::write(&baseline_full, &text) {
            eprintln!("dui-lint: cannot write {}: {e}", baseline_full.display());
            return ExitCode::from(2);
        }
        println!(
            "dui-lint: wrote {} entries to {} ({} from this run)",
            entries,
            baseline_file.display(),
            report.findings.len(),
        );
        return ExitCode::SUCCESS;
    }

    if json {
        let results = root.join("results");
        let path = results.join("lint.jsonl");
        let write = std::fs::create_dir_all(&results)
            .and_then(|()| std::fs::write(&path, to_jsonl(&report.findings)));
        if let Err(e) = write {
            eprintln!("dui-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[saved results/lint.jsonl]");
    }

    eprint!("{}", render_human(&report.findings, show_baselined));
    for stale in &report.stale_baseline {
        eprintln!("dui-lint: stale baseline entry (no longer matches): {stale}");
    }
    for stale in &report.stale_missing_file {
        eprintln!("dui-lint: stale baseline entry (file no longer exists): {stale}");
    }
    if report.new_count > 0 {
        println!(
            "dui-lint: FAIL — {} new finding(s) ({} total, {} baselined, {} files)",
            report.new_count,
            report.findings.len(),
            report.baselined_count(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        println!(
            "dui-lint: OK ({} findings, all baselined; {} files; {} symbols, {} call edges)",
            report.findings.len(),
            report.files_scanned,
            report.stats.symbols,
            report.stats.edges,
        );
        ExitCode::SUCCESS
    }
}
