//! The `dui-lint` CLI.
//!
//! ```sh
//! dui-lint [--json] [--baseline FILE] [--write-baseline]
//!          [--show-baselined] [paths…]
//! ```
//!
//! * default paths: `crates src` (repo-relative);
//! * `--baseline FILE` — grandfather the findings listed in `FILE`
//!   (exit 0 unless a *new* finding appears);
//! * `--write-baseline` — regenerate the baseline from the current
//!   findings and exit 0;
//! * `--json` — additionally write `results/lint.jsonl` (deterministic
//!   JSON lines, all findings including baselined ones);
//! * `--show-baselined` — include grandfathered findings in the human
//!   report on stderr.
//!
//! Exit codes: 0 clean, 1 new findings, 2 usage or I/O error.

use dui_lint::{render_human, to_jsonl, Baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dui-lint [--json] [--baseline FILE] [--write-baseline] \
         [--show-baselined] [paths…]"
    );
    ExitCode::from(2)
}

/// The repository root: the working directory if it contains one of
/// the default scan paths, else (under `cargo run`) two levels above
/// this crate's manifest.
fn find_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if dui_lint::DEFAULT_PATHS.iter().any(|p| cwd.join(p).is_dir()) {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&manifest).parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    cwd
}

fn main() -> ExitCode {
    let mut json = false;
    let mut write_baseline = false;
    let mut show_baselined = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--show-baselined" => show_baselined = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            s if s.starts_with("--") => return usage(),
            s => paths.push(s.to_string()),
        }
    }
    if paths.is_empty() {
        paths = dui_lint::DEFAULT_PATHS.iter().map(|s| s.to_string()).collect();
    }

    let root = find_root();
    let baseline_file = baseline_path.unwrap_or_else(|| PathBuf::from("lint.baseline"));
    let baseline_full = root.join(&baseline_file);
    let baseline = if write_baseline {
        Baseline::default() // classify everything as new, then dump it
    } else {
        match std::fs::read_to_string(&baseline_full) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => {
                eprintln!("dui-lint: cannot read {}: {e}", baseline_full.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match dui_lint::lint_paths(&root, &paths, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dui-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let text = Baseline::render(&report.findings);
        if let Err(e) = std::fs::write(&baseline_full, &text) {
            eprintln!("dui-lint: cannot write {}: {e}", baseline_full.display());
            return ExitCode::from(2);
        }
        println!(
            "dui-lint: wrote {} entries to {}",
            report.findings.len(),
            baseline_file.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        let results = root.join("results");
        let path = results.join("lint.jsonl");
        let write = std::fs::create_dir_all(&results)
            .and_then(|()| std::fs::write(&path, to_jsonl(&report.findings)));
        if let Err(e) = write {
            eprintln!("dui-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[saved results/lint.jsonl]");
    }

    eprint!("{}", render_human(&report.findings, show_baselined));
    for stale in &report.stale_baseline {
        eprintln!("dui-lint: stale baseline entry (no longer matches): {stale}");
    }
    if report.new_count > 0 {
        println!(
            "dui-lint: FAIL — {} new finding(s) ({} total, {} baselined, {} files)",
            report.new_count,
            report.findings.len(),
            report.baselined_count(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        println!(
            "dui-lint: OK ({} findings, all baselined; {} files)",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::SUCCESS
    }
}
