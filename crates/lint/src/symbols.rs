//! Cross-crate symbol graph: every named `fn`/method item in the
//! workspace with a canonical path, plus the resolution indexes the
//! call-graph layer queries.
//!
//! Canonical paths are `crate::modules::Type::name`, where the crate
//! name is the directory under `crates/` (`"dui"` for the workspace
//! root `src/`), the module path combines the file's path below
//! `src/` with any inline `mod` blocks, and `Type` appears only for
//! methods. Symbols are sorted by `(path, file, line, col)`, so
//! symbol *ids* (indexes into [`SymbolGraph::symbols`]) are
//! path-ordered — the property that makes worklist iteration and
//! witness-path selection in [`crate::taint`] deterministic.

use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// One function or method symbol in the workspace.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Canonical display path, e.g. `netsim::parallel::engine::run`.
    pub path: String,
    /// Crate name (directory under `crates/`; `"dui"` for root src/).
    pub crate_name: String,
    /// Leading path segments — crate + modules, without `Type::name`.
    /// Used for `self`/`super`/bare-name resolution.
    pub mod_segs: Vec<String>,
    /// The item's bare name.
    pub name: String,
    /// Self type when the item is a method.
    pub self_type: Option<String>,
    /// Index of the defining file in the parsed-file slice.
    pub file_idx: u32,
    /// Index of the item within its file's item list.
    pub item_idx: u32,
    /// 1-based line of the definition.
    pub line: u32,
    /// 1-based column of the definition.
    pub col: u32,
    /// Test-gated: `#[cfg(test)]` region or a `tests/`, `benches/`,
    /// `examples/` harness file.
    pub cfg_test: bool,
    /// Lives under a library source root (`src/`, `crates/*/src/`,
    /// excluding `src/bin/`)?
    pub library: bool,
}

/// The workspace symbol table with deterministic lookup indexes.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Symbols sorted by `(path, file, line, col)`; ids are indexes.
    pub symbols: Vec<Symbol>,
    by_path: BTreeMap<String, Vec<u32>>,
    by_suffix2: BTreeMap<String, Vec<u32>>,
    by_fn_name: BTreeMap<String, Vec<u32>>,
    by_method: BTreeMap<String, Vec<u32>>,
    by_item: BTreeMap<(u32, u32), u32>,
}

/// Crate name for a repo-relative path: the directory under
/// `crates/`, or `"dui"` for the workspace root `src/`.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "dui".to_string()
}

/// Module path derived from a file path (below the crate), plus
/// whether the file is a test/bench/example harness.
fn module_of(path: &str) -> (Vec<String>, bool) {
    let rest = match path.strip_prefix("crates/") {
        Some(r) => r.split_once('/').map_or("", |(_, tail)| tail),
        None => path,
    };
    let harness = rest.starts_with("tests/")
        || rest.starts_with("benches/")
        || rest.starts_with("examples/");
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut segs: Vec<String> = rest
        .split('/')
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if matches!(segs.last().map(String::as_str), Some("lib" | "main" | "mod")) {
        segs.pop();
    }
    (segs, harness)
}

fn is_library(path: &str) -> bool {
    let in_src =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    in_src && !path.contains("/src/bin/")
}

impl SymbolGraph {
    /// Build the table from parsed files (which must already be in
    /// path-sorted order for deterministic ids).
    pub fn build(files: &[ParsedFile<'_>]) -> SymbolGraph {
        let mut symbols: Vec<Symbol> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let crate_name = crate_of(&f.scan.path);
            let (fmod, harness) = module_of(&f.scan.path);
            let library = is_library(&f.scan.path);
            for (ii, item) in f.items.iter().enumerate().skip(1) {
                let mut mod_segs = vec![crate_name.clone()];
                mod_segs.extend(fmod.iter().cloned());
                mod_segs.extend(item.module.iter().cloned());
                let mut segs = mod_segs.clone();
                if let Some(t) = &item.self_type {
                    segs.push(t.clone());
                }
                segs.push(item.name.clone());
                symbols.push(Symbol {
                    path: segs.join("::"),
                    crate_name: crate_name.clone(),
                    mod_segs,
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    file_idx: fi as u32,
                    item_idx: ii as u32,
                    line: item.line,
                    col: item.col,
                    cfg_test: item.cfg_test || harness,
                    library,
                });
            }
        }
        symbols.sort_by(|a, b| {
            (a.path.as_str(), a.file_idx, a.line, a.col)
                .cmp(&(b.path.as_str(), b.file_idx, b.line, b.col))
        });

        let mut g = SymbolGraph {
            symbols,
            ..SymbolGraph::default()
        };
        for (id, s) in g.symbols.iter().enumerate() {
            let id = id as u32;
            g.by_path.entry(s.path.clone()).or_default().push(id);
            let segs: Vec<&str> = s.path.split("::").collect();
            if segs.len() >= 2 {
                let suf = segs[segs.len() - 2..].join("::");
                g.by_suffix2.entry(suf).or_default().push(id);
            }
            if s.self_type.is_none() {
                g.by_fn_name.entry(s.name.clone()).or_default().push(id);
            } else {
                g.by_method.entry(s.name.clone()).or_default().push(id);
            }
            g.by_item.insert((s.file_idx, s.item_idx), id);
        }
        g
    }

    /// Symbols with exactly this canonical path.
    pub fn lookup_path(&self, path: &str) -> Option<&[u32]> {
        self.by_path.get(path).map(Vec::as_slice)
    }

    /// Symbols whose last two path segments match `suffix`
    /// (`Type::name` or `module::name`) — robust to re-exports.
    pub fn lookup_suffix2(&self, suffix: &str) -> Option<&[u32]> {
        self.by_suffix2.get(suffix).map(Vec::as_slice)
    }

    /// Free functions with this bare name.
    pub fn lookup_fn(&self, name: &str) -> Option<&[u32]> {
        self.by_fn_name.get(name).map(Vec::as_slice)
    }

    /// Methods (items with a self type) with this bare name.
    pub fn lookup_method(&self, name: &str) -> Option<&[u32]> {
        self.by_method.get(name).map(Vec::as_slice)
    }

    /// Symbol id for `(file index, item index)`, if the item is named.
    pub fn id_of(&self, file_idx: u32, item_idx: u32) -> Option<u32> {
        self.by_item.get(&(file_idx, item_idx)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParsedFile;

    #[test]
    fn paths_combine_crate_file_mods_and_type() {
        let srcs = [
            (
                "crates/netsim/src/parallel/engine.rs",
                "pub fn run() {}\nimpl Engine { fn step(&mut self) {} }\n",
            ),
            ("src/lib.rs", "pub fn top() {}\n"),
            ("crates/alpha/src/lib.rs", "mod deep { pub fn f() {} }\n"),
        ];
        let files: Vec<ParsedFile<'_>> =
            srcs.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let g = SymbolGraph::build(&files);
        let paths: Vec<&str> = g.symbols.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"netsim::parallel::engine::run"));
        assert!(paths.contains(&"netsim::parallel::engine::Engine::step"));
        assert!(paths.contains(&"dui::top"));
        assert!(paths.contains(&"alpha::deep::f"));
        assert!(g.lookup_suffix2("Engine::step").is_some());
        assert!(g.lookup_fn("run").is_some());
        assert!(g.lookup_method("step").is_some());
    }

    #[test]
    fn harness_files_are_test_gated() {
        let srcs = [("crates/x/tests/prop.rs", "fn helper() {}\n")];
        let files: Vec<ParsedFile<'_>> =
            srcs.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let g = SymbolGraph::build(&files);
        assert!(g.symbols.iter().all(|s| s.cfg_test));
        assert!(g.symbols.iter().all(|s| !s.library));
    }
}
