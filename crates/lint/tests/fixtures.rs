//! Fixture tests: one known-bad and one known-clean source per rule,
//! linted through [`dui_lint::lint_source`] under virtual repo-relative
//! paths (the walker deliberately skips `fixtures/` directories, so
//! these files never pollute the real workspace scan).

use dui_lint::lint_source;

/// Findings of `rule` when `src` is linted as if it lived at `path`.
fn count(path: &str, src: &str, rule: &str) -> usize {
    lint_source(path, src)
        .iter()
        .filter(|f| f.rule == rule)
        .count()
}

const LIB: &str = "crates/x/src/m.rs";

#[test]
fn wall_clock_bad_fires_on_alias_and_direct() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    // The aliased import, the `T::now()` call site, and the two direct
    // SystemTime mentions must all be caught.
    assert!(count(LIB, src, "determinism/wall-clock") >= 3);
}

#[test]
fn wall_clock_clean_ignores_comments_and_strings() {
    let src = include_str!("fixtures/wall_clock_clean.rs");
    assert_eq!(count(LIB, src, "determinism/wall-clock"), 0);
}

#[test]
fn wall_clock_sanctioned_paths_are_exempt() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    assert_eq!(count("crates/bench/src/timer.rs", src, "determinism/wall-clock"), 0);
    assert_eq!(
        count("crates/telemetry/src/wallclock.rs", src, "determinism/wall-clock"),
        0
    );
}

#[test]
fn rng_bad_fires_on_alias_and_getrandom() {
    let src = include_str!("fixtures/rng_bad.rs");
    assert!(count(LIB, src, "determinism/ambient-rng") >= 2);
}

#[test]
fn rng_clean_seeded_generator_passes() {
    let src = include_str!("fixtures/rng_clean.rs");
    assert_eq!(count(LIB, src, "determinism/ambient-rng"), 0);
}

#[test]
fn hash_bad_fires_in_state_digest_body() {
    let src = include_str!("fixtures/hash_bad.rs");
    assert!(count(LIB, src, "hash/unordered-iter") >= 1);
}

#[test]
fn hash_clean_sorted_and_write_unordered_pass() {
    let src = include_str!("fixtures/hash_clean.rs");
    assert_eq!(count(LIB, src, "hash/unordered-iter"), 0);
}

#[test]
fn replay_hash_map_banned_only_under_replay() {
    let src = include_str!("fixtures/replay_hash_bad.rs");
    assert!(count("crates/replay/src/index.rs", src, "hash/unordered-iter") >= 1);
    assert_eq!(count(LIB, src, "hash/unordered-iter"), 0);
}

#[test]
fn panic_bad_fires_on_unwrap_expect_panic() {
    let src = include_str!("fixtures/panic_bad.rs");
    assert_eq!(count(LIB, src, "panic/library-unwrap"), 3);
}

#[test]
fn panic_clean_annotations_and_tests_pass() {
    let src = include_str!("fixtures/panic_clean.rs");
    assert_eq!(count(LIB, src, "panic/library-unwrap"), 0);
}

#[test]
fn panic_rule_skips_non_library_paths() {
    let src = include_str!("fixtures/panic_bad.rs");
    assert_eq!(count("crates/x/tests/it.rs", src, "panic/library-unwrap"), 0);
    assert_eq!(count("crates/x/src/bin/tool.rs", src, "panic/library-unwrap"), 0);
}

#[test]
fn cast_bad_fires_in_digest_scope_only() {
    let src = include_str!("fixtures/cast_bad.rs");
    assert_eq!(count("crates/replay/src/hash.rs", src, "cast/lossy-in-digest"), 2);
    // Outside the digest scope the same source is not this rule's business.
    assert_eq!(count(LIB, src, "cast/lossy-in-digest"), 0);
}

#[test]
fn cast_clean_annotation_and_to_bits_pass() {
    let src = include_str!("fixtures/cast_clean.rs");
    assert_eq!(count("crates/replay/src/hash.rs", src, "cast/lossy-in-digest"), 0);
}

#[test]
fn docs_bad_warn_plus_unrelated_forbid_fires() {
    let src = include_str!("fixtures/docs_bad.rs");
    assert_eq!(count("crates/x/src/lib.rs", src, "docs/missing-deny"), 1);
}

#[test]
fn docs_clean_deny_passes() {
    let src = include_str!("fixtures/docs_clean.rs");
    assert_eq!(count("crates/x/src/lib.rs", src, "docs/missing-deny"), 0);
}

#[test]
fn docs_rule_only_applies_to_crate_roots() {
    let src = include_str!("fixtures/docs_bad.rs");
    assert_eq!(count(LIB, src, "docs/missing-deny"), 0);
}

#[test]
fn arena_bad_fires_on_method_path_and_stem_receivers() {
    let src = include_str!("fixtures/arena_bad.rs");
    // pkt.clone(), Packet::clone(packet), in_flight_pkt.clone().
    assert_eq!(count(LIB, src, "arena/no-packet-clone"), 3);
}

#[test]
fn arena_clean_handles_annotations_and_tests_pass() {
    let src = include_str!("fixtures/arena_clean.rs");
    assert_eq!(count(LIB, src, "arena/no-packet-clone"), 0);
}

#[test]
fn arena_module_itself_is_exempt() {
    let src = include_str!("fixtures/arena_bad.rs");
    assert_eq!(
        count("crates/netsim/src/arena.rs", src, "arena/no-packet-clone"),
        0
    );
}

#[test]
fn flow_bad_fires_on_index_iteration_and_flow_clones() {
    let src = include_str!("fixtures/flow_bad.rs");
    // by_key.iter() (for-loop + method), `for .. in &self.by_key`,
    // by_key.keys(), sender.clone(), flows.clone().
    assert!(count("crates/tcp/src/host.rs", src, "arena/no-flow-clone") >= 5);
    assert!(count("crates/flowgen/src/stream.rs", src, "arena/no-flow-clone") >= 5);
}

#[test]
fn flow_clean_lookup_slot_order_and_annotation_pass() {
    let src = include_str!("fixtures/flow_clean.rs");
    assert_eq!(count("crates/tcp/src/host.rs", src, "arena/no-flow-clone"), 0);
}

#[test]
fn flow_rule_only_applies_to_pool_code() {
    let src = include_str!("fixtures/flow_bad.rs");
    assert_eq!(count(LIB, src, "arena/no-flow-clone"), 0);
}

const PAR: &str = "crates/netsim/src/parallel/fixture.rs";

#[test]
fn parallel_bad_fires_on_every_escape_from_the_borrow_checker() {
    let src = include_str!("fixtures/parallel_bad.rs");
    // unsafe ×2, static mut, transmute, and the Rc/RefCell mentions.
    assert!(count(PAR, src, "parallel/no-shared-mut") >= 6);
}

#[test]
fn parallel_clean_std_sync_and_annotation_pass() {
    let src = include_str!("fixtures/parallel_clean.rs");
    assert_eq!(count(PAR, src, "parallel/no-shared-mut"), 0);
}

#[test]
fn parallel_rule_scoped_to_the_parallel_engine() {
    let src = include_str!("fixtures/parallel_bad.rs");
    assert_eq!(count(LIB, src, "parallel/no-shared-mut"), 0);
    assert_eq!(
        count("crates/netsim/src/wheel.rs", src, "parallel/no-shared-mut"),
        0
    );
}
