//! Property-based tests of the lexer (via the in-tree `propcheck`
//! engine): lexing is total and lossless on arbitrary input, and
//! re-lexing the concatenation of an already-lexed token stream is a
//! fixed point.

use dui_lint::lexer::lex;
use dui_stats::propcheck::Gen;
use dui_stats::{prop_assert, prop_assert_eq, prop_check};

/// A pool of token texts covering every lexer mode; random
/// concatenations (whitespace-separated, so adjacent picks cannot fuse
/// into a different token) exercise mode transitions.
const POOL: &[&str] = &[
    "fn",
    "ident",
    "r#match",
    "x1_y2",
    "'a",
    "'static",
    "'x'",
    "'\\n'",
    "'\\''",
    "b'q'",
    "\"plain\"",
    "\"esc \\\" quote\"",
    "\"multi\nline\"",
    "r\"raw\"",
    "r#\"fenced \" quote\"#",
    "r##\"nested \"# fence\"##",
    "br#\"bytes\"#",
    "// line comment",
    "/// doc comment",
    "/* block */",
    "/* nested /* block */ comment */",
    "/** doc block */",
    "0",
    "42u64",
    "0xFF",
    "0b1010",
    "1_000_000",
    "1.5e-3",
    "3.14f64",
    "{",
    "}",
    "(",
    ")",
    "::",
    ";",
    ",",
    ".",
    "->",
    "=>",
    "==",
    "&&",
    "#",
    "!",
    "[",
    "]",
];

fn random_source(g: &mut Gen) -> String {
    let n = g.usize(0..40);
    let mut src = String::new();
    for _ in 0..n {
        src.push_str(POOL[g.usize(0..POOL.len())]);
        // Line comments must terminate before the next token.
        src.push(if g.bool() { ' ' } else { '\n' });
    }
    src
}

prop_check! {
    fn lex_is_lossless_on_token_soup(g) {
        let src = random_source(g);
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(&rebuilt, &src);
    }

    fn relex_is_a_fixed_point(g) {
        let src = random_source(g);
        let first = lex(&src);
        let rebuilt: String = first.iter().map(|t| t.text).collect();
        let second = lex(&rebuilt);
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(second.iter()) {
            prop_assert_eq!(a.text, b.text);
            prop_assert_eq!(a.line, b.line);
            prop_assert_eq!(a.col, b.col);
        }
    }

    fn lex_is_total_on_arbitrary_bytes(g) {
        // Printable-ish ASCII soup with quote/backslash/brace bias:
        // unterminated strings, stray fences, lone backslashes — the
        // lexer must neither panic nor drop bytes.
        let n = g.usize(0..120);
        let mut src = String::new();
        for _ in 0..n {
            let c = match g.usize(0..8) {
                0 => '"',
                1 => '\'',
                2 => '\\',
                3 => '#',
                4 => 'r',
                5 => '/',
                6 => '\n',
                _ => g.u8(0x20..0x7f) as char,
            };
            src.push(c);
        }
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        prop_assert_eq!(&rebuilt, &src);
        prop_assert!(toks.iter().all(|t| !t.text.is_empty()));
    }
}
