//! Fixture tests for the whole-workspace graph rules: cross-crate
//! taint laundering, quarantine barriers, per-item allows, a
//! cross-crate lock-order cycle, and engine-reachable shared
//! mutability. Witness call paths are asserted **byte-exactly** — the
//! chains are part of the analyzer's deterministic contract, not
//! decoration.

use dui_lint::{lint_sources, Finding};

fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn of<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

const WALL_SEED: &str = include_str!("fixtures/graph/wall_seed.rs");
const WALL_LAUNDER: &str = include_str!("fixtures/graph/wall_launder.rs");
const WALL_QUARANTINE: &str = include_str!("fixtures/graph/wall_quarantine_caller.rs");
const RNG_SEED: &str = include_str!("fixtures/graph/rng_seed.rs");
const RNG_LAUNDER: &str = include_str!("fixtures/graph/rng_launder.rs");
const LOCK_CYCLE_A: &str = include_str!("fixtures/graph/lock_cycle_a.rs");
const LOCK_CYCLE_B: &str = include_str!("fixtures/graph/lock_cycle_b.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/graph/lock_clean.rs");
const SHARED_ENTRY: &str = include_str!("fixtures/graph/shared_entry.rs");
const SHARED_HELPER_BAD: &str = include_str!("fixtures/graph/shared_helper_bad.rs");
const SHARED_HELPER_CLEAN: &str = include_str!("fixtures/graph/shared_helper_clean.rs");

#[test]
fn wall_clock_taint_crosses_crates_with_exact_witness_chain() {
    let findings = lint_sources(&sources(&[
        ("crates/alpha/src/lib.rs", WALL_SEED),
        ("crates/beta/src/lib.rs", WALL_LAUNDER),
    ]));
    let hits = of(&findings, "determinism/transitive-wall-clock");
    // Exactly two tainted non-seed symbols: the same-crate wrapper and
    // the cross-crate launderer. The allowed item and its caller stay
    // clean (the allow is both a silencer and a propagation barrier).
    assert_eq!(hits.len(), 2, "findings: {findings:#?}");

    let wrapper = hits[0];
    assert_eq!(wrapper.file, "crates/alpha/src/lib.rs");
    assert_eq!((wrapper.line, wrapper.col), (11, 5));
    assert_eq!(
        wrapper.message,
        "`alpha::elapsed_ms` reaches a wall-clock read through its call graph: \
         alpha::elapsed_ms -> alpha::ticks; `alpha::ticks` uses `std::time::Instant` \
         — library code must be a pure function of (config, seed); quarantine timing \
         in crates/bench or telemetry::wallclock, or annotate the item with \
         `// lint: allow(transitive-wall-clock): <reason>`"
    );

    let launderer = hits[1];
    assert_eq!(launderer.file, "crates/beta/src/lib.rs");
    assert_eq!((launderer.line, launderer.col), (8, 5));
    assert_eq!(
        launderer.message,
        "`beta::schedule` reaches a wall-clock read through its call graph: \
         beta::schedule -> alpha::elapsed_ms -> alpha::ticks; `alpha::ticks` uses \
         `std::time::Instant` — library code must be a pure function of \
         (config, seed); quarantine timing in crates/bench or telemetry::wallclock, \
         or annotate the item with `// lint: allow(transitive-wall-clock): <reason>`"
    );
}

#[test]
fn bench_quarantine_blocks_caller_ward_taint() {
    let findings = lint_sources(&sources(&[
        ("crates/alpha/src/lib.rs", WALL_SEED),
        ("crates/beta/src/lib.rs", WALL_LAUNDER),
        ("crates/bench/src/stage.rs", WALL_QUARANTINE),
    ]));
    let hits = of(&findings, "determinism/transitive-wall-clock");
    assert_eq!(hits.len(), 2, "bench caller must not be flagged");
    assert!(hits.iter().all(|f| !f.file.starts_with("crates/bench/")));
}

#[test]
fn rng_taint_crosses_crates_with_exact_witness_chain() {
    let findings = lint_sources(&sources(&[
        ("crates/alpha/src/lib.rs", RNG_SEED),
        ("crates/beta/src/lib.rs", RNG_LAUNDER),
    ]));
    let hits = of(&findings, "determinism/transitive-rng");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert_eq!(hits[0].file, "crates/beta/src/lib.rs");
    assert_eq!((hits[0].line, hits[0].col), (5, 16));
    assert_eq!(
        hits[0].message,
        "`beta::shuffle` reaches an ambient randomness source through its call \
         graph: beta::shuffle -> alpha::draw; `alpha::draw` uses ambient randomness \
         source `thread_rng` — all randomness must flow from the seeded \
         dui_stats::Rng so runs replay bit-identically, or annotate the item with \
         `// lint: allow(transitive-rng): <reason>`"
    );
}

#[test]
fn lock_order_cycle_across_two_crates_is_reported_once() {
    let findings = lint_sources(&sources(&[
        ("crates/netsim/src/parallel/order_a.rs", LOCK_CYCLE_A),
        ("crates/supervisord/src/lib.rs", LOCK_CYCLE_B),
    ]));
    let hits = of(&findings, "parallel/lock-order");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert_eq!(hits[0].file, "crates/netsim/src/parallel/order_a.rs");
    assert_eq!((hits[0].line, hits[0].col), (11, 22));
    assert_eq!(
        hits[0].message,
        "lock-order cycle [LOCK_A, LOCK_B]: LOCK_A -> LOCK_B at \
         crates/netsim/src/parallel/order_a.rs:11 in \
         `netsim::parallel::order_a::forward` via `supervisord::bump_b`; \
         LOCK_B -> LOCK_A at crates/supervisord/src/lib.rs:17 in \
         `supervisord::reverse` via `supervisord::grab_a` — lock acquisition order \
         must be globally consistent; annotate the acquisition with \
         `// lint: allow(lock-order): <reason>` if the overlap is provably impossible"
    );
}

#[test]
fn consistent_lock_order_and_sharded_reacquisition_are_clean() {
    let findings = lint_sources(&sources(&[(
        "crates/netsim/src/parallel/order_c.rs",
        LOCK_CLEAN,
    )]));
    assert!(of(&findings, "parallel/lock-order").is_empty());
}

#[test]
fn lock_order_allow_drops_the_acquisition() {
    // Same cycle, but the B-then-A acquisition is annotated away.
    let patched = LOCK_CYCLE_B.replace(
        "    let b = LOCK_B.lock();\n    grab_a();",
        "    // lint: allow(lock-order): fixture — audited, never overlaps\n    \
         let b = LOCK_B.lock();\n    grab_a();",
    );
    assert_ne!(patched, LOCK_CYCLE_B, "patch must apply");
    let findings = lint_sources(&sources(&[
        ("crates/netsim/src/parallel/order_a.rs", LOCK_CYCLE_A),
        ("crates/supervisord/src/lib.rs", &patched),
    ]));
    assert!(of(&findings, "parallel/lock-order").is_empty());
}

#[test]
fn shared_mut_reachable_from_engine_is_flagged_with_exact_chain() {
    let findings = lint_sources(&sources(&[
        ("crates/netsim/src/parallel/entry.rs", SHARED_ENTRY),
        ("crates/netsim/src/scratch.rs", SHARED_HELPER_BAD),
    ]));
    let hits = of(&findings, "parallel/transitive-shared-mut");
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert_eq!(hits[0].file, "crates/netsim/src/scratch.rs");
    assert_eq!((hits[0].line, hits[0].col), (5, 24));
    assert_eq!(
        hits[0].message,
        "`RefCell` in `netsim::scratch::bump`, which runs under the parallel \
         engine: netsim::parallel::entry::run_window -> netsim::scratch::bump; \
         `netsim::parallel::entry::run_window` is an engine entry point — code \
         reachable from the engine must honor its ownership discipline; use \
         ownership or std::sync, or annotate the item with \
         `// lint: allow(transitive-shared-mut): <reason>`"
    );
}

#[test]
fn shared_mut_clean_helper_and_unreachable_refcell_pass() {
    // std::sync helper reached from the engine: clean.
    let findings = lint_sources(&sources(&[
        ("crates/netsim/src/parallel/entry.rs", SHARED_ENTRY),
        ("crates/netsim/src/scratch.rs", SHARED_HELPER_CLEAN),
    ]));
    assert!(of(&findings, "parallel/transitive-shared-mut").is_empty());

    // RefCell helper NOT reached from any engine entry: clean.
    let findings = lint_sources(&sources(&[(
        "crates/netsim/src/scratch.rs",
        SHARED_HELPER_BAD,
    )]));
    assert!(of(&findings, "parallel/transitive-shared-mut").is_empty());
}

#[test]
fn shared_mut_item_allow_silences_the_finding() {
    let patched = SHARED_HELPER_BAD.replace(
        "pub fn bump() {",
        "// lint: allow(transitive-shared-mut): fixture — audited single-thread use\n\
         pub fn bump() {",
    );
    assert_ne!(patched, SHARED_HELPER_BAD, "patch must apply");
    let findings = lint_sources(&sources(&[
        ("crates/netsim/src/parallel/entry.rs", SHARED_ENTRY),
        ("crates/netsim/src/scratch.rs", &patched),
    ]));
    assert!(of(&findings, "parallel/transitive-shared-mut").is_empty());
}
