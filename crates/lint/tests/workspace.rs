//! The workspace gate as a test: linting the real tree with the real
//! checked-in baseline must produce zero non-baselined findings and no
//! stale baseline entries. This is the same invariant
//! `scripts/lint_determinism.sh` enforces, so `cargo test` alone
//! catches a determinism regression even where the script never runs.

use std::path::Path;

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the repo root")
}

fn workspace_report() -> dui_lint::Report {
    let root = repo_root();
    let baseline_text =
        std::fs::read_to_string(root.join("lint.baseline")).unwrap_or_default();
    let baseline = dui_lint::Baseline::parse(&baseline_text);
    let paths: Vec<String> = dui_lint::DEFAULT_PATHS.iter().map(|s| s.to_string()).collect();
    dui_lint::lint_paths(root, &paths, &baseline).expect("workspace scan succeeds")
}

#[test]
fn workspace_has_no_new_findings() {
    let report = workspace_report();
    let new: Vec<String> = report
        .new_findings()
        .map(|f| format!("{}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        new.is_empty(),
        "non-baselined lint findings (fix them or regenerate lint.baseline \
         with `cargo run -p dui-lint -- --write-baseline`):\n{}",
        new.join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let report = workspace_report();
    assert!(
        report.stale_baseline.is_empty(),
        "baseline entries matching nothing (remove them or regenerate):\n{}",
        report.stale_baseline.join("\n")
    );
}

#[test]
fn workspace_scan_is_byte_deterministic() {
    let a = dui_lint::to_jsonl(&workspace_report().findings);
    let b = dui_lint::to_jsonl(&workspace_report().findings);
    assert_eq!(a, b);
}
