//! Property-based tests of the graph layer (via the in-tree
//! `propcheck` engine): the parser's owner assignment partitions the
//! code stream, the call-graph dump is byte-deterministic under input
//! shuffling, and taint reachability is monotone in the edge set.

use dui_lint::callgraph::CallGraph;
use dui_lint::graph_dump_sources;
use dui_lint::parse::ParsedFile;
use dui_lint::taint::reach_callers;
use dui_stats::propcheck::Gen;
use dui_stats::{prop_assert, prop_assert_eq, prop_check};

/// Random item soup: fns (possibly nested), consts, mods, impl blocks,
/// stray tokens at file level — enough shape variety to stress the
/// owner partition without needing valid Rust semantics.
fn random_items(g: &mut Gen, depth: usize) -> String {
    let n = g.usize(0..5);
    let mut src = String::new();
    for i in 0..n {
        match g.usize(0..6) {
            0 => {
                src.push_str(&format!("fn f{depth}_{i}(x: u32) {{\n    let y = x + 1;\n"));
                if depth < 2 && g.bool() {
                    for line in random_items(g, depth + 1).lines() {
                        src.push_str("    ");
                        src.push_str(line);
                        src.push('\n');
                    }
                }
                src.push_str("}\n");
            }
            1 => src.push_str(&format!("const C{depth}_{i}: u32 = {i};\n")),
            2 => {
                src.push_str(&format!("mod m{depth}_{i} {{\n"));
                if depth < 2 {
                    for line in random_items(g, depth + 1).lines() {
                        src.push_str("    ");
                        src.push_str(line);
                        src.push('\n');
                    }
                }
                src.push_str("}\n");
            }
            3 => src.push_str(&format!(
                "impl T{depth}_{i} {{\n    fn m(&self) {{ self.x(); }}\n}}\n"
            )),
            4 => src.push_str(&format!("struct S{depth}_{i} {{ a: u32, b: u32 }}\n")),
            _ => src.push_str("; ; { } [ ] ( )\n"),
        }
    }
    src
}

/// A small random multi-file workspace whose fns call each other by
/// simple name and cross-crate path, producing resolved, unresolved,
/// and method edges.
fn random_workspace(g: &mut Gen) -> Vec<(String, String)> {
    let crates = ["alpha", "beta", "gamma"];
    let mut files = Vec::new();
    for (ci, name) in crates.iter().enumerate() {
        let n = g.usize(1..4);
        let mut src = String::from("//! gen\n");
        for i in 0..n {
            src.push_str(&format!("/// d\npub fn f{i}() {{\n"));
            let calls = g.usize(0..3);
            for _ in 0..calls {
                let target_crate = crates[g.usize(0..crates.len())];
                let target_fn = g.usize(0..4);
                if g.bool() {
                    src.push_str(&format!("    dui_{target_crate}::f{target_fn}();\n"));
                } else {
                    src.push_str(&format!("    f{target_fn}();\n"));
                }
            }
            src.push_str("}\n");
        }
        files.push((format!("crates/{}/src/lib.rs", crates[ci]), src));
        let _ = name;
    }
    files
}

prop_check! {
    fn owner_assignment_partitions_the_code_stream(g) {
        let src = random_items(g, 0);
        let f = ParsedFile::parse("crates/x/src/lib.rs", &src);
        prop_assert_eq!(f.owner.len(), f.scan.code.len());
        let spans = f.owner_spans();
        if f.scan.code.is_empty() {
            prop_assert!(spans.is_empty());
        } else {
            // Maximal runs: cover [0, len) exactly, no gaps, no
            // overlaps, adjacent spans differ in owner.
            prop_assert_eq!(spans[0].0, 0);
            prop_assert_eq!(spans[spans.len() - 1].1, f.scan.code.len());
            for w in spans.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
                prop_assert!(w[0].2 != w[1].2);
            }
            // Every owner is a real item id, and every fn item owns at
            // least its own body tokens.
            for &(_, _, id) in &spans {
                prop_assert!((id as usize) < f.items.len());
            }
        }
    }

    fn graph_dump_is_byte_identical_under_input_shuffle(g) {
        let files = random_workspace(g);
        let first = graph_dump_sources(&files);

        // Shuffle the input order (and duplicate one entry): the dump
        // must not change by a single byte.
        let mut shuffled = files.clone();
        for i in (1..shuffled.len()).rev() {
            let j = g.usize(0..i + 1);
            shuffled.swap(i, j);
        }
        if let Some(extra) = shuffled.first().cloned() {
            shuffled.push(extra);
        }
        let second = graph_dump_sources(&shuffled);
        prop_assert_eq!(&first, &second);

        // And a plain re-run on identical input is a fixed point.
        let third = graph_dump_sources(&files);
        prop_assert_eq!(&first, &third);
    }

    fn taint_reach_is_monotone_in_the_edge_set(g) {
        let n = g.usize(2..12);
        let m = g.usize(0..20);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push((g.usize(0..n) as u32, g.usize(0..n) as u32));
        }
        let seeds = vec![g.usize(0..n) as u32];

        let base = CallGraph::from_edges(n, &edges);
        let reached = reach_callers(&base, &seeds, &|_| false);

        // Add one more random edge: nothing previously tainted may
        // disappear, and depths may only shrink or stay.
        let mut more = edges.clone();
        more.push((g.usize(0..n) as u32, g.usize(0..n) as u32));
        let bigger = CallGraph::from_edges(n, &more);
        let reached2 = reach_callers(&bigger, &seeds, &|_| false);

        for (id, tr) in &reached {
            match reached2.get(id) {
                None => prop_assert!(false),
                Some(tr2) => prop_assert!(tr2.depth <= tr.depth),
            }
        }

        // Determinism: same graph, same seeds, identical traces.
        let again = reach_callers(&base, &seeds, &|_| false);
        prop_assert_eq!(reached.len(), again.len());
        for (id, tr) in &reached {
            let tr2 = &again[id];
            prop_assert_eq!(tr.depth, tr2.depth);
            prop_assert_eq!(tr.via, tr2.via);
        }
    }
}
