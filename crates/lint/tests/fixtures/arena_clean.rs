// CLEAN: packets move by handle; the only copies are annotated or are
// of non-packet values.
#[derive(Clone, Copy)]
pub struct PacketRef(pub u32, pub u32);

pub fn forward(r: PacketRef, out: &mut Vec<PacketRef>) {
    out.push(r); // handles are Copy — no body duplicated
}

pub fn label(name: &String) -> String {
    name.clone() // not a packet; receiver name has no packet stem
}

pub fn sanctioned(pkt: &Vec<u8>) -> Vec<u8> {
    // lint: allow(packet-clone): checkpoint materialization fixture
    pkt.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_may_clone() {
        let pkt = vec![1u8, 2];
        let copy = pkt.clone();
        assert_eq!(copy.len(), 2);
    }
}
