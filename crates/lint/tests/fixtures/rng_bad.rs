// BAD: ambient (OS-seeded) randomness in library code, with the
// grep-defeating alias rename.
use rand::thread_rng as fresh;

pub fn roll() -> u64 {
    let mut r = fresh();
    r.gen_range(0..6)
}

pub fn seed_from_os() -> [u8; 8] {
    let mut buf = [0u8; 8];
    getrandom(&mut buf);
    buf
}
