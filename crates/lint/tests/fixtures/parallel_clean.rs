// CLEAN: ownership and std::sync only — exactly what the parallel
// engine's determinism discipline prescribes. Mentions of the banned
// names in comments ("RefCell", "unsafe") and strings must not fire.
use std::sync::{Arc, Barrier, Mutex};

pub struct Ctl {
    pub end: u64,
    pub done: bool,
}

pub fn window_sync(workers: usize) -> (Arc<Barrier>, Arc<Mutex<Ctl>>) {
    let barrier = Arc::new(Barrier::new(workers));
    let ctl = Arc::new(Mutex::new(Ctl { end: 0, done: false }));
    (barrier, ctl)
}

pub fn describe() -> &'static str {
    "no unsafe or RefCell here, only std::sync"
}

pub fn audited() -> u64 {
    // lint: allow(shared-mut): fixture exercising the escape hatch
    let cell = std::cell::Cell::new(7u64);
    cell.get()
}
