//! A library crate root carrying the doc-coverage gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Documented API.
pub fn api() {}
