// CLEAN: digest inputs converted losslessly (to_bits, explicit
// annotation where the reinterpretation is the point).
pub struct S {
    x: i64,
    f: f64,
}

impl S {
    pub fn state_digest(&self, d: &mut Digest) {
        // lint: allow(cast): two's-complement bit reinterpretation, by design
        d.write_u64(self.x as u64);
        d.write_u64(self.f.to_bits());
    }
}
