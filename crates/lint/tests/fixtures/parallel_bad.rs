// BAD: unsynchronized shared mutability inside the parallel engine.
use std::cell::RefCell;
use std::rc::Rc;

static mut WINDOW_COUNT: u64 = 0;

pub fn bump() {
    unsafe {
        WINDOW_COUNT += 1;
    }
}

pub fn shared_counter() -> Rc<RefCell<u64>> {
    Rc::new(RefCell::new(0))
}

pub fn reinterpret(x: u64) -> i64 {
    unsafe { std::mem::transmute(x) }
}
