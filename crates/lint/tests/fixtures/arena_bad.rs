// BAD: packet bodies copied by value outside the arena module.
pub struct Packet {
    pub size: u32,
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        Packet { size: self.size }
    }
}

pub fn requeue(pkt: &Packet, out: &mut Vec<Packet>) {
    out.push(pkt.clone());
}

pub fn duplicate(packet: &Packet) -> Packet {
    Packet::clone(packet)
}

pub fn drain(in_flight_pkt: &Option<Packet>) -> Option<Packet> {
    in_flight_pkt.clone()
}
