// CLEAN: the same digest, but iteration order is pinned before folding
// (a `sorted` marker on the line) or folded commutatively through
// `write_unordered`.
use std::collections::HashMap;

pub struct Flows {
    flows: HashMap<u64, u64>,
}

impl Flows {
    pub fn state_digest(&self, d: &mut Digest) {
        let mut keys: Vec<_> = self.flows.keys().copied().collect(); // sorted below
        keys.sort_unstable();
        for k in keys {
            d.write_u64(k);
        }
        for (_k, v) in self.flows.iter().map(sub_digest) {
            // write_unordered is the commutative fold built for this
            d.write_unordered(v);
        }
    }
}
