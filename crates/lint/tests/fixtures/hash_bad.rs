// BAD: a state digest folding unordered HashMap iteration — the digest
// of the "same" state depends on hasher seeding.
use std::collections::HashMap;

pub struct Flows {
    flows: HashMap<u64, u64>,
}

impl Flows {
    pub fn state_digest(&self, d: &mut Digest) {
        for k in self.flows.keys() {
            d.write_u64(*k);
        }
    }
}
