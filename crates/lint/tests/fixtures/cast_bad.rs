// BAD (under a digest-scope virtual path): lossy / reinterpreting `as`
// casts feeding a state digest silently change what gets hashed.
pub struct S {
    x: i64,
    f: f64,
}

impl S {
    pub fn state_digest(&self, d: &mut Digest) {
        d.write_u64(self.x as u64);
        d.write_u64(self.f as u64);
    }
}
