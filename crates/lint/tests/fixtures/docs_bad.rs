//! A library crate root missing the doc-coverage gate: `warn` next to
//! an unrelated `forbid` must not satisfy the rule.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub fn api() {}
