// BAD: reads the wall clock from library code, through an alias rename
// that the old grep gate (`Instant::now|std::time::Instant`) only half
// caught — the call site `T::now()` matched no pattern at all.
use std::time::Instant as T;

pub fn elapsed_ns() -> u128 {
    let start = T::now();
    start.elapsed().as_nanos()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
