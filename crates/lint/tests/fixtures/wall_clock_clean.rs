// CLEAN: simulated time only; mentions of Instant in comments and
// strings must not fire. "std::time::Instant" appears right here.
use std::time::Duration;

/// Not a clock read: `Instant::now()` in a doc comment.
pub fn step(now_ns: u64, dt: Duration) -> u64 {
    let msg = "no std::time::Instant here, just a string";
    now_ns + dt.as_nanos() as u64 + msg.len() as u64
}
