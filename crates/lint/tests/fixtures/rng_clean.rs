// CLEAN: explicit seeded RNG — randomness is a function of the seed
// the caller passes, which is the repository's determinism contract.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

pub fn roll(seed: u64) -> u64 {
    Rng::new(seed).next_u64() % 6
}
