// BAD: unwraps and panics on library paths, no escape annotation.
pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}

pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("non-empty")
}

pub fn boom() {
    panic!("library code must return errors");
}
