// CLEAN: flows move by handle; the index is lookup-only, iteration
// goes through pool slot order, and the one deliberate copy is
// annotated.
use std::collections::HashMap;

#[derive(Clone, Copy)]
pub struct FlowRef(pub u32, pub u32);

pub struct Host {
    by_key: HashMap<u64, FlowRef>,
    slots: Vec<FlowRef>,
}

impl Host {
    pub fn lookup(&self, key: u64) -> Option<FlowRef> {
        self.by_key.get(&key).copied()
    }

    pub fn digest_all(&self) -> u64 {
        let mut acc = 0;
        // Pool slot order is the canonical iteration order.
        for r in &self.slots {
            acc ^= u64::from(r.0);
        }
        acc
    }

    pub fn label(&self, name: &String) -> String {
        name.clone() // not flow state; receiver has no flow stem
    }

    pub fn checkpoint(&self) -> Vec<FlowRef> {
        // lint: allow(flow-clone): checkpoint materialization fixture
        self.by_key.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_may_iterate() {
        let h = Host {
            by_key: HashMap::new(),
            slots: Vec::new(),
        };
        for (_, r) in h.by_key.iter() {
            let _ = r;
        }
    }
}
