// CLEAN: typed errors on library paths; panics only behind the
// documented escape hatch or inside #[cfg(test)].
pub fn parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

pub fn head(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

pub fn checked(v: &[u64]) -> u64 {
    // lint: allow(panic): slice is non-empty by construction at every call site
    *v.first().expect("non-empty")
}

pub fn total(v: &[u64]) -> u64 {
    v.iter().copied().fold(0u64, |a, b| a.wrapping_add(b))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Result<u64, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}
