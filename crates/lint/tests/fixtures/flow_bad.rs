// BAD: pool code iterating the FlowKey index and cloning flow state.
use std::collections::HashMap;

pub struct FlowKey(pub u64);
pub struct TcpSender {
    pub cwnd: f64,
}

pub struct Host {
    by_key: HashMap<u64, u32>,
}

impl Host {
    pub fn digest_all(&self) -> u64 {
        let mut acc = 0;
        for (k, _) in self.by_key.iter() {
            acc ^= k;
        }
        acc
    }

    pub fn sweep(&self) -> u64 {
        let mut acc = 0;
        for r in &self.by_key {
            acc += *r.1 as u64;
        }
        acc
    }

    pub fn keys_snapshot(&self) -> Vec<u64> {
        self.by_key.keys().copied().collect()
    }
}

pub fn duplicate(sender: &TcpSender) -> TcpSender {
    sender.clone()
}

pub fn collect(flows: &Vec<TcpSender>) -> Vec<TcpSender> {
    flows.clone()
}

impl Clone for TcpSender {
    fn clone(&self) -> Self {
        TcpSender { cwnd: self.cwnd }
    }
}
