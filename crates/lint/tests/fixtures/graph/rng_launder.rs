//! Fixture: reaches the ambient generator through one hop.

/// Transitively RNG-tainted through `dui_alpha::draw`.
pub fn shuffle() -> u64 {
    dui_alpha::draw()
}
