//! Fixture: out-of-engine helper that honors the engine's ownership
//! discipline — `std::sync` only.

use std::sync::Mutex;

/// Synchronized state: fine to reach from the engine.
pub static COUNT: Mutex<u32> = Mutex::new(0);

/// Bumps through the mutex.
pub fn bump() {
    if let Ok(mut c) = COUNT.lock() {
        *c += 1;
    }
}
