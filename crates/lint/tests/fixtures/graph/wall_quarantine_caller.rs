//! Fixture: the bench harness may time whatever it likes — the
//! quarantine is a taint barrier, not just a reporting filter.

/// Calls straight into the clock-tainted helper; sanctioned.
pub fn time_it() -> u64 {
    dui_alpha::elapsed_ms()
}
