//! Fixture: consistent A-then-B order everywhere — no cycle, and no
//! self-edge on re-acquiring the same (sharded) identity.

use std::sync::Mutex;

/// Lock A.
pub static ORD_A: Mutex<u32> = Mutex::new(0);
/// Lock B.
pub static ORD_B: Mutex<u32> = Mutex::new(0);

/// A then B, both `let`-bound.
pub fn one() {
    let a = ORD_A.lock();
    let b = ORD_B.lock();
    drop(b);
    drop(a);
}

/// Also A then B, the second a statement temporary.
pub fn two() {
    let a = ORD_A.lock();
    ORD_B.lock();
    drop(a);
}

/// Sequential, never overlapping: B acquired after A is released.
pub fn three() {
    let a = ORD_A.lock();
    drop(a);
    let b = ORD_B.lock();
    drop(b);
}

/// Same identity twice (the sharded-slot pattern): no self-edge.
pub fn shards() {
    let a = ORD_A.lock();
    let b = ORD_A.lock();
    drop(b);
    drop(a);
}
