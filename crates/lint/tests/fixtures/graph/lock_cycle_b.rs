//! Fixture: second half of the cycle — B then A.

use std::sync::Mutex;

/// Lock B.
pub static LOCK_B: Mutex<u32> = Mutex::new(0);

/// Acquires B alone.
pub fn bump_b() {
    let b = LOCK_B.lock();
    drop(b);
}

/// Acquires B, then A through `grab_a`.
pub fn reverse() {
    let b = LOCK_B.lock();
    grab_a();
    drop(b);
}

/// Acquires A.
fn grab_a() {
    let a = dui_netsim::parallel::order_a::LOCK_A.lock();
    drop(a);
}
