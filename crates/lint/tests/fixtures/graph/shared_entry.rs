//! Fixture: parallel-engine entry point reaching out-of-engine code.

/// Engine entry: fans work out to the scratch helper.
pub fn run_window() {
    dui_netsim::scratch::bump();
}
