//! Fixture: second crate of the laundering chain — imports the
//! wrapper and reaches the clock two hops away.

use dui_alpha::elapsed_ms;

/// Transitively clock-tainted through `elapsed_ms`.
pub fn schedule() -> u64 {
    elapsed_ms() + 1
}

/// Quarantined by an explicit per-item allow: no finding here, and
/// taint does not propagate through it.
// lint: allow(transitive-wall-clock): fixture — audited laundering stop
pub fn allowed_schedule() -> u64 {
    elapsed_ms() + 2
}

/// Calls only the allowed item — must stay clean.
pub fn caller_of_allowed() -> u64 {
    allowed_schedule()
}
