//! Fixture: first half of a cross-crate lock-order cycle.

use std::sync::Mutex;

/// Lock A.
pub static LOCK_A: Mutex<u32> = Mutex::new(0);

/// Acquires A, then B through `dui_supervisord::bump_b`.
pub fn forward() {
    let a = LOCK_A.lock();
    dui_supervisord::bump_b();
    drop(a);
}
