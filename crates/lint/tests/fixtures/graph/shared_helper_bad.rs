//! Fixture: out-of-engine helper smuggling interior mutability.

/// Uses `RefCell` — fine on its own, banned when the engine reaches it.
pub fn bump() {
    let c = std::cell::RefCell::new(0u32);
    *c.borrow_mut() += 1;
}
