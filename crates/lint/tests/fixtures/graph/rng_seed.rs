//! Fixture: ambient-RNG seed.

/// Draws from the thread-local generator (direct finding).
pub fn draw() -> u64 {
    thread_rng().next_u64()
}
