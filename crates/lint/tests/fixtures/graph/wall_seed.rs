//! Fixture: the taint seed crate — a wall-clock read plus a
//! harmless-looking wrapper that launders it.

/// Reads the wall clock (direct `determinism/wall-clock` finding).
pub fn ticks() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

/// Launders the read behind an innocent name.
pub fn elapsed_ms() -> u64 {
    ticks() / 1_000_000
}
