// BAD (only under a crates/replay/ virtual path): the replay subsystem
// defines the digests, so unordered containers are banned there
// outright — everything it hashes is Vec-shaped.
use std::collections::HashMap;

pub struct Index {
    by_id: HashMap<u64, usize>,
}
