//! Nested span tracing into a bounded ring buffer.
//!
//! Spans are timestamped with opaque `u64` nanoseconds supplied by the
//! caller, which keeps this module time-source agnostic: the simulator
//! passes deterministic `SimTime` nanos, while the profiler in
//! [`crate::wallclock`] may pass monotonic wall-clock nanos. The
//! recorder itself never reads a clock.
//!
//! The buffer is bounded: once `capacity` completed spans are stored,
//! the oldest is dropped and [`SpanRecorder::wrapped`] counts the loss,
//! so long simulations can keep tracing enabled without unbounded
//! memory growth.

/// One completed span: a named interval with a nesting depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Name supplied at `enter`.
    pub name: String,
    /// Start timestamp in caller-defined nanoseconds.
    pub start_ns: u64,
    /// End timestamp in caller-defined nanoseconds.
    pub end_ns: u64,
    /// Nesting depth at the time of `enter` (0 = top level).
    pub depth: usize,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Records nested spans into a bounded ring buffer.
#[derive(Debug)]
pub struct SpanRecorder {
    capacity: usize,
    spans: Vec<Span>,
    head: usize,
    wrapped: u64,
    stack: Vec<(String, u64)>,
}

impl SpanRecorder {
    /// A recorder holding at most `capacity` completed spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            capacity: capacity.max(1),
            spans: Vec::new(),
            head: 0,
            wrapped: 0,
            stack: Vec::new(),
        }
    }

    /// Open a span at `now_ns`. Spans nest: depth is the number of
    /// currently-open spans.
    pub fn enter(&mut self, name: &str, now_ns: u64) {
        self.stack.push((name.to_string(), now_ns));
    }

    /// Close the innermost open span at `now_ns`. A no-op if no span is
    /// open (tolerated so callers can guard coarsely).
    pub fn exit(&mut self, now_ns: u64) {
        let Some((name, start_ns)) = self.stack.pop() else {
            return;
        };
        let span = Span {
            name,
            start_ns,
            end_ns: now_ns,
            depth: self.stack.len(),
        };
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped += 1;
        }
    }

    /// Completed spans, oldest first.
    pub fn spans(&self) -> Vec<&Span> {
        let (newer, older) = self.spans.split_at(self.head);
        older.iter().chain(newer.iter()).collect()
    }

    /// Number of completed spans retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no completed spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many completed spans were evicted because the ring was full.
    pub fn wrapped(&self) -> u64 {
        self.wrapped
    }

    /// Number of currently-open (unclosed) spans.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_records_depth() {
        let mut r = SpanRecorder::new(8);
        r.enter("outer", 0);
        r.enter("inner", 10);
        r.exit(20);
        r.exit(30);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].duration_ns(), 10);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].duration_ns(), 30);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = SpanRecorder::new(2);
        for i in 0..4u64 {
            r.enter("s", i * 10);
            r.exit(i * 10 + 5);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.wrapped(), 2);
        let spans = r.spans();
        assert_eq!(spans[0].start_ns, 20);
        assert_eq!(spans[1].start_ns, 30);
    }

    #[test]
    fn unbalanced_exit_is_tolerated() {
        let mut r = SpanRecorder::new(2);
        r.exit(5);
        assert!(r.is_empty());
        assert_eq!(r.open_depth(), 0);
    }
}
