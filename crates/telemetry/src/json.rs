//! Deterministic JSON fragments shared by every exporter in the
//! workspace.
//!
//! The registry's `Snapshot::to_json_line`, the metrics JSONL writer in
//! `dui-bench`, and the supervisord verdict log all need the same two
//! guarantees: floats print identically for identical bit patterns, and
//! strings escape identically. Centralizing the helpers here keeps every
//! byte-compared artifact (`results/metrics.jsonl`, verdict JSONL) on
//! one formatting contract.

use std::fmt::Write as _;

/// Format an `f64` deterministically: `Display` gives the shortest
/// round-trip representation, with a trailing `.0` added to integral
/// values so the output is unambiguously a float. Non-finite values
/// render as `null` (JSON has no NaN/Inf).
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Append `s` as a JSON string literal (escaping quotes, backslashes,
/// and control characters).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_unambiguous() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(-0.125), "-0.125");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_chars() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }
}
