//! Log-linear histogram for `u64` samples (HDR-style, radically
//! simplified).
//!
//! Values below 16 get exact unit buckets; above that, each power of two
//! is split into 16 linear sub-buckets, so the relative quantization
//! error is bounded by 1/16 ≈ 6.25% while the whole `u64` range fits in
//! under a thousand buckets. The record path is a handful of integer
//! operations — cheap enough for the simulator's per-packet hot loop
//! (see the `counter_record` / `histogram_record` microbenches in
//! `dui-bench`).
//!
//! Histograms merge element-wise, which makes them safe to aggregate
//! across parallel experiment replicates: merge is associative and
//! commutative, and the total count is conserved (properties enforced by
//! `crates/telemetry/tests/properties.rs`).

/// Sub-bucket resolution: each power of two is split into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A mergeable log-linear histogram over `u64` values.
///
/// ```
/// use dui_telemetry::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1u64, 10, 100, 1000, 1000, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1_000_000);
/// // Quantiles are approximate (≤ 6.25% relative error) but always
/// // bounded by the recorded extremes.
/// let p50 = h.quantile(0.5);
/// assert!((1..=1_000_000).contains(&p50));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    ((msb - SUB_BITS) as usize + 1) * SUB_COUNT as usize + sub
}

/// Lower bound of bucket `idx` (the value reported for quantiles landing
/// in it).
fn bucket_lo(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        return idx;
    }
    let block = idx / SUB_COUNT - 1;
    let sub = idx % SUB_COUNT;
    (SUB_COUNT + sub) << block
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.total += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`), clamped into
    /// `[min(), max()]` so quantiles never leave the recorded range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_lo(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The samples recorded since `earlier`, assuming `earlier` is a
    /// previous snapshot of this same histogram (bucket counts
    /// pointwise ≥). Bucket counts, sample count, and total subtract
    /// exactly; `min`/`max` cannot be recovered from the subtraction
    /// alone, so they are approximated by the lower bounds of the
    /// first/last non-empty delta bucket (≤ 6.25% relative error, the
    /// same bound as quantiles). If `earlier` is not actually an
    /// ancestor, mismatched buckets clamp to zero rather than
    /// underflowing, and the delta is merely approximate.
    pub fn diff_since(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut counts = vec![0u64; self.counts.len()];
        let mut count = 0u64;
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for (idx, slot) in counts.iter_mut().enumerate() {
            let prev = earlier.counts.get(idx).copied().unwrap_or(0);
            let d = self.counts[idx].saturating_sub(prev);
            if d > 0 {
                *slot = d;
                count += d;
                lo = lo.min(idx);
                hi = idx;
            }
        }
        if count == 0 {
            return LogHistogram::new();
        }
        counts.truncate(hi + 1);
        LogHistogram {
            counts,
            count,
            total: self.total.saturating_sub(earlier.total),
            min: bucket_lo(lo),
            max: bucket_lo(hi),
        }
    }

    /// Merge another histogram into this one (element-wise bucket sums).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sixteen() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let got = h.quantile(q);
            assert!(got < 16, "q={q} -> {got}");
        }
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        // bucket_lo(bucket_index(v)) <= v, and the error is < 1/16 of v.
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 1_000_000, u64::MAX] {
            let lo = bucket_lo(bucket_index(v));
            assert!(lo <= v, "v={v} lo={lo}");
            if v >= 16 {
                assert!(v - lo <= v / SUB_COUNT, "v={v} lo={lo}");
            } else {
                assert_eq!(lo, v);
            }
        }
    }

    #[test]
    fn bucket_lo_is_monotone() {
        let mut prev = 0u64;
        for idx in 0..bucket_index(u64::MAX) {
            let lo = bucket_lo(idx);
            assert!(lo >= prev, "idx={idx}");
            prev = lo;
        }
    }

    #[test]
    fn quantiles_bounded_by_extremes() {
        let mut h = LogHistogram::new();
        for v in [3u64, 900, 17, 45_000] {
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let x = h.quantile(q);
            assert!((3..=45_000).contains(&x), "q={q} -> {x}");
        }
    }

    #[test]
    fn merge_conserves_count_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1_000u64, 2_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 2_000_000);
    }

    #[test]
    fn diff_since_recovers_new_samples() {
        let mut h = LogHistogram::new();
        for v in [3u64, 900, 17] {
            h.record(v);
        }
        let earlier = h.clone();
        for v in [5u64, 45_000] {
            h.record(v);
        }
        let d = h.diff_since(&earlier);
        assert_eq!(d.count(), 2);
        // min/max come from bucket lower bounds: exact for 5 (< 16),
        // within 1/16 for 45_000.
        assert_eq!(d.min(), 5);
        assert!(d.max() <= 45_000 && 45_000 - d.max() <= 45_000 / 16);
        // merge(earlier, delta) reconstructs the bucket contents.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.counts, h.counts);
        // Diff against self is empty.
        assert_eq!(h.diff_since(&h).count(), 0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert_eq!(h.mean(), 30.0);
    }
}
