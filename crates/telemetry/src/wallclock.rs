//! Wall-clock self-profiler for the experiment harness.
//!
//! **This is the only module in the library crates that may touch
//! `std::time::Instant`** (enforced by the `dui-lint`
//! `determinism/wall-clock` rule, which allowlists exactly this file).
//! Everything it produces is explicitly non-deterministic profiling
//! output: it must never feed back into simulation state or into any
//! exported experiment artifact that is compared byte-for-byte across
//! runs. The harness prints it into a clearly-marked "wall-clock"
//! section of `experiments_all.txt` only.
//!
//! The profiler is a process-global so `dui-bench::par::run_indexed`
//! can attribute per-task timings from worker threads without threading
//! a handle through every closure. It is disabled by default and all
//! record calls are a single relaxed atomic load when disabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ProfilerState>> = Mutex::new(None);

#[derive(Debug, Default)]
struct ProfilerState {
    current_stage: Option<(String, Instant)>,
    stages: Vec<(String, u64)>,
    tasks: BTreeMap<String, TaskAgg>,
}

/// Aggregated wall-clock attribution for one `run_indexed` call site.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskAgg {
    /// Tasks recorded.
    pub count: u64,
    /// Total wall-clock across tasks, nanoseconds.
    pub total_ns: u64,
    /// Slowest single task, nanoseconds.
    pub max_ns: u64,
    /// Index of the slowest task.
    pub max_index: usize,
}

/// Turn the profiler on (clearing any previous data) or off.
pub fn enable(on: bool) {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *state = if on {
        Some(ProfilerState::default())
    } else {
        None
    };
    ENABLED.store(on, Ordering::Release);
}

/// Whether the profiler is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Mark the start of a named experiment stage, closing the previous one.
pub fn set_stage(name: &str) {
    if !is_enabled() {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        let now = Instant::now();
        if let Some((prev, start)) = state.current_stage.take() {
            state.stages.push((prev, now.duration_since(start).as_nanos() as u64));
        }
        state.current_stage = Some((name.to_string(), now));
    }
}

/// Close the currently-open stage, if any.
pub fn end_stage() {
    if !is_enabled() {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if let Some((prev, start)) = state.current_stage.take() {
            state
                .stages
                .push((prev, Instant::now().duration_since(start).as_nanos() as u64));
        }
    }
}

/// Attribute `elapsed_ns` of wall-clock to task `index` of the labelled
/// parallel call site. Cheap no-op while disabled; safe from worker
/// threads.
pub fn record_task(label: &str, index: usize, elapsed_ns: u64) {
    if !is_enabled() {
        return;
    }
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        // Attribute to the stage that is open right now, so one call
        // site (e.g. `run_indexed`) splits into per-stage rows.
        let key = match &state.current_stage {
            Some((stage, _)) => format!("{stage}/{label}"),
            None => label.to_string(),
        };
        let agg = state.tasks.entry(key).or_default();
        agg.count += 1;
        agg.total_ns += elapsed_ns;
        if elapsed_ns > agg.max_ns {
            agg.max_ns = elapsed_ns;
            agg.max_index = index;
        }
    }
}

/// Render the profile as human-readable text (stage table, then
/// per-task-site aggregation) and clear nothing — call [`enable`] to
/// reset. Returns an empty string while disabled or empty.
pub fn report() -> String {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = guard.as_mut() else {
        return String::new();
    };
    if let Some((prev, start)) = state.current_stage.take() {
        state
            .stages
            .push((prev, Instant::now().duration_since(start).as_nanos() as u64));
    }
    if state.stages.is_empty() && state.tasks.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("self-profile (wall clock; non-deterministic)\n");
    for (name, ns) in &state.stages {
        out.push_str(&format!("  stage {:<18} {}\n", name, fmt_ns(*ns)));
    }
    for (label, agg) in &state.tasks {
        let mean = if agg.count > 0 { agg.total_ns / agg.count } else { 0 };
        out.push_str(&format!(
            "  tasks {:<18} n={} total={} mean={} max={} (task #{})\n",
            label,
            agg.count,
            fmt_ns(agg.total_ns),
            fmt_ns(mean),
            fmt_ns(agg.max_ns),
            agg.max_index,
        ));
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialize the global-profiler tests onto one lock so they do not
    // race each other's enable/disable.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_profiler_is_silent() {
        let _g = TEST_LOCK.lock().unwrap();
        enable(false);
        record_task("x", 0, 100);
        set_stage("s");
        assert_eq!(report(), "");
    }

    #[test]
    fn stages_and_tasks_show_up() {
        let _g = TEST_LOCK.lock().unwrap();
        enable(true);
        set_stage("alpha");
        record_task("par", 3, 1_500);
        record_task("par", 7, 2_500);
        end_stage();
        let rep = report();
        assert!(rep.contains("stage alpha"), "{rep}");
        assert!(rep.contains("n=2"), "{rep}");
        assert!(rep.contains("(task #7)"), "{rep}");
        enable(false);
    }
}
