//! Metrics registry: named counters, gauges, and histograms with cheap
//! record paths and mergeable, exportable snapshots.
//!
//! Registration returns a small copyable id (`CounterId`, `GaugeId`,
//! `HistId`) that indexes straight into a `Vec`, so the hot-path cost of
//! `inc`/`observe`/`record` is one bounds-checked array access — the
//! name→id `BTreeMap` is only consulted at registration time.
//!
//! A [`Snapshot`] freezes the registry into `BTreeMap`s keyed by metric
//! name. Snapshots merge (counters add, gauges accumulate `(sum, n)`,
//! histograms merge element-wise), can be re-namespaced with
//! [`Snapshot::with_prefix`], and export as a deterministic JSON line or
//! as `(kind, name, value)` rows for the workspace's hand-rolled CSV
//! writer.

use crate::hist::LogHistogram;
use crate::json::{json_f64, push_json_str};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Hist,
}

/// A registry of named metrics with cheap record paths.
#[derive(Debug, Default)]
pub struct Registry {
    names: BTreeMap<String, (MetricKind, u32)>,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<(f64, u64)>,
    hist_names: Vec<String>,
    hists: Vec<LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter by name. Idempotent: registering
    /// the same name twice returns the same id.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == MetricKind::Counter, "{name} is not a counter");
            return CounterId(idx);
        }
        let idx = self.counters.len() as u32;
        self.names
            .insert(name.to_string(), (MetricKind::Counter, idx));
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(idx)
    }

    /// Register (or look up) a gauge by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == MetricKind::Gauge, "{name} is not a gauge");
            return GaugeId(idx);
        }
        let idx = self.gauges.len() as u32;
        self.names.insert(name.to_string(), (MetricKind::Gauge, idx));
        self.gauge_names.push(name.to_string());
        self.gauges.push((0.0, 0));
        GaugeId(idx)
    }

    /// Register (or look up) a histogram by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == MetricKind::Hist, "{name} is not a histogram");
            return HistId(idx);
        }
        let idx = self.hists.len() as u32;
        self.names.insert(name.to_string(), (MetricKind::Hist, idx));
        self.hist_names.push(name.to_string());
        self.hists.push(LogHistogram::new());
        HistId(idx)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Observe a gauge sample; the snapshot exports the mean of all
    /// observations.
    #[inline]
    pub fn observe(&mut self, id: GaugeId, v: f64) {
        let slot = &mut self.gauges[id.0 as usize];
        slot.0 += v;
        slot.1 += 1;
    }

    /// Record a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0 as usize].record(v);
    }

    /// Read-only access to a histogram.
    pub fn hist(&self, id: HistId) -> &LogHistogram {
        &self.hists[id.0 as usize]
    }

    /// Fold a snapshot's metrics into this registry *by name*: counters
    /// add, gauges accumulate `(sum, n)`, histograms merge
    /// element-wise. Metrics not yet registered here are registered on
    /// the fly (snapshot `BTreeMap` iteration keeps the order — and
    /// thus float-sum bytes — stable). This is how the parallel engine
    /// merges per-domain registries back into the merged simulator's.
    pub fn absorb(&mut self, snap: &Snapshot) {
        for (name, &v) in &snap.counters {
            let id = self.counter(name);
            self.add(id, v);
        }
        for (name, &(sum, n)) in &snap.gauges {
            let id = self.gauge(name);
            let slot = &mut self.gauges[id.0 as usize];
            slot.0 += sum;
            slot.1 += n;
        }
        for (name, h) in &snap.hists {
            let id = self.histogram(name);
            self.hists[id.0 as usize].merge(h);
        }
    }

    /// Freeze the registry into a mergeable, exportable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (name, &v) in self.counter_names.iter().zip(self.counters.iter()) {
            if v > 0 {
                snap.counters.insert(name.clone(), v);
            }
        }
        for (name, &(sum, n)) in self.gauge_names.iter().zip(self.gauges.iter()) {
            if n > 0 {
                snap.gauges.insert(name.clone(), (sum, n));
            }
        }
        for (name, h) in self.hist_names.iter().zip(self.hists.iter()) {
            if h.count() > 0 {
                snap.hists.insert(name.clone(), h.clone());
            }
        }
        snap
    }
}

/// A frozen, mergeable view of a registry's metrics, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge accumulators as `(sum, observation_count)`; exported as the
    /// mean so that merging across replicates stays associative.
    pub gauges: BTreeMap<String, (f64, u64)>,
    /// Full histograms (kept whole so merge stays exact).
    pub hists: BTreeMap<String, LogHistogram>,
}

impl Snapshot {
    /// Merge another snapshot into this one. Counters add, gauges
    /// accumulate `(sum, n)`, histograms merge element-wise — all
    /// associative and commutative, so parallel replicates can be folded
    /// in any grouping (the harness still folds in index order for
    /// byte-stable float sums).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &(sum, n)) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert((0.0, 0));
            slot.0 += sum;
            slot.1 += n;
        }
        for (k, h) in &other.hists {
            self.hists
                .entry(k.clone())
                .or_insert_with(LogHistogram::new)
                .merge(h);
        }
    }

    /// The change from `earlier` to `self`, assuming `earlier` is a
    /// previous snapshot of the same monotonically-growing registry:
    /// counters subtract, gauges subtract `(sum, n)` pairwise, and
    /// histograms subtract bucket-wise via
    /// [`LogHistogram::diff_since`]. Metrics whose delta is empty
    /// (counter unchanged, no new gauge observations, no new histogram
    /// samples) are omitted, so an idle interval yields an empty delta.
    ///
    /// This is the inverse of [`Snapshot::merge`] on the streaming
    /// path: `earlier.merge(&current.diff_since(&earlier))`
    /// reconstructs `current` (exactly for counters/gauges/hist
    /// buckets; histogram min/max are approximated from bucket bounds).
    /// Metrics present in `earlier` but not `self` are treated as
    /// unchanged; regressions (counter decreased) clamp to zero.
    pub fn diff_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (k, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(k));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, &(sum, n)) in &self.gauges {
            let (psum, pn) = earlier.gauges.get(k).copied().unwrap_or((0.0, 0));
            let dn = n.saturating_sub(pn);
            if dn > 0 {
                out.gauges.insert(k.clone(), (sum - psum, dn));
            }
        }
        for (k, h) in &self.hists {
            let d = match earlier.hists.get(k) {
                Some(p) => h.diff_since(p),
                None => h.clone(),
            };
            if d.count() > 0 {
                out.hists.insert(k.clone(), d);
            }
        }
        out
    }

    /// Return a copy with every metric name prefixed by `prefix` and a
    /// dot (e.g. `"blink"` turns `reroutes` into `blink.reroutes`).
    pub fn with_prefix(&self, prefix: &str) -> Snapshot {
        let re = |k: &String| format!("{prefix}.{k}");
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (re(k), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (re(k), *v)).collect(),
            hists: self.hists.iter().map(|(k, v)| (re(k), v.clone())).collect(),
        }
    }

    /// True when the snapshot carries no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge mean by name (`None` when absent).
    pub fn gauge_mean(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|&(sum, n)| sum / n as f64)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Serialize as one JSON object on a single line, tagged with
    /// `label`. Field order is fixed (BTreeMap iteration + stable
    /// summary keys) and floats print via `Display` (shortest
    /// round-trip), so equal snapshots always produce equal bytes.
    pub fn to_json_line(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"label\":");
        push_json_str(&mut out, label);
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, &(sum, n))) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            let _ = write!(out, ":{}", json_f64(sum / n as f64));
        }
        out.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.min(),
                h.max(),
                json_f64(h.mean()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }

    /// Flatten into `(kind, name, value)` rows for CSV export.
    /// Histograms expand to their summary statistics.
    pub fn rows(&self) -> Vec<(String, String, String)> {
        let mut rows = Vec::new();
        for (k, v) in &self.counters {
            rows.push(("counter".to_string(), k.clone(), v.to_string()));
        }
        for (k, &(sum, n)) in &self.gauges {
            rows.push((
                "gauge".to_string(),
                k.clone(),
                json_f64(sum / n as f64),
            ));
        }
        for (k, h) in &self.hists {
            for (stat, val) in [
                ("count", h.count().to_string()),
                ("min", h.min().to_string()),
                ("max", h.max().to_string()),
                ("mean", json_f64(h.mean())),
                ("p50", h.quantile(0.5).to_string()),
                ("p99", h.quantile(0.99).to_string()),
            ] {
                rows.push(("hist".to_string(), format!("{k}.{stat}"), val));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value(a), 2);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn snapshot_skips_untouched_metrics() {
        let mut r = Registry::new();
        r.counter("quiet");
        let loud = r.counter("loud");
        r.inc(loud);
        let snap = r.snapshot();
        assert_eq!(snap.counter("loud"), 1);
        assert!(!snap.counters.contains_key("quiet"));
    }

    #[test]
    fn merge_adds_counters_and_averages_gauges() {
        let mut r1 = Registry::new();
        let c = r1.counter("n");
        let g = r1.gauge("load");
        r1.add(c, 3);
        r1.observe(g, 1.0);

        let mut r2 = Registry::new();
        let c2 = r2.counter("n");
        let g2 = r2.gauge("load");
        r2.add(c2, 4);
        r2.observe(g2, 3.0);

        let mut snap = r1.snapshot();
        snap.merge(&r2.snapshot());
        assert_eq!(snap.counter("n"), 7);
        assert_eq!(snap.gauge_mean("load"), Some(2.0));
    }

    #[test]
    fn absorb_folds_snapshot_into_registry() {
        let mut main = Registry::new();
        let c = main.counter("n");
        main.add(c, 2);

        let mut dom = Registry::new();
        let dc = dom.counter("n");
        dom.add(dc, 5);
        let dg = dom.gauge("depth");
        dom.observe(dg, 4.0);
        let dh = dom.histogram("lat");
        dom.record(dh, 9);

        main.absorb(&dom.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.counter("n"), 7);
        assert_eq!(snap.gauge_mean("depth"), Some(4.0));
        assert_eq!(snap.hist("lat").map(|h| h.count()), Some(1));
    }

    #[test]
    fn with_prefix_renames_everything() {
        let mut r = Registry::new();
        let c = r.counter("drops");
        r.inc(c);
        let snap = r.snapshot().with_prefix("netsim");
        assert_eq!(snap.counter("netsim.drops"), 1);
        assert_eq!(snap.counter("drops"), 0);
    }

    #[test]
    fn json_line_is_deterministic_and_escaped() {
        let mut r = Registry::new();
        let c = r.counter("a\"b");
        r.inc(c);
        let g = r.gauge("mean");
        r.observe(g, 0.5);
        let h = r.histogram("lat");
        r.record(h, 100);
        let snap = r.snapshot();
        let line = snap.to_json_line("stage-1");
        assert_eq!(line, snap.to_json_line("stage-1"));
        assert!(line.starts_with("{\"label\":\"stage-1\","));
        assert!(line.contains("\"a\\\"b\":1"));
        assert!(line.contains("\"mean\":0.5"));
        assert!(line.contains("\"count\":1"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn rows_cover_all_kinds() {
        let mut r = Registry::new();
        let c = r.counter("c");
        r.inc(c);
        let g = r.gauge("g");
        r.observe(g, 4.0);
        let h = r.histogram("h");
        r.record(h, 7);
        let rows = r.snapshot().rows();
        assert!(rows.iter().any(|(k, n, v)| k == "counter" && n == "c" && v == "1"));
        assert!(rows.iter().any(|(k, n, v)| k == "gauge" && n == "g" && v == "4.0"));
        assert!(rows.iter().any(|(k, n, _)| k == "hist" && n == "h.count"));
    }
}
