//! Snapshot delta/sequence framing for streaming telemetry.
//!
//! A long-running producer (one simulation, one site) periodically
//! freezes its [`Registry`](crate::Registry) into a
//! [`Snapshot`] and ships only the *change* since the
//! previous freeze, wrapped in a [`Frame`] that carries enough
//! addressing for a downstream consumer (the `dui-supervisord`
//! pipeline) to re-establish a deterministic total order:
//!
//! * `producer` — stable id of the emitting stream,
//! * `seq` — per-producer sequence number, contiguous from 0,
//! * `epoch` — producer-local logical time bucket, non-decreasing.
//!
//! Frames from one producer are totally ordered by `seq`; frames from
//! different producers are ordered by `(epoch, producer, seq)`. Because
//! [`Snapshot::merge`] is associative and commutative (see
//! `crates/telemetry/tests/properties.rs`), folding a producer's deltas
//! back together in that canonical order reconstructs its cumulative
//! snapshot regardless of how the frames were sharded in between.
//!
//! ```
//! use dui_telemetry::{delta::DeltaEncoder, Registry, Snapshot};
//!
//! let mut reg = Registry::new();
//! let c = reg.counter("pkts");
//! let mut enc = DeltaEncoder::new(7);
//!
//! reg.add(c, 3);
//! let f0 = enc.encode(0, &reg.snapshot(), 0);
//! assert_eq!((f0.producer, f0.seq, f0.delta.counter("pkts")), (7, 0, 3));
//!
//! reg.add(c, 2);
//! let f1 = enc.encode(1, &reg.snapshot(), 0);
//! assert_eq!((f1.seq, f1.delta.counter("pkts")), (1, 2));
//!
//! // Folding the deltas reconstructs the cumulative snapshot.
//! let mut total = Snapshot::default();
//! total.merge(&f0.delta);
//! total.merge(&f1.delta);
//! assert_eq!(total.counter("pkts"), 5);
//! ```

use crate::registry::Snapshot;

/// One framed snapshot delta on a producer stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Stable id of the producer that emitted this frame.
    pub producer: u32,
    /// Per-producer sequence number, contiguous from 0.
    pub seq: u64,
    /// Producer-local logical time bucket; non-decreasing in `seq`.
    pub epoch: u64,
    /// Wall-clock nanoseconds at ingest, for latency accounting only.
    /// Always 0 under a deterministic clock; never compared across
    /// runs and never serialized into byte-compared artifacts.
    pub ingest_ns: u64,
    /// The metric change since the producer's previous frame.
    pub delta: Snapshot,
}

/// Per-producer encoder turning cumulative snapshots into framed
/// deltas. Keeps the previous snapshot; each [`encode`](Self::encode)
/// call diffs against it and advances the sequence number.
#[derive(Debug, Clone, Default)]
pub struct DeltaEncoder {
    producer: u32,
    next_seq: u64,
    prev: Snapshot,
}

impl DeltaEncoder {
    /// A fresh encoder for producer `producer`; the first frame's delta
    /// is the full snapshot (diff against empty).
    pub fn new(producer: u32) -> Self {
        DeltaEncoder {
            producer,
            next_seq: 0,
            prev: Snapshot::default(),
        }
    }

    /// Frame the change from the previously-encoded snapshot to
    /// `current`. `ingest_ns` stamps the frame for latency accounting
    /// (pass 0 when no wall clock is in play).
    pub fn encode(&mut self, epoch: u64, current: &Snapshot, ingest_ns: u64) -> Frame {
        let delta = current.diff_since(&self.prev);
        self.prev = current.clone();
        let seq = self.next_seq;
        self.next_seq += 1;
        Frame {
            producer: self.producer,
            seq,
            epoch,
            ingest_ns,
            delta,
        }
    }

    /// Sequence number the next [`encode`](Self::encode) will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn idle_interval_encodes_empty_delta() {
        let mut reg = Registry::new();
        let c = reg.counter("x");
        reg.inc(c);
        let mut enc = DeltaEncoder::new(1);
        let f0 = enc.encode(0, &reg.snapshot(), 0);
        assert_eq!(f0.delta.counter("x"), 1);
        let f1 = enc.encode(1, &reg.snapshot(), 0);
        assert!(f1.delta.is_empty());
        assert_eq!(f1.seq, 1);
    }

    #[test]
    fn deltas_cover_all_metric_kinds() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        reg.add(c, 2);
        reg.observe(g, 4.0);
        reg.record(h, 10);

        let mut enc = DeltaEncoder::new(0);
        enc.encode(0, &reg.snapshot(), 0);

        reg.add(c, 5);
        reg.observe(g, 8.0);
        reg.record(h, 30);
        let f = enc.encode(1, &reg.snapshot(), 0);
        assert_eq!(f.delta.counter("c"), 5);
        assert_eq!(f.delta.gauge_mean("g"), Some(8.0));
        assert_eq!(f.delta.hist("h").map(|h| h.count()), Some(1));
    }
}
