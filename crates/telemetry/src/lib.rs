//! `dui-telemetry`: zero-dependency observability substrate for the DUI
//! workspace — a metrics registry, span tracing, and a wall-clock
//! self-profiler.
//!
//! The paper's §5 supervisor (Fig. 3) is a feedback loop that needs the
//! system to observe itself: input quality at point III, decision rates
//! at point IV. This crate is that substrate. It sits below every other
//! workspace crate (the simulator records into it from its event hot
//! loop), so it depends on nothing but `std`.
//!
//! The pieces:
//!
//! * [`registry`] — named counters, gauges, and log-linear
//!   [`hist::LogHistogram`]s behind copyable ids; freeze with
//!   [`Registry::snapshot`] into mergeable, exportable [`Snapshot`]s.
//! * [`delta`] — snapshot delta/sequence framing ([`Frame`],
//!   [`DeltaEncoder`]) for streaming telemetry to the
//!   `dui-supervisord` detection pipeline.
//! * [`channel`] — a bounded SPSC channel (`Mutex` + `Condvar`) with
//!   blocking backpressure, the transport between producers and
//!   supervisord workers.
//! * [`span`] — nested spans in a bounded ring buffer, timestamped with
//!   caller-supplied nanoseconds (the simulator passes deterministic
//!   `SimTime` nanos; no clock is read here).
//! * [`json`] — the deterministic float/string JSON formatting shared
//!   by every byte-compared exporter.
//! * [`wallclock`] — the **only** library module allowed to read the
//!   monotonic wall clock (enforced by the `dui-lint`
//!   `determinism/wall-clock` rule); a process-global profiler for the
//!   experiment harness.
//!
//! Everything outside [`wallclock`] is deterministic: identical record
//! sequences produce byte-identical snapshots and JSON lines, which is
//! what lets `results/metrics.jsonl` be compared byte-for-byte across
//! `--jobs` values.
//!
//! ```
//! use dui_telemetry::{Registry, Snapshot};
//!
//! let mut reg = Registry::new();
//! let drops = reg.counter("netsim.drop.queue");
//! let depth = reg.histogram("netsim.link.queue_depth");
//! for d in [0u64, 1, 3, 9, 2] {
//!     reg.record(depth, d);
//! }
//! reg.inc(drops);
//!
//! // Snapshots merge associatively — safe across parallel replicates.
//! let mut total = Snapshot::default();
//! total.merge(&reg.snapshot());
//! total.merge(&reg.snapshot());
//! assert_eq!(total.counter("netsim.drop.queue"), 2);
//! assert_eq!(total.hist("netsim.link.queue_depth").unwrap().count(), 10);
//!
//! // Export is deterministic: same metrics, same bytes.
//! let line = total.to_json_line("demo");
//! assert_eq!(line, total.to_json_line("demo"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
pub mod delta;
pub mod hist;
pub mod json;
pub mod registry;
pub mod span;
pub mod wallclock;

pub use delta::{DeltaEncoder, Frame};
pub use hist::LogHistogram;
pub use registry::{CounterId, GaugeId, HistId, Registry, Snapshot};
pub use span::{Span, SpanRecorder};
