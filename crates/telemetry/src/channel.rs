//! Bounded single-producer/single-consumer channel with blocking
//! backpressure, built on `std::sync` only (per the
//! `parallel/no-shared-mut` rule: no ad-hoc shared mutability, just a
//! `Mutex` + two `Condvar`s).
//!
//! This is the transport between a telemetry producer and its
//! supervisord worker. Semantics chosen for determinism and bounded
//! memory:
//!
//! * [`Sender::send`] **blocks** while the queue holds `capacity`
//!   items — a slow consumer exerts backpressure instead of letting the
//!   queue grow. It returns the value in `Err` if the receiver is gone.
//! * [`Receiver::recv`] blocks while the queue is empty and returns
//!   `None` once the queue is drained *and* the sender is dropped, so
//!   end-of-stream is unambiguous.
//! * FIFO order is preserved; with one sender per channel this gives
//!   the per-producer `seq` order the merge layer relies on.
//!
//! The handles are `Send` but deliberately not `Clone`: one producer,
//! one consumer. Poisoned locks are tolerated (`into_inner`) because
//! the protected state is a plain `VecDeque` that is valid at every
//! instruction boundary.
//!
//! ```
//! use dui_telemetry::channel::bounded;
//!
//! let (tx, rx) = bounded::<u32>(2);
//! std::thread::spawn(move || {
//!     for v in 0..5 {
//!         tx.send(v).ok();
//!     }
//! });
//! let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
//! assert_eq!(got, vec![0, 1, 2, 3, 4]);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct Inner<T> {
    queue: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Sending half of a bounded SPSC channel; dropping it closes the
/// stream (the receiver drains the queue, then sees `None`).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded SPSC channel; dropping it makes every
/// subsequent `send` fail fast.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; owns
/// the unsent value.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Create a bounded SPSC channel holding at most `capacity` items
/// (`capacity` is clamped to at least 1 so `send` can always make
/// progress).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            sender_alive: true,
            receiver_alive: true,
        }),
        capacity: capacity.max(1),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the channel is full. Returns the
    /// value back if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            if inner.queue.len() < self.shared.capacity {
                inner.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.sender_alive = false;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next item, blocking while the channel is empty.
    /// Returns `None` once the channel is drained and the sender is
    /// dropped.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if !inner.sender_alive {
                return None;
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking variant of [`recv`](Self::recv): `Ok(Some(v))` on
    /// data, `Ok(None)` when currently empty but still open, `Err(())`
    /// when drained and closed.
    pub fn try_recv(&self) -> Result<Option<T>, ()> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(Some(v));
        }
        if !inner.sender_alive {
            return Err(());
        }
        Ok(None)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receiver_alive = false;
        inner.queue.clear();
        drop(inner);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = bounded(4);
        for v in 0..4 {
            tx.send(v).ok();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_sees_end_of_stream_after_sender_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), Err(()));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(42), Err(SendError(42)));
    }

    #[test]
    fn full_channel_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).ok();
        let h = thread::spawn(move || {
            // Blocks until the receiver drains the first item.
            tx.send(2).ok();
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        h.join().ok();
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_recv_reports_open_empty() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Ok(None));
        tx.send(9).ok();
        assert_eq!(rx.try_recv(), Ok(Some(9)));
    }
}
