//! Property tests for `LogHistogram` on `dui-stats::propcheck`
//! (ISSUE 2 satellite): merge is associative and commutative, quantiles
//! stay within the recorded min/max, and merge conserves counts.

use dui_stats::{prop_assert, prop_assert_eq, prop_check};
use dui_telemetry::LogHistogram;

/// Values spanning the full dynamic range, biased toward small numbers
/// like real queue depths / latencies.
fn arb_values(g: &mut dui_stats::propcheck::Gen) -> Vec<u64> {
    g.vec(0..64, |g| {
        let shift = g.u32(0..64);
        g.any_u64() >> shift
    })
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

prop_check! {
    fn merge_is_commutative(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let mut ab = hist_of(&xs);
        ab.merge(&hist_of(&ys));
        let mut ba = hist_of(&ys);
        ba.merge(&hist_of(&xs));
        prop_assert_eq!(ab, ba);
    }

    fn merge_is_associative(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let zs = arb_values(g);
        // (x ⊕ y) ⊕ z
        let mut left = hist_of(&xs);
        left.merge(&hist_of(&ys));
        left.merge(&hist_of(&zs));
        // x ⊕ (y ⊕ z)
        let mut yz = hist_of(&ys);
        yz.merge(&hist_of(&zs));
        let mut right = hist_of(&xs);
        right.merge(&yz);
        prop_assert_eq!(left, right);
    }

    fn merge_conserves_count(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        // Merging equals recording everything into one histogram.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&all));
    }

    fn quantiles_bounded_by_min_max(g) {
        let mut xs = arb_values(g);
        if xs.is_empty() {
            xs.push(g.any_u64());
        }
        let h = hist_of(&xs);
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        for _ in 0..8 {
            let q = g.f64_unit();
            let x = h.quantile(q);
            prop_assert!(
                (lo..=hi).contains(&x),
                "quantile({}) = {} outside [{}, {}]", q, x, lo, hi
            );
        }
    }

    fn single_value_quantiles_are_exact(g) {
        // With a single distinct value, every quantile must return it.
        let v = g.any_u64();
        let n = g.usize(1..17);
        let h = hist_of(&vec![v; n]);
        for q in [0.0, 0.5, 1.0] {
            prop_assert_eq!(h.quantile(q), v);
        }
    }
}
