//! Property tests for `LogHistogram` (ISSUE 2 satellite) and
//! `Snapshot` (ISSUE 7 satellite) on `dui-stats::propcheck`: merge is
//! associative, commutative and fold-order-independent, quantiles stay
//! within the recorded min/max, and merge conserves counts.

use dui_stats::{prop_assert, prop_assert_eq, prop_check};
use dui_telemetry::{LogHistogram, Snapshot};

/// Values spanning the full dynamic range, biased toward small numbers
/// like real queue depths / latencies.
fn arb_values(g: &mut dui_stats::propcheck::Gen) -> Vec<u64> {
    g.vec(0..64, |g| {
        let shift = g.u32(0..64);
        g.any_u64() >> shift
    })
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

prop_check! {
    fn merge_is_commutative(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let mut ab = hist_of(&xs);
        ab.merge(&hist_of(&ys));
        let mut ba = hist_of(&ys);
        ba.merge(&hist_of(&xs));
        prop_assert_eq!(ab, ba);
    }

    fn merge_is_associative(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let zs = arb_values(g);
        // (x ⊕ y) ⊕ z
        let mut left = hist_of(&xs);
        left.merge(&hist_of(&ys));
        left.merge(&hist_of(&zs));
        // x ⊕ (y ⊕ z)
        let mut yz = hist_of(&ys);
        yz.merge(&hist_of(&zs));
        let mut right = hist_of(&xs);
        right.merge(&yz);
        prop_assert_eq!(left, right);
    }

    fn merge_conserves_count(g) {
        let xs = arb_values(g);
        let ys = arb_values(g);
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        // Merging equals recording everything into one histogram.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&all));
    }

    fn quantiles_bounded_by_min_max(g) {
        let mut xs = arb_values(g);
        if xs.is_empty() {
            xs.push(g.any_u64());
        }
        let h = hist_of(&xs);
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        for _ in 0..8 {
            let q = g.f64_unit();
            let x = h.quantile(q);
            prop_assert!(
                (lo..=hi).contains(&x),
                "quantile({}) = {} outside [{}, {}]", q, x, lo, hi
            );
        }
    }

    fn single_value_quantiles_are_exact(g) {
        // With a single distinct value, every quantile must return it.
        let v = g.any_u64();
        let n = g.usize(1..17);
        let h = hist_of(&vec![v; n]);
        for q in [0.0, 0.5, 1.0] {
            prop_assert_eq!(h.quantile(q), v);
        }
    }
}

/// Small shared name pool so independently-generated snapshots
/// collide on keys — merges that never overlap prove nothing.
const NAMES: [&str; 5] = ["pkts", "drops", "qoe", "risk", "lat"];

/// Arbitrary [`Snapshot`], as a registry snapshot could produce it.
/// Gauge sums are integer-valued: f64 addition on exactly-representable
/// integers (well below 2^53) is associative, which is the regime the
/// registry's "mergeable in any grouping" claim quantifies over —
/// arbitrary floats would fail associativity for reasons that have
/// nothing to do with `Snapshot`.
fn arb_snapshot(g: &mut dui_stats::propcheck::Gen) -> Snapshot {
    let mut s = Snapshot::default();
    for _ in 0..g.usize(0..4) {
        let k = format!("c.{}", NAMES[g.usize(0..NAMES.len())]);
        *s.counters.entry(k).or_insert(0) += 1 + g.u32(0..1000) as u64;
    }
    for _ in 0..g.usize(0..4) {
        let k = format!("g.{}", NAMES[g.usize(0..NAMES.len())]);
        let slot = s.gauges.entry(k).or_insert((0.0, 0));
        slot.0 += g.u32(0..1_000_000) as f64;
        slot.1 += 1 + g.u32(0..9) as u64;
    }
    for _ in 0..g.usize(0..3) {
        let k = format!("h.{}", NAMES[g.usize(0..NAMES.len())]);
        let h = s.hists.entry(k).or_insert_with(LogHistogram::new);
        for _ in 0..1 + g.usize(0..8) {
            let shift = g.u32(0..64);
            h.record(g.any_u64() >> shift);
        }
    }
    s
}

prop_check! {
    fn snapshot_merge_is_commutative(g) {
        let x = arb_snapshot(g);
        let y = arb_snapshot(g);
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        prop_assert_eq!(&xy, &yx);
        // Byte-stability: equal snapshots export equal JSONL bytes.
        prop_assert_eq!(xy.to_json_line("p"), yx.to_json_line("p"));
    }

    fn snapshot_merge_is_associative(g) {
        let x = arb_snapshot(g);
        let y = arb_snapshot(g);
        let z = arb_snapshot(g);
        // (x ⊕ y) ⊕ z
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        // x ⊕ (y ⊕ z)
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.to_json_line("p"), right.to_json_line("p"));
    }

    fn snapshot_merge_is_order_independent(g) {
        // Folding any permutation of the same snapshots — the situation
        // of parallel replicates finishing in arbitrary order — yields
        // the same result as index order.
        let snaps = g.vec(0..6, arb_snapshot);
        let mut perm: Vec<usize> = (0..snaps.len()).collect();
        for i in (1..perm.len()).rev() {
            let j = g.usize(0..i + 1);
            perm.swap(i, j);
        }
        let mut in_order = Snapshot::default();
        for s in &snaps {
            in_order.merge(s);
        }
        let mut permuted = Snapshot::default();
        for &i in &perm {
            permuted.merge(&snaps[i]);
        }
        prop_assert_eq!(&in_order, &permuted);
        prop_assert_eq!(in_order.to_json_line("p"), permuted.to_json_line("p"));
    }

    fn snapshot_merge_conserves_totals(g) {
        let snaps = g.vec(0..6, arb_snapshot);
        let mut merged = Snapshot::default();
        for s in &snaps {
            merged.merge(s);
        }
        for name in NAMES {
            let k = format!("c.{name}");
            let want: u64 = snaps.iter().map(|s| s.counter(&k)).sum();
            prop_assert_eq!(merged.counter(&k), want);
            let hk = format!("h.{name}");
            let want_n: u64 = snaps
                .iter()
                .filter_map(|s| s.hist(&hk))
                .map(LogHistogram::count)
                .sum();
            let got_n = merged.hist(&hk).map_or(0, LogHistogram::count);
            prop_assert_eq!(got_n, want_n);
            let gk = format!("g.{name}");
            let want_obs: u64 = snaps.iter().filter_map(|s| s.gauges.get(&gk)).map(|&(_, n)| n).sum();
            let got_obs = merged.gauges.get(&gk).map_or(0, |&(_, n)| n);
            prop_assert_eq!(got_obs, want_obs);
        }
    }

    fn snapshot_diff_since_inverts_merge(g) {
        // Streaming-path round trip: for a monotonically-grown registry
        // view `current = earlier ⊕ extra`,
        // `earlier ⊕ current.diff_since(earlier)` reconstructs
        // `current` exactly for counters and gauges (histogram min/max
        // are documented as bucket-approximated, so compare counts).
        let earlier = arb_snapshot(g);
        let extra = arb_snapshot(g);
        let mut current = earlier.clone();
        current.merge(&extra);
        let delta = current.diff_since(&earlier);
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(&rebuilt.counters, &current.counters);
        prop_assert_eq!(&rebuilt.gauges, &current.gauges);
        for (k, h) in &current.hists {
            let n = rebuilt.hists.get(k).map_or(0, LogHistogram::count);
            prop_assert_eq!(n, h.count(), "hist {} count", k);
        }
    }
}
