//! Property-based tests of the TCP machinery: sequence arithmetic, RTT
//! estimation bounds, and receiver reassembly invariants (via the
//! in-tree `propcheck` engine).

use dui_netsim::packet::{Addr, FlowKey, Packet, TcpFlags};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::{prop_assert, prop_assert_eq, prop_assert_ne, prop_check};
use dui_tcp::seq::{seq_dist, seq_ge, seq_le, seq_lt};
use dui_tcp::{RttEstimator, TcpReceiver};

prop_check! {
    fn seq_ordering_antisymmetric(g) {
        let (a, b) = (g.any_u32(), g.any_u32());
        if a != b {
            prop_assert_ne!(seq_lt(a, b), seq_lt(b, a));
        } else {
            prop_assert!(!seq_lt(a, b) && !seq_lt(b, a));
        }
    }

    fn seq_le_ge_consistent(g) {
        let (a, b) = (g.any_u32(), g.any_u32());
        prop_assert_eq!(seq_le(a, b), !seq_lt(b, a) || a == b);
        prop_assert_eq!(seq_ge(a, b), seq_le(b, a));
    }

    fn seq_dist_translation_invariant(g) {
        let (a, b, shift) = (g.any_u32(), g.any_u32(), g.any_u32());
        prop_assert_eq!(
            seq_dist(a, b),
            seq_dist(a.wrapping_add(shift), b.wrapping_add(shift))
        );
    }

    fn rto_always_within_bounds(g) {
        let samples = g.vec(0..100, |g| g.u64(1..10_000));
        let mut e = RttEstimator::default();
        for ms in samples {
            e.sample(SimDuration::from_millis(ms));
            prop_assert!(e.rto() >= SimDuration::from_secs(1));
            prop_assert!(e.rto() <= SimDuration::from_secs(60));
        }
    }

    fn rto_backoff_monotone(g) {
        let timeouts = g.usize(1..20);
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_millis(500));
        let mut prev = e.rto();
        for _ in 0..timeouts {
            e.on_timeout();
            prop_assert!(e.rto() >= prev);
            prev = e.rto();
        }
    }

    fn receiver_delivers_each_byte_once(g) {
        // Deliver 20 segments of 100 B in arbitrary (repeating) order; the
        // receiver must deliver exactly the contiguous prefix it has, and
        // never more than 2000 bytes total.
        let order = g.vec(1..60, |g| g.usize(0..20));
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 1);
        let mut seen = std::collections::HashSet::new();
        for idx in order {
            let seq = 1 + (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            seen.insert(idx);
            prop_assert!(r.stats.bytes_delivered <= 2000);
            // Delivered = length of the contiguous prefix present.
            let mut prefix = 0;
            while seen.contains(&prefix) {
                prefix += 1;
            }
            prop_assert_eq!(r.stats.bytes_delivered, prefix as u64 * 100);
        }
    }

    fn receiver_acks_are_cumulative_and_monotone(g) {
        let order = g.vec(1..40, |g| g.usize(0..15));
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 0);
        let mut prev_ack = 0u32;
        for idx in order {
            let seq = (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            for ack_pkt in r.take_out() {
                if let dui_netsim::packet::Header::Tcp { ack, .. } = ack_pkt.header {
                    prop_assert!(seq_ge(ack, prev_ack), "acks never regress");
                    prev_ack = ack;
                }
            }
        }
    }
}
