//! Property-based tests of the TCP machinery: sequence arithmetic, RTT
//! estimation bounds, receiver reassembly invariants, generational
//! flow-pool handle safety, and RFC 9293 state-machine legality (via
//! the in-tree `propcheck` engine).
//!
//! The pool and lifecycle properties are the safety net for the SoA
//! refactor:
//!
//! 1. **Generational handle safety.** Random interleavings of
//!    insert/free/op calls never panic, freed handles always come back
//!    `Err(StaleFlowRef)`, and recycled slots carry fresh generations —
//!    the use-after-free class the pool was designed to make loud.
//! 2. **State-machine legality.** A sender/receiver pair driven over a
//!    lossy, reordering, duplicating network only ever moves along the
//!    RFC 9293 transition diagram (or stays put): no path back out of
//!    CLOSED, no jumps the diagram does not connect.

use dui_netsim::packet::{Addr, FlowKey, Packet, TcpFlags};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::{prop_assert, prop_assert_eq, prop_assert_ne, prop_check};
use dui_tcp::seq::{seq_dist, seq_ge, seq_le, seq_lt};
use dui_tcp::{
    FlowKind, FlowPool, FlowRef, RttEstimator, TcpReceiver, TcpSender, TcpSenderConfig, TcpState,
};

fn pool_key(sport: u16) -> FlowKey {
    FlowKey::tcp(Addr::new(10, 0, 0, 1), sport.max(1), Addr::new(10, 0, 0, 2), 80)
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

const ALL_STATES: [TcpState; 12] = [
    TcpState::Idle,
    TcpState::Listen,
    TcpState::SynSent,
    TcpState::SynRcvd,
    TcpState::Established,
    TcpState::FinWait1,
    TcpState::FinWait2,
    TcpState::Closing,
    TcpState::CloseWait,
    TcpState::LastAck,
    TcpState::TimeWait,
    TcpState::Closed,
];

/// Direct edges of the RFC 9293 connection-state diagram, plus the
/// model's two openings out of `Idle` (handshake and legacy).
fn legal_edge(a: TcpState, b: TcpState) -> bool {
    use TcpState::*;
    matches!(
        (a, b),
        (Idle, SynSent)
            | (Idle, Established)
            | (Listen, SynRcvd)
            | (SynSent, Established)
            | (SynRcvd, Established)
            | (SynRcvd, FinWait1)
            | (Established, FinWait1)
            | (Established, CloseWait)
            | (FinWait1, FinWait2)
            | (FinWait1, Closing)
            | (FinWait1, TimeWait)
            | (FinWait2, TimeWait)
            | (Closing, TimeWait)
            | (CloseWait, LastAck)
            | (LastAck, Closed)
            | (TimeWait, Closed)
    )
}

/// Is `b` reachable from `a` along legal edges? A single API call may
/// traverse several edges internally (e.g. a FIN+ACK collapsing
/// FIN-WAIT-1 straight into TIME-WAIT), so observed transitions are
/// checked against the closure, not single edges.
fn legal_path(a: TcpState, b: TcpState) -> bool {
    if a == b {
        return true;
    }
    let mut seen = vec![a];
    let mut frontier = vec![a];
    while let Some(x) = frontier.pop() {
        for c in ALL_STATES {
            if legal_edge(x, c) && !seen.contains(&c) {
                if c == b {
                    return true;
                }
                seen.push(c);
                frontier.push(c);
            }
        }
    }
    false
}

prop_check! {
    fn seq_ordering_antisymmetric(g) {
        let (a, b) = (g.any_u32(), g.any_u32());
        if a != b {
            prop_assert_ne!(seq_lt(a, b), seq_lt(b, a));
        } else {
            prop_assert!(!seq_lt(a, b) && !seq_lt(b, a));
        }
    }

    fn seq_le_ge_consistent(g) {
        let (a, b) = (g.any_u32(), g.any_u32());
        prop_assert_eq!(seq_le(a, b), !seq_lt(b, a) || a == b);
        prop_assert_eq!(seq_ge(a, b), seq_le(b, a));
    }

    fn seq_dist_translation_invariant(g) {
        let (a, b, shift) = (g.any_u32(), g.any_u32(), g.any_u32());
        prop_assert_eq!(
            seq_dist(a, b),
            seq_dist(a.wrapping_add(shift), b.wrapping_add(shift))
        );
    }

    fn rto_always_within_bounds(g) {
        let samples = g.vec(0..100, |g| g.u64(1..10_000));
        let mut e = RttEstimator::default();
        for ms in samples {
            e.sample(SimDuration::from_millis(ms));
            prop_assert!(e.rto() >= SimDuration::from_secs(1));
            prop_assert!(e.rto() <= SimDuration::from_secs(60));
        }
    }

    fn rto_backoff_monotone(g) {
        let timeouts = g.usize(1..20);
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_millis(500));
        let mut prev = e.rto();
        for _ in 0..timeouts {
            e.on_timeout();
            prop_assert!(e.rto() >= prev);
            prev = e.rto();
        }
    }

    fn receiver_delivers_each_byte_once(g) {
        // Deliver 20 segments of 100 B in arbitrary (repeating) order; the
        // receiver must deliver exactly the contiguous prefix it has, and
        // never more than 2000 bytes total.
        let order = g.vec(1..60, |g| g.usize(0..20));
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 1);
        let mut seen = std::collections::HashSet::new();
        for idx in order {
            let seq = 1 + (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            seen.insert(idx);
            prop_assert!(r.stats.bytes_delivered <= 2000);
            // Delivered = length of the contiguous prefix present.
            let mut prefix = 0;
            while seen.contains(&prefix) {
                prefix += 1;
            }
            prop_assert_eq!(r.stats.bytes_delivered, prefix as u64 * 100);
        }
    }

    fn receiver_acks_are_cumulative_and_monotone(g) {
        let order = g.vec(1..40, |g| g.usize(0..15));
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 0);
        let mut prev_ack = 0u32;
        for idx in order {
            let seq = (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            for ack_pkt in r.take_out() {
                if let dui_netsim::packet::Header::Tcp { ack, .. } = ack_pkt.header {
                    prop_assert!(seq_ge(ack, prev_ack), "acks never regress");
                    prev_ack = ack;
                }
            }
        }
    }

    fn pool_ops_on_freed_handles_always_err(g) {
        let mut pool = FlowPool::new();
        let mut live: Vec<(FlowRef, FlowKind)> = Vec::new();
        let mut dead: Vec<FlowRef> = Vec::new();
        let steps = g.usize(1..120);
        for step in 0..steps {
            let now = t(step as u64 * 10);
            match g.u32(0..8) {
                0 => {
                    let r = pool.insert_sender(
                        pool_key(g.any_u16()),
                        TcpSenderConfig::default(),
                        g.any_u32(),
                    );
                    live.push((r, FlowKind::Sender));
                }
                1 => {
                    let r = pool.insert_receiver(pool_key(g.any_u16()), g.any_u32());
                    live.push((r, FlowKind::Receiver));
                }
                2 => {
                    let r = pool.insert_listener(pool_key(g.any_u16()));
                    live.push((r, FlowKind::Receiver));
                }
                3 if !live.is_empty() => {
                    let i = g.usize(0..live.len());
                    let (r, _) = live.swap_remove(i);
                    prop_assert!(pool.free(r).is_ok(), "freeing a live handle");
                    dead.push(r);
                }
                4 if !live.is_empty() => {
                    // Kind-agnostic ops on a live handle all succeed.
                    let (r, kind) = live[g.usize(0..live.len())];
                    prop_assert_eq!(pool.kind(r), Ok(kind));
                    prop_assert!(pool.state(r).is_ok());
                    prop_assert!(pool.key(r).is_ok());
                    prop_assert!(pool.is_done(r).is_ok());
                    prop_assert!(pool.next_event_time(r).is_ok());
                    prop_assert!(pool.take_out(r).is_ok());
                    prop_assert!(pool.on_tick(r, now).is_ok());
                }
                5 if !live.is_empty() => {
                    // Kind-specific ops dispatched by the tracked kind.
                    let (r, kind) = live[g.usize(0..live.len())];
                    match kind {
                        FlowKind::Sender => prop_assert!(pool.sender_stats(r).is_ok()),
                        FlowKind::Receiver => {
                            prop_assert!(pool.receiver_stats(r).is_ok());
                            prop_assert!(pool.set_advertised_window(r, 65535).is_ok());
                        }
                    }
                }
                _ if !dead.is_empty() => {
                    // Every accessor — read, mutate, or re-free — rejects
                    // a freed handle instead of touching the slot.
                    let r = dead[g.usize(0..dead.len())];
                    prop_assert!(pool.state(r).is_err());
                    prop_assert!(pool.kind(r).is_err());
                    prop_assert!(pool.key(r).is_err());
                    prop_assert!(pool.is_done(r).is_err());
                    prop_assert!(pool.take_out(r).is_err());
                    prop_assert!(pool.on_tick(r, now).is_err());
                    prop_assert!(pool.on_start(r, now).is_err());
                    prop_assert!(pool.sender_stats(r).is_err());
                    prop_assert!(pool.free(r).is_err());
                }
                _ => {}
            }
        }
        prop_assert_eq!(pool.live(), live.len());
        prop_assert_eq!(pool.iter_refs().count(), live.len());
        for &(r, _) in &live {
            prop_assert!(pool.state(r).is_ok());
        }
        for &r in &dead {
            prop_assert!(pool.state(r).is_err());
        }
    }

    fn recycled_slots_get_fresh_generations(g) {
        let mut pool = FlowPool::new();
        let n = g.usize(1..40);
        let refs: Vec<FlowRef> =
            (0..n).map(|i| pool.insert_listener(pool_key(i as u16 + 1))).collect();
        // Free a random subset...
        let mut freed: Vec<FlowRef> = Vec::new();
        for &r in &refs {
            if g.bool() {
                prop_assert!(pool.free(r).is_ok());
                freed.push(r);
            }
        }
        // ...then refill. The LIFO free list must hand the freed slots
        // back (capacity unchanged), each under a bumped generation.
        let cap_before = pool.capacity();
        let fresh: Vec<FlowRef> = (0..freed.len())
            .map(|i| {
                pool.insert_sender(pool_key(1000 + i as u16), TcpSenderConfig::default(), 1)
            })
            .collect();
        prop_assert_eq!(pool.capacity(), cap_before, "refill reuses freed slots");
        prop_assert!(pool.recycled() >= freed.len() as u64);
        for f in &fresh {
            for old in &freed {
                if f.index() == old.index() {
                    prop_assert!(
                        f.generation() != old.generation(),
                        "slot {} recycled under the same generation",
                        f.index()
                    );
                }
            }
            prop_assert!(pool.state(*f).is_ok());
        }
        for old in &freed {
            prop_assert!(pool.state(*old).is_err(), "old handle revived by recycling");
        }
        prop_assert_eq!(pool.live(), n);
    }

    fn lifecycle_transitions_stay_on_rfc9293_edges(g) {
        let cfg = TcpSenderConfig {
            total_bytes: Some(g.u64(0..20_000)),
            handshake: true,
            time_wait: SimDuration::from_secs(2),
            ..Default::default()
        };
        let k = pool_key(g.any_u16());
        let mut s = TcpSender::new(k, cfg, g.any_u32());
        let mut r = TcpReceiver::listen(k);
        let mut s_last = s.state();
        let mut r_last = r.state();
        prop_assert_eq!(s_last, TcpState::Idle);
        prop_assert_eq!(r_last, TcpState::Listen);
        s.on_start(t(0));

        // Two unreliable one-way channels; each step delivers, drops,
        // duplicates or reorders one in-flight segment, or fires the
        // sender's retransmission clock.
        let mut to_r: Vec<Packet> = Vec::new();
        let mut to_s: Vec<Packet> = Vec::new();
        let mut now = 0u64;
        let steps = g.usize(50..400);
        for _ in 0..steps {
            now += g.u64(1..300);
            to_r.extend(s.take_out());
            to_s.extend(r.take_out());
            match g.u32(0..10) {
                0 | 1 | 2 | 3 if !to_r.is_empty() => {
                    // Deliver (random index = reordering); occasionally
                    // deliver a copy and keep the original in flight.
                    let i = g.usize(0..to_r.len());
                    let pkt =
                        if g.u32(0..8) == 0 { to_r[i].clone() } else { to_r.remove(i) };
                    r.on_segment(t(now), &pkt);
                }
                4 | 5 | 6 if !to_s.is_empty() => {
                    let i = g.usize(0..to_s.len());
                    let pkt =
                        if g.u32(0..8) == 0 { to_s[i].clone() } else { to_s.remove(i) };
                    s.on_segment(t(now), &pkt);
                }
                7 if !to_r.is_empty() => {
                    to_r.remove(g.usize(0..to_r.len())); // loss
                }
                8 if !to_s.is_empty() => {
                    to_s.remove(g.usize(0..to_s.len())); // loss
                }
                _ => {
                    if let Some(due) = s.next_event_time() {
                        let fire = due.max(t(now));
                        now = (fire.0 / 1_000_000).max(now);
                        s.on_tick(fire);
                    }
                }
            }
            let (s_cur, r_cur) = (s.state(), r.state());
            prop_assert!(
                legal_path(s_last, s_cur),
                "illegal sender transition {s_last:?} -> {s_cur:?}"
            );
            prop_assert!(
                legal_path(r_last, r_cur),
                "illegal receiver transition {r_last:?} -> {r_cur:?}"
            );
            if s_last == TcpState::Closed {
                prop_assert_eq!(s_cur, TcpState::Closed, "sender left CLOSED");
            }
            if r_last == TcpState::Closed {
                prop_assert_eq!(r_cur, TcpState::Closed, "receiver left CLOSED");
            }
            s_last = s_cur;
            r_last = r_cur;
        }
    }
}
