//! Property-based tests of the TCP machinery: sequence arithmetic, RTT
//! estimation bounds, and receiver reassembly invariants.

use dui_netsim::packet::{Addr, FlowKey, Packet, TcpFlags};
use dui_netsim::time::{SimDuration, SimTime};
use dui_tcp::seq::{seq_dist, seq_ge, seq_le, seq_lt};
use dui_tcp::{RttEstimator, TcpReceiver};
use proptest::prelude::*;

proptest! {
    #[test]
    fn seq_ordering_antisymmetric(a: u32, b: u32) {
        if a != b {
            prop_assert_ne!(seq_lt(a, b), seq_lt(b, a));
        } else {
            prop_assert!(!seq_lt(a, b) && !seq_lt(b, a));
        }
    }

    #[test]
    fn seq_le_ge_consistent(a: u32, b: u32) {
        prop_assert_eq!(seq_le(a, b), !seq_lt(b, a) || a == b);
        prop_assert_eq!(seq_ge(a, b), seq_le(b, a));
    }

    #[test]
    fn seq_dist_translation_invariant(a: u32, b: u32, shift: u32) {
        prop_assert_eq!(
            seq_dist(a, b),
            seq_dist(a.wrapping_add(shift), b.wrapping_add(shift))
        );
    }

    #[test]
    fn rto_always_within_bounds(samples in proptest::collection::vec(1u64..10_000, 0..100)) {
        let mut e = RttEstimator::default();
        for ms in samples {
            e.sample(SimDuration::from_millis(ms));
            prop_assert!(e.rto() >= SimDuration::from_secs(1));
            prop_assert!(e.rto() <= SimDuration::from_secs(60));
        }
    }

    #[test]
    fn rto_backoff_monotone(timeouts in 1usize..20) {
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_millis(500));
        let mut prev = e.rto();
        for _ in 0..timeouts {
            e.on_timeout();
            prop_assert!(e.rto() >= prev);
            prev = e.rto();
        }
    }

    #[test]
    fn receiver_delivers_each_byte_once(order in proptest::collection::vec(0usize..20, 1..60)) {
        // Deliver 20 segments of 100 B in arbitrary (repeating) order; the
        // receiver must deliver exactly the contiguous prefix it has, and
        // never more than 2000 bytes total.
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 1);
        let mut seen = std::collections::HashSet::new();
        for idx in order {
            let seq = 1 + (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            seen.insert(idx);
            prop_assert!(r.stats.bytes_delivered <= 2000);
            // Delivered = length of the contiguous prefix present.
            let mut prefix = 0;
            while seen.contains(&prefix) {
                prefix += 1;
            }
            prop_assert_eq!(r.stats.bytes_delivered, prefix as u64 * 100);
        }
    }

    #[test]
    fn receiver_acks_are_cumulative_and_monotone(order in proptest::collection::vec(0usize..15, 1..40)) {
        let key = FlowKey::tcp(Addr::new(1, 0, 0, 1), 1, Addr::new(2, 0, 0, 2), 80);
        let mut r = TcpReceiver::new(key, 0);
        let mut prev_ack = 0u32;
        for idx in order {
            let seq = (idx as u32) * 100;
            let pkt = Packet::tcp(key, seq, 0, TcpFlags::default(), 100);
            r.on_segment(SimTime::ZERO, &pkt);
            for ack_pkt in r.take_out() {
                if let dui_netsim::packet::Header::Tcp { ack, .. } = ack_pkt.header {
                    prop_assert!(seq_ge(ack, prev_ack), "acks never regress");
                    prev_ack = ack;
                }
            }
        }
    }
}
