//! End-to-end TCP transfers over the `dui-netsim` simulator: completion,
//! loss recovery, congestion sharing, and the retransmission signal Blink
//! consumes.

use dui_netsim::prelude::*;
use dui_tcp::{FlowSpec, TcpHost, TcpSenderConfig};

fn dumbbell(
    bw_mbps: u64,
    delay_ms: u64,
    queue: usize,
) -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    // h1 - r1 === r2 - h2 (bottleneck between routers)
    let mut b = TopologyBuilder::new();
    let h1 = b.host("h1", Addr::new(10, 0, 0, 1));
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let h2 = b.host("h2", Addr::new(10, 0, 0, 2));
    b.link(h1, r1, Bandwidth::gbps(1), SimDuration::from_millis(1), 256);
    b.link(
        r1,
        r2,
        Bandwidth::mbps(bw_mbps),
        SimDuration::from_millis(delay_ms),
        queue,
    );
    b.link(r2, h2, Bandwidth::gbps(1), SimDuration::from_millis(1), 256);
    (b.build(), h1, r1, r2, h2)
}

fn key(sport: u16) -> FlowKey {
    FlowKey::tcp(Addr::new(10, 0, 0, 1), sport, Addr::new(10, 0, 0, 2), 80)
}

fn spec(sport: u16, bytes: u64) -> FlowSpec {
    FlowSpec {
        key: key(sport),
        start: SimTime::ZERO,
        config: TcpSenderConfig {
            total_bytes: Some(bytes),
            ..Default::default()
        },
    }
}

#[test]
fn single_flow_completes_over_network() {
    let (topo, h1, r1, r2, h2) = dumbbell(100, 10, 64);
    let mut sim = Simulator::new(topo, 1);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    sim.set_logic(h1, Box::new(TcpHost::with_flows(vec![spec(1000, 500_000)])));
    sim.set_logic(h2, Box::new(TcpHost::new()));
    sim.run_until(SimTime::from_secs(30));
    let src: &mut TcpHost = sim.logic_mut(h1);
    let stats = src.sender_stats(&key(1000)).unwrap();
    assert!(
        stats.completed_at.is_some(),
        "transfer must finish: {stats:?}"
    );
    assert_eq!(stats.bytes_acked, 500_000);
    let dst: &mut TcpHost = sim.logic_mut(h2);
    assert_eq!(dst.total_bytes_received(), 500_000);
}

#[test]
fn transfer_survives_random_loss() {
    let (topo, h1, r1, r2, h2) = dumbbell(50, 5, 64);
    let mut sim = Simulator::new(topo, 7);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    sim.set_fault(
        LinkId(1),
        Dir::AtoB,
        FaultConfig {
            drop_prob: 0.05,
            jitter_max: None,
        },
    );
    sim.set_logic(h1, Box::new(TcpHost::with_flows(vec![spec(1000, 200_000)])));
    sim.set_logic(h2, Box::new(TcpHost::new()));
    sim.run_until(SimTime::from_secs(120));
    let src: &mut TcpHost = sim.logic_mut(h1);
    let stats = src.sender_stats(&key(1000)).unwrap();
    assert!(
        stats.completed_at.is_some(),
        "loss must be recovered: {stats:?}"
    );
    assert!(stats.retransmissions > 0, "5% loss must cause retransmits");
    let dst: &mut TcpHost = sim.logic_mut(h2);
    assert_eq!(dst.total_bytes_received(), 200_000);
}

#[test]
fn link_failure_triggers_rto_retransmissions() {
    // This is exactly the signal Blink watches for: a blackholed path makes
    // every flow retransmit on timeout.
    let (topo, h1, r1, r2, h2) = dumbbell(100, 5, 64);
    let mut sim = Simulator::new(topo, 3);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    let flows: Vec<FlowSpec> = (0..20)
        .map(|i| FlowSpec {
            key: key(1000 + i),
            start: SimTime::ZERO,
            config: TcpSenderConfig {
                total_bytes: None,
                app_rate: Some(50_000),
                ..Default::default()
            },
        })
        .collect();
    sim.set_logic(h1, Box::new(TcpHost::with_flows(flows)));
    sim.set_logic(h2, Box::new(TcpHost::new()));
    // Let flows run cleanly for 10 s.
    sim.run_until(SimTime::from_secs(10));
    let src: &mut TcpHost = sim.logic_mut(h1);
    let before: u64 = src
        .all_sender_stats()
        .iter()
        .map(|(_, s)| s.retransmissions)
        .sum();
    // Fail the bottleneck for 5 s.
    sim.set_link_up(LinkId(1), false);
    sim.run_until(SimTime::from_secs(15));
    let src: &mut TcpHost = sim.logic_mut(h1);
    let during: u64 = src
        .all_sender_stats()
        .iter()
        .map(|(_, s)| s.retransmissions)
        .sum();
    assert!(
        during > before + 15,
        "most of the 20 flows should have RTO-retransmitted (before={before}, during={during})"
    );
    // Heal and verify traffic resumes.
    sim.set_link_up(LinkId(1), true);
    let dst_before = {
        let dst: &mut TcpHost = sim.logic_mut(h2);
        dst.total_bytes_received()
    };
    sim.run_until(SimTime::from_secs(30));
    let dst: &mut TcpHost = sim.logic_mut(h2);
    assert!(dst.total_bytes_received() > dst_before + 100_000);
}

#[test]
fn two_flows_share_bottleneck_roughly_fairly() {
    let (topo, h1, r1, r2, h2) = dumbbell(20, 10, 32);
    let mut sim = Simulator::new(topo, 5);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    sim.set_logic(
        h1,
        Box::new(TcpHost::with_flows(vec![
            spec(1000, 4_000_000),
            spec(2000, 4_000_000),
        ])),
    );
    sim.set_logic(h2, Box::new(TcpHost::new()));
    sim.run_until(SimTime::from_secs(20));
    let src: &mut TcpHost = sim.logic_mut(h1);
    let a = src.sender_stats(&key(1000)).unwrap().bytes_acked as f64;
    let b = src.sender_stats(&key(2000)).unwrap().bytes_acked as f64;
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(ratio < 3.0, "gross unfairness: {a} vs {b}");
    // Both 4 MB transfers fit comfortably in 20 s at 20 Mbps; they must
    // finish despite competing for the bottleneck.
    assert_eq!(a + b, 8_000_000.0, "both transfers should complete");
}

#[test]
fn many_short_flows_all_complete() {
    let (topo, h1, r1, r2, h2) = dumbbell(100, 2, 128);
    let mut sim = Simulator::new(topo, 11);
    sim.set_logic(r1, Box::new(RouterLogic::new()));
    sim.set_logic(r2, Box::new(RouterLogic::new()));
    let flows: Vec<FlowSpec> = (0..100)
        .map(|i| FlowSpec {
            key: key(1000 + i),
            start: SimTime::from_secs_f64(i as f64 * 0.05),
            config: TcpSenderConfig {
                total_bytes: Some(10_000),
                ..Default::default()
            },
        })
        .collect();
    sim.set_logic(h1, Box::new(TcpHost::with_flows(flows)));
    sim.set_logic(h2, Box::new(TcpHost::new()));
    sim.run_until(SimTime::from_secs(60));
    let src: &mut TcpHost = sim.logic_mut(h1);
    assert_eq!(src.completed_senders(), 100);
    let dst: &mut TcpHost = sim.logic_mut(h2);
    assert_eq!(dst.total_bytes_received(), 100 * 10_000);
}
