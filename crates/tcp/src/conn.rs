//! Sans-I/O TCP sender and receiver state machines.
//!
//! Both machines consume events (`on_segment`, `on_tick`) and produce
//! outgoing packets into an internal buffer drained with `take_out`, plus a
//! `next_event_time` deadline the host must arm a timer for. No simulator
//! types beyond `Packet`/`SimTime` leak in, so every protocol behavior is
//! unit-testable below without an event loop.
//!
//! ## Column layout
//!
//! All per-connection state is factored into small column structs —
//! `SeqState`, `RtxQueue`, `SenderMeta`, `RcvState` — and the
//! protocol logic is written once against *borrowed views* over those
//! columns (`SenderCols`, `RecvCols`). A standalone [`TcpSender`] /
//! [`TcpReceiver`] owns one of each column (the unit-test and single-flow
//! shape); [`crate::pool::FlowPool`] owns `Vec`s of them (the
//! struct-of-arrays shape a [`crate::host::TcpHost`] runs millions of
//! flows on). Split borrows over disjoint column vectors make the two
//! shapes share every line of protocol code.
//!
//! ## Lifecycle
//!
//! With `TcpSenderConfig::handshake == false` (the default) connections
//! behave exactly as the original model: data starts flowing on
//! `on_start`, a FIN closes the stream, and there is no three-way
//! handshake. With `handshake == true` the machines walk the full
//! RFC 9293 lifecycle: SYN-SENT / SYN-RECEIVED setup, FIN-WAIT-1/2,
//! CLOSE-WAIT / LAST-ACK and a timed TIME-WAIT — which is what the
//! SYN-flood and connection-churn workloads exercise.

use crate::reno::Reno;
use crate::rtt::RttEstimator;
use crate::seq::{seq_dist, seq_ge, seq_gt, seq_lt};
use dui_netsim::packet::{FlowKey, Header, Packet, TcpFlags};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use std::collections::{BTreeMap, VecDeque};

/// Fold a flow key into `d` field by field (src, dst, sport, dport, proto).
pub(crate) fn digest_flow_key(d: &mut StateDigest, key: &FlowKey) {
    d.write_u32(key.src.0);
    d.write_u32(key.dst.0);
    d.write_u16(key.sport);
    d.write_u16(key.dport);
    d.write_u8(key.proto.code());
}

/// RFC 9293 connection states (plus `Idle`, the pre-open CLOSED a sender
/// sits in between construction and `on_start`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// CLOSED before the connection was ever opened.
    Idle,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent, waiting for the SYN-ACK.
    SynSent,
    /// Passive open: SYN seen, SYN-ACK sent, waiting for the final ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Our FIN is out, not yet acknowledged.
    FinWait1,
    /// Our FIN is acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Both sides sent FINs, ours not yet acknowledged (simultaneous close).
    Closing,
    /// Peer's FIN consumed; our side has not closed yet.
    CloseWait,
    /// Our FIN is out after the peer's; waiting for its ACK.
    LastAck,
    /// Fully closed, draining stray segments for 2MSL.
    TimeWait,
    /// CLOSED after teardown completed.
    Closed,
}

impl TcpState {
    /// Stable one-byte code for state digests and checkpoint codecs.
    pub fn code(self) -> u8 {
        match self {
            TcpState::Idle => 0,
            TcpState::Listen => 1,
            TcpState::SynSent => 2,
            TcpState::SynRcvd => 3,
            TcpState::Established => 4,
            TcpState::FinWait1 => 5,
            TcpState::FinWait2 => 6,
            TcpState::Closing => 7,
            TcpState::CloseWait => 8,
            TcpState::LastAck => 9,
            TcpState::TimeWait => 10,
            TcpState::Closed => 11,
        }
    }

    /// Inverse of [`TcpState::code`].
    pub fn from_code(c: u8) -> Option<TcpState> {
        Some(match c {
            0 => TcpState::Idle,
            1 => TcpState::Listen,
            2 => TcpState::SynSent,
            3 => TcpState::SynRcvd,
            4 => TcpState::Established,
            5 => TcpState::FinWait1,
            6 => TcpState::FinWait2,
            7 => TcpState::Closing,
            8 => TcpState::CloseWait,
            9 => TcpState::LastAck,
            10 => TcpState::TimeWait,
            11 => TcpState::Closed,
            _ => return None,
        })
    }
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct TcpSenderConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Total application bytes to transfer; `None` = unbounded stream.
    pub total_bytes: Option<u64>,
    /// Application pacing in bytes/second; `None` = send as fast as the
    /// window allows. Pacing models app-limited flows (video, interactive),
    /// which dominate the CAIDA-like workloads.
    pub app_rate: Option<u64>,
    /// Initial congestion window (segments).
    pub initial_cwnd: f64,
    /// Run the full RFC 9293 lifecycle (SYN handshake, FIN/FIN teardown,
    /// TIME-WAIT). `false` preserves the original handshake-less model.
    pub handshake: bool,
    /// TIME-WAIT (2MSL) linger before the connection is fully CLOSED.
    /// Only consulted when `handshake` is set.
    pub time_wait: SimDuration,
}

impl Default for TcpSenderConfig {
    fn default() -> Self {
        TcpSenderConfig {
            mss: 1460,
            total_bytes: None,
            app_rate: None,
            initial_cwnd: 10.0,
            handshake: false,
            time_wait: SimDuration::from_secs(60),
        }
    }
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SenderStats {
    /// Application bytes acknowledged.
    pub bytes_acked: u64,
    /// Data segments sent (including retransmissions and SYN/FIN).
    pub segments_sent: u64,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmissions: u64,
    /// Fast retransmissions (3 dup ACKs).
    pub fast_retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// When the FIN was acknowledged, if the flow completed.
    pub completed_at: Option<SimTime>,
}

/// One outstanding segment awaiting acknowledgement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentRecord {
    pub(crate) sent_at: SimTime,
    pub(crate) retransmitted: bool,
    pub(crate) len: u32,
}

/// The retransmission queue: outstanding segments in send order.
///
/// Send order *is* sequence order (`snd_nxt` only grows; retransmissions
/// update records in place), so the queue replaces the old
/// `HashMap<u32, SegmentRecord>` with a layout whose iteration order is
/// already canonical — digests walk the queue front-to-back with no
/// sort-before-iterate dance, and cumulative ACKs pop from the front.
#[derive(Debug, Clone, Default)]
pub(crate) struct RtxQueue {
    q: VecDeque<(u32, SegmentRecord)>,
}

impl RtxQueue {
    pub(crate) fn push(&mut self, seq: u32, rec: SegmentRecord) {
        self.q.push_back((seq, rec));
    }

    pub(crate) fn front(&self) -> Option<(u32, &SegmentRecord)> {
        self.q.front().map(|(s, r)| (*s, r))
    }

    pub(crate) fn front_mut(&mut self) -> Option<(u32, &mut SegmentRecord)> {
        self.q.front_mut().map(|(s, r)| (*s, r))
    }

    pub(crate) fn pop_front(&mut self) -> Option<(u32, SegmentRecord)> {
        self.q.pop_front()
    }

    pub(crate) fn len(&self) -> usize {
        self.q.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u32, &SegmentRecord)> {
        self.q.iter().map(|(s, r)| (*s, r))
    }

    /// Queue-order digest (send order is the canonical order).
    pub(crate) fn state_digest(&self, d: &mut StateDigest) {
        d.write_len(self.q.len());
        for (seq, rec) in &self.q {
            d.write_u32(*seq);
            d.write_u64(rec.sent_at.0);
            d.write_bool(rec.retransmitted);
            d.write_u32(rec.len);
        }
    }
}

/// Sequence-space column: ISN, send cursor and the phantom-byte markers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeqState {
    pub(crate) isn: u32,
    pub(crate) snd_una: u32,
    pub(crate) snd_nxt: u32,
    pub(crate) app_sent: u64,
    pub(crate) fin_seq: Option<u32>,
    pub(crate) syn_seq: Option<u32>,
    /// NewReno-style recovery: while `Some(r)`, every partial ACK below `r`
    /// immediately retransmits the new head instead of waiting an RTO.
    pub(crate) recovery_until: Option<u32>,
}

impl SeqState {
    pub(crate) fn new(isn: u32) -> Self {
        SeqState {
            isn,
            snd_una: isn,
            snd_nxt: isn,
            app_sent: 0,
            fin_seq: None,
            syn_seq: None,
            recovery_until: None,
        }
    }
}

impl Default for SeqState {
    fn default() -> Self {
        SeqState::new(0)
    }
}

/// Timer/window column: everything the sender consults between segments.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SenderMeta {
    pub(crate) started_at: SimTime,
    pub(crate) dupacks: u32,
    pub(crate) rto_deadline: Option<SimTime>,
    pub(crate) pace_deadline: Option<SimTime>,
    pub(crate) timewait_deadline: Option<SimTime>,
    pub(crate) peer_rwnd: u32,
    pub(crate) state: TcpState,
}

impl Default for SenderMeta {
    fn default() -> Self {
        SenderMeta {
            started_at: SimTime::ZERO,
            dupacks: 0,
            rto_deadline: None,
            pace_deadline: None,
            timewait_deadline: None,
            peer_rwnd: u32::MAX,
            state: TcpState::Idle,
        }
    }
}

/// Borrowed view over one sender's columns. The protocol implementation
/// lives here; [`TcpSender`] and [`crate::pool::FlowPool`] both construct
/// this view from their own storage.
pub(crate) struct SenderCols<'a> {
    pub(crate) key: FlowKey,
    pub(crate) cfg: &'a TcpSenderConfig,
    pub(crate) cc: &'a mut Reno,
    pub(crate) rtt: &'a mut RttEstimator,
    pub(crate) seq: &'a mut SeqState,
    pub(crate) rtx: &'a mut RtxQueue,
    pub(crate) meta: &'a mut SenderMeta,
    pub(crate) out: &'a mut Vec<Packet>,
    pub(crate) stats: &'a mut SenderStats,
}

impl SenderCols<'_> {
    /// Begin transmitting: straight to ESTABLISHED without a handshake,
    /// or emit a SYN and wait in SYN-SENT with one.
    pub(crate) fn on_start(&mut self, now: SimTime) {
        assert_eq!(self.meta.state, TcpState::Idle, "already started");
        self.meta.started_at = now;
        if self.cfg.handshake {
            self.meta.state = TcpState::SynSent;
            let syn = self.seq.isn;
            self.seq.syn_seq = Some(syn);
            self.rtx.push(
                syn,
                SegmentRecord {
                    sent_at: now,
                    retransmitted: false,
                    len: 1, // SYN occupies one sequence number
                },
            );
            self.seq.snd_nxt = syn.wrapping_add(1);
            self.stats.segments_sent += 1;
            self.out.push(Packet::tcp(
                self.key,
                syn,
                0,
                TcpFlags {
                    syn: true,
                    ..TcpFlags::default()
                },
                0,
            ));
            self.rearm_rto(now);
        } else {
            self.meta.state = TcpState::Established;
            self.try_send(now);
        }
    }

    pub(crate) fn in_flight(&self) -> u32 {
        seq_dist(self.seq.snd_una, self.seq.snd_nxt)
    }

    /// A segment for this connection arrived (ACKs, and — in handshake
    /// mode — the peer's FIN).
    pub(crate) fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        let Header::Tcp {
            seq: pkt_seq,
            ack,
            flags,
            window,
        } = pkt.header
        else {
            return;
        };
        if !flags.ack
            || self.meta.state == TcpState::Idle
            || self.meta.state == TcpState::Closed
        {
            return;
        }
        self.meta.peer_rwnd = window;
        if seq_gt(ack, self.seq.snd_una) {
            let prev_una = self.seq.snd_una;
            // New data acknowledged.
            let advanced = seq_dist(self.seq.snd_una, ack);
            // RTT sample from the segment that started at old snd_una,
            // if it was never retransmitted (Karn's rule).
            if let Some((head, rec)) = self.rtx.front() {
                if head == self.seq.snd_una && !rec.retransmitted {
                    self.rtt.sample(now.since(rec.sent_at));
                }
            }
            // ACK counting: one on_ack per fully-acked segment. The queue
            // is in send order, so acked records sit at the front.
            let mut cursor = self.seq.snd_una;
            while seq_lt(cursor, ack) {
                let len = match self.rtx.front() {
                    Some((head, rec)) if head == cursor => {
                        let len = rec.len;
                        self.rtx.pop_front();
                        len
                    }
                    _ => self.cfg.mss,
                };
                self.cc.on_ack();
                cursor = cursor.wrapping_add(len.max(1));
            }
            self.seq.snd_una = ack;
            self.meta.dupacks = 0;
            // Don't count the SYN/FIN phantom bytes as application data.
            let mut phantom = 0u64;
            if let Some(f) = self.seq.fin_seq {
                if seq_ge(ack, f.wrapping_add(1)) {
                    phantom += 1;
                }
            }
            if let Some(s) = self.seq.syn_seq {
                let after_syn = s.wrapping_add(1);
                if seq_ge(ack, after_syn) && seq_lt(prev_una, after_syn) {
                    phantom += 1;
                }
            }
            self.stats.bytes_acked = self
                .stats
                .bytes_acked
                .saturating_add(advanced as u64)
                .saturating_sub(phantom);
            // SYN acknowledged: the handshake is complete — ACK it and
            // start pushing data.
            if self.meta.state == TcpState::SynSent {
                if let Some(s) = self.seq.syn_seq {
                    if seq_ge(self.seq.snd_una, s.wrapping_add(1)) {
                        self.meta.state = TcpState::Established;
                        // Third leg of the handshake: the peer's SYN
                        // occupies its sequence 0, so we acknowledge 1.
                        self.out.push(Packet::tcp(
                            self.key,
                            self.seq.snd_nxt,
                            1,
                            TcpFlags {
                                ack: true,
                                ..TcpFlags::default()
                            },
                            0,
                        ));
                    }
                }
            }
            let fin_acked = self
                .seq
                .fin_seq
                .is_some_and(|f| seq_ge(ack, f.wrapping_add(1)));
            if fin_acked {
                if self.stats.completed_at.is_none() {
                    self.stats.completed_at = Some(now);
                }
                self.meta.rto_deadline = None;
                self.meta.pace_deadline = None;
                if !self.cfg.handshake {
                    self.meta.state = TcpState::Closed;
                    return;
                }
                match self.meta.state {
                    TcpState::FinWait1 => self.meta.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    _ => {}
                }
            } else {
                // NewReno partial-ACK handling: if we are recovering from
                // loss and this ACK does not cover the recovery point, the
                // next hole starts at the new head — retransmit it
                // immediately.
                match self.seq.recovery_until {
                    Some(r) if seq_lt(ack, r) => {
                        self.retransmit_head(now);
                    }
                    Some(_) => self.seq.recovery_until = None,
                    None => {}
                }
                self.rearm_rto(now);
                self.try_send(now);
            }
        } else if ack == self.seq.snd_una && self.in_flight() > 0 {
            self.meta.dupacks += 1;
            if self.meta.dupacks == 3 {
                self.fast_retransmit(now);
            }
        }
        // Teardown: the peer's FIN rides on its ACKs.
        if self.cfg.handshake && flags.fin {
            self.on_peer_fin(now, pkt_seq);
        }
    }

    /// Clock tick: check RTO, pacing and TIME-WAIT deadlines.
    pub(crate) fn on_tick(&mut self, now: SimTime) {
        if self.meta.state == TcpState::TimeWait {
            if let Some(d) = self.meta.timewait_deadline {
                if now >= d {
                    self.meta.timewait_deadline = None;
                    self.meta.state = TcpState::Closed;
                }
            }
            return;
        }
        if self.meta.state == TcpState::Closed || self.meta.state == TcpState::Idle {
            return;
        }
        if let Some(d) = self.meta.rto_deadline {
            if now >= d && self.in_flight() > 0 {
                self.on_rto(now);
            }
        }
        if let Some(d) = self.meta.pace_deadline {
            if now >= d {
                self.meta.pace_deadline = None;
                self.try_send(now);
            }
        }
    }

    fn on_peer_fin(&mut self, now: SimTime, fin_seq: u32) {
        let ack_of_fin = fin_seq.wrapping_add(1);
        match self.meta.state {
            TcpState::FinWait1 => {
                // Simultaneous close: both FINs in flight.
                self.ack_peer_fin(ack_of_fin);
                self.meta.state = TcpState::Closing;
            }
            TcpState::FinWait2 => {
                self.ack_peer_fin(ack_of_fin);
                self.enter_time_wait(now);
            }
            TcpState::TimeWait => {
                // Retransmitted peer FIN: re-ACK and restart 2MSL.
                self.ack_peer_fin(ack_of_fin);
                self.meta.timewait_deadline = Some(now + self.cfg.time_wait);
            }
            _ => {}
        }
    }

    fn ack_peer_fin(&mut self, ack: u32) {
        self.out.push(Packet::tcp(
            self.key,
            self.seq.snd_nxt,
            ack,
            TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            0,
        ));
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.meta.state = TcpState::TimeWait;
        self.meta.timewait_deadline = Some(now + self.cfg.time_wait);
    }

    fn on_rto(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        self.cc.on_timeout();
        self.rtt.on_timeout();
        self.meta.dupacks = 0;
        self.seq.recovery_until = Some(self.seq.snd_nxt);
        self.retransmit_head(now);
        self.rearm_rto(now);
    }

    fn fast_retransmit(&mut self, now: SimTime) {
        self.stats.fast_retransmits += 1;
        self.cc.on_fast_retransmit();
        self.seq.recovery_until = Some(self.seq.snd_nxt);
        self.retransmit_head(now);
        self.rearm_rto(now);
    }

    fn retransmit_head(&mut self, now: SimTime) {
        let head = self.seq.snd_una;
        let Some((seq, rec)) = self.rtx.front_mut() else {
            return;
        };
        if seq != head {
            return;
        }
        rec.retransmitted = true;
        rec.sent_at = now;
        let len = rec.len;
        self.stats.retransmissions += 1;
        self.stats.segments_sent += 1;
        let is_fin = self.seq.fin_seq == Some(head);
        let is_syn = self.seq.syn_seq == Some(head);
        let flags = TcpFlags {
            fin: is_fin,
            syn: is_syn,
            ..TcpFlags::default()
        };
        let payload = if is_fin || is_syn { 0 } else { len };
        self.out
            .push(Packet::tcp(self.key, head, 0, flags, payload));
    }

    fn rearm_rto(&mut self, now: SimTime) {
        self.meta.rto_deadline = if self.in_flight() > 0 {
            Some(now + self.rtt.rto())
        } else {
            None
        };
    }

    /// Application bytes available to transmit by `now` under pacing.
    fn app_available(&self, now: SimTime) -> u64 {
        let offered = match self.cfg.app_rate {
            None => u64::MAX,
            Some(rate) => {
                let elapsed = now.since(self.meta.started_at).as_secs_f64();
                (rate as f64 * elapsed) as u64
            }
        };
        match self.cfg.total_bytes {
            Some(total) => offered.min(total),
            None => offered,
        }
    }

    fn try_send(&mut self, now: SimTime) {
        if self.meta.state != TcpState::Established {
            return;
        }
        let win_bytes =
            (self.cc.cwnd_segments() as u64 * self.cfg.mss as u64).min(self.meta.peer_rwnd as u64);
        let available = self.app_available(now);
        loop {
            let in_flight = self.in_flight() as u64;
            if in_flight + self.cfg.mss as u64 > win_bytes {
                break; // window-limited
            }
            let remaining_now = available.saturating_sub(self.seq.app_sent);
            let total_remaining = self
                .cfg
                .total_bytes
                .map(|t| t.saturating_sub(self.seq.app_sent))
                .unwrap_or(u64::MAX);
            if total_remaining == 0 {
                // All data queued; send FIN once.
                if self.seq.fin_seq.is_none() {
                    let fin = self.seq.snd_nxt;
                    self.seq.fin_seq = Some(fin);
                    self.rtx.push(
                        fin,
                        SegmentRecord {
                            sent_at: now,
                            retransmitted: false,
                            len: 1, // FIN occupies one sequence number
                        },
                    );
                    self.seq.snd_nxt = self.seq.snd_nxt.wrapping_add(1);
                    self.meta.state = TcpState::FinWait1;
                    self.stats.segments_sent += 1;
                    self.out.push(Packet::tcp(
                        self.key,
                        fin,
                        0,
                        TcpFlags {
                            fin: true,
                            ..TcpFlags::default()
                        },
                        0,
                    ));
                    self.rearm_rto(now);
                }
                break;
            }
            // Send whole MSS segments only (or the flow's final short
            // tail); partial credit waits for the pacing clock, otherwise
            // ACK-triggered sends would fragment the stream into sub-MSS
            // packets and inflate the packet rate.
            let len = (self.cfg.mss as u64).min(total_remaining) as u32;
            if remaining_now < len as u64 {
                // App-limited: schedule a pacing wake for this segment.
                if let Some(rate) = self.cfg.app_rate {
                    let next_bytes = self.seq.app_sent + len as u64;
                    let at = self.meta.started_at
                        + SimDuration::from_secs_f64(next_bytes as f64 / rate as f64);
                    self.meta.pace_deadline = Some(at.max(now + SimDuration::from_nanos(1)));
                }
                break;
            }
            let seq = self.seq.snd_nxt;
            self.rtx.push(
                seq,
                SegmentRecord {
                    sent_at: now,
                    retransmitted: false,
                    len,
                },
            );
            self.seq.snd_nxt = self.seq.snd_nxt.wrapping_add(len);
            self.seq.app_sent += len as u64;
            self.stats.segments_sent += 1;
            self.out
                .push(Packet::tcp(self.key, seq, 0, TcpFlags::default(), len));
        }
        if self.in_flight() > 0 && self.meta.rto_deadline.is_none() {
            self.rearm_rto(now);
        }
    }
}

/// Earliest deadline among the sender's RTO, pacing and TIME-WAIT timers.
pub(crate) fn sender_next_event_time(meta: &SenderMeta) -> Option<SimTime> {
    [
        meta.rto_deadline,
        meta.pace_deadline,
        meta.timewait_deadline,
    ]
    .into_iter()
    .flatten()
    .min()
}

/// Fold one sender's complete column set into `d`: configuration,
/// congestion control, RTT estimator, sequence space, the retransmission
/// queue (send order — already canonical, no sorting) and statistics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn digest_sender_cols(
    d: &mut StateDigest,
    key: &FlowKey,
    cfg: &TcpSenderConfig,
    cc: &Reno,
    rtt: &RttEstimator,
    seq: &SeqState,
    rtx: &RtxQueue,
    meta: &SenderMeta,
    out: &[Packet],
    stats: &SenderStats,
) {
    digest_flow_key(d, key);
    d.write_u32(cfg.mss);
    d.write_opt_u64(cfg.total_bytes);
    d.write_opt_u64(cfg.app_rate);
    d.write_f64(cfg.initial_cwnd);
    d.write_bool(cfg.handshake);
    d.write_u64(cfg.time_wait.as_nanos());
    cc.state_digest(d);
    rtt.state_digest(d);
    d.write_u32(seq.isn);
    d.write_u32(seq.snd_una);
    d.write_u32(seq.snd_nxt);
    d.write_u64(seq.app_sent);
    d.write_u64(meta.started_at.0);
    rtx.state_digest(d);
    d.write_u32(meta.dupacks);
    d.write_opt_u64(meta.rto_deadline.map(|t| t.0));
    d.write_opt_u64(meta.pace_deadline.map(|t| t.0));
    d.write_opt_u64(meta.timewait_deadline.map(|t| t.0));
    d.write_u32(meta.peer_rwnd);
    d.write_opt_u64(seq.fin_seq.map(u64::from));
    d.write_opt_u64(seq.syn_seq.map(u64::from));
    d.write_opt_u64(seq.recovery_until.map(u64::from));
    d.write_u8(meta.state.code());
    d.write_len(out.len());
    for p in out {
        p.state_digest(d);
    }
    d.write_u64(stats.bytes_acked);
    d.write_u64(stats.segments_sent);
    d.write_u64(stats.retransmissions);
    d.write_u64(stats.fast_retransmits);
    d.write_u64(stats.timeouts);
    d.write_opt_u64(stats.completed_at.map(|t| t.0));
}

/// The TCP sender: Reno + RFC 6298 timers + fast retransmit, owning one
/// column set. The event handlers delegate to `SenderCols`.
#[derive(Debug)]
pub struct TcpSender {
    key: FlowKey,
    cfg: TcpSenderConfig,
    cc: Reno,
    rtt: RttEstimator,
    seq: SeqState,
    rtx: RtxQueue,
    meta: SenderMeta,
    out: Vec<Packet>,
    /// Statistics.
    pub stats: SenderStats,
}

impl TcpSender {
    /// Create a sender for the forward-direction flow `key`.
    pub fn new(key: FlowKey, cfg: TcpSenderConfig, isn: u32) -> Self {
        let cc = Reno::new(cfg.initial_cwnd);
        TcpSender {
            key,
            cfg,
            cc,
            rtt: RttEstimator::default(),
            seq: SeqState::new(isn),
            rtx: RtxQueue::default(),
            meta: SenderMeta::default(),
            out: Vec::new(),
            stats: SenderStats::default(),
        }
    }

    fn cols(&mut self) -> SenderCols<'_> {
        SenderCols {
            key: self.key,
            cfg: &self.cfg,
            cc: &mut self.cc,
            rtt: &mut self.rtt,
            seq: &mut self.seq,
            rtx: &mut self.rtx,
            meta: &mut self.meta,
            out: &mut self.out,
            stats: &mut self.stats,
        }
    }

    /// Flow key (forward direction).
    pub fn key(&self) -> FlowKey {
        self.key
    }

    /// Begin transmitting.
    pub fn on_start(&mut self, now: SimTime) {
        self.cols().on_start(now);
    }

    /// Flow finished (teardown complete)?
    pub fn is_done(&self) -> bool {
        self.meta.state == TcpState::Closed
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TcpState {
        self.meta.state
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> u32 {
        seq_dist(self.seq.snd_una, self.seq.snd_nxt)
    }

    /// Current congestion window in segments.
    pub fn cwnd_segments(&self) -> u32 {
        self.cc.cwnd_segments()
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Drain outgoing packets.
    pub fn take_out(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.out)
    }

    /// Earliest time this sender needs a tick (RTO, pacing or TIME-WAIT).
    pub fn next_event_time(&self) -> Option<SimTime> {
        sender_next_event_time(&self.meta)
    }

    /// A segment for this connection arrived (ACKs and the peer's FIN).
    pub fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        self.cols().on_segment(now, pkt);
    }

    /// Clock tick: check RTO, pacing and TIME-WAIT deadlines.
    pub fn on_tick(&mut self, now: SimTime) {
        self.cols().on_tick(now);
    }

    /// Initial sequence number.
    pub fn isn(&self) -> u32 {
        self.seq.isn
    }

    /// Fold the sender's complete state into `d`.
    pub fn state_digest(&self, d: &mut StateDigest) {
        digest_sender_cols(
            d, &self.key, &self.cfg, &self.cc, &self.rtt, &self.seq, &self.rtx, &self.meta,
            &self.out, &self.stats,
        );
    }
}

/// Receiver-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReceiverStats {
    /// In-order application bytes delivered.
    pub bytes_delivered: u64,
    /// Segments that arrived already-acknowledged (spurious retransmits or
    /// network duplicates).
    pub duplicate_segments: u64,
    /// Segments buffered out of order.
    pub out_of_order_segments: u64,
    /// When the FIN was consumed.
    pub finished_at: Option<SimTime>,
}

/// Receiver-side column: cumulative-ACK cursor, reassembly buffer and the
/// passive-open lifecycle state.
#[derive(Debug, Clone)]
pub(crate) struct RcvState {
    pub(crate) rcv_nxt: u32,
    /// Out-of-order segments keyed by absolute sequence number. Segment
    /// boundaries from a single sender are stable, so exact-key lookup at
    /// `rcv_nxt` drains the buffer without wrap-sensitive ordering.
    pub(crate) ooo: BTreeMap<u32, u32>,
    pub(crate) fin_seq: Option<u32>,
    pub(crate) done: bool,
    pub(crate) advertised_window: u32,
    pub(crate) state: TcpState,
    /// Passive-open (SYN-driven) connection walking the full lifecycle?
    pub(crate) handshake: bool,
    pub(crate) our_fin_sent: bool,
}

impl RcvState {
    /// Handshake-less receiver expecting first byte `isn` (the original
    /// model: it is born ESTABLISHED).
    pub(crate) fn new(isn: u32) -> Self {
        RcvState {
            rcv_nxt: isn,
            ooo: BTreeMap::new(),
            fin_seq: None,
            done: false,
            advertised_window: 1 << 20,
            state: TcpState::Established,
            handshake: false,
            our_fin_sent: false,
        }
    }

    /// Passive-open receiver: waits in LISTEN for a SYN.
    pub(crate) fn listen() -> Self {
        RcvState {
            state: TcpState::Listen,
            handshake: true,
            ..RcvState::new(0)
        }
    }
}

impl Default for RcvState {
    fn default() -> Self {
        RcvState::new(0)
    }
}

/// Borrowed view over one receiver's columns (see `SenderCols`).
pub(crate) struct RecvCols<'a> {
    pub(crate) key: FlowKey,
    pub(crate) rcv: &'a mut RcvState,
    pub(crate) out: &'a mut Vec<Packet>,
    pub(crate) stats: &'a mut ReceiverStats,
}

impl RecvCols<'_> {
    /// A segment arrived.
    pub(crate) fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        let Header::Tcp {
            seq,
            ack: ack_no,
            flags,
            ..
        } = pkt.header
        else {
            return;
        };
        // Passive open: SYN (or a retransmitted duplicate) → SYN-RCVD.
        if flags.syn {
            if matches!(self.rcv.state, TcpState::Listen | TcpState::SynRcvd) {
                if self.rcv.state == TcpState::SynRcvd {
                    self.stats.duplicate_segments += 1;
                }
                self.rcv.rcv_nxt = seq.wrapping_add(1);
                self.rcv.state = TcpState::SynRcvd;
                // SYN-ACK: our ISN is 0 by convention (we never send data).
                self.push_flagged(
                    0,
                    TcpFlags {
                        syn: true,
                        ack: true,
                        ..TcpFlags::default()
                    },
                );
            }
            return;
        }
        // Any non-SYN segment completes the passive handshake.
        if self.rcv.state == TcpState::SynRcvd {
            self.rcv.state = TcpState::Established;
        }
        if flags.ack && pkt.payload == 0 && !flags.fin {
            // Pure ACK. In LAST-ACK it acknowledges our FIN (which sits at
            // our sequence 0); otherwise receivers ignore it.
            if self.rcv.state == TcpState::LastAck && seq_ge(ack_no, 1) {
                self.rcv.state = TcpState::Closed;
            }
            return;
        }
        let len = if flags.fin { 1 } else { pkt.payload };
        if flags.fin {
            self.rcv.fin_seq = Some(seq);
        }
        if len == 0 {
            self.emit_ack();
            return;
        }
        if seq_lt(seq, self.rcv.rcv_nxt) {
            // Entirely old segment: duplicate.
            self.stats.duplicate_segments += 1;
            self.emit_ack();
            return;
        }
        if seq == self.rcv.rcv_nxt {
            let fin_here = flags.fin;
            self.advance(len, fin_here, now);
            // Drain buffered segments that are now contiguous.
            while let Some(blen) = self.rcv.ooo.remove(&self.rcv.rcv_nxt) {
                let fin_here = self.rcv.fin_seq == Some(self.rcv.rcv_nxt);
                self.advance(blen, fin_here, now);
            }
        } else {
            // Future segment: buffer by absolute sequence.
            if self.rcv.ooo.insert(seq, len).is_none() {
                self.stats.out_of_order_segments += 1;
            } else {
                self.stats.duplicate_segments += 1;
            }
        }
        self.emit_ack();
        // Teardown: consuming the peer's FIN moves a handshake connection
        // through CLOSE-WAIT; we have nothing more to send, so the FIN
        // follows immediately and we wait in LAST-ACK for its ACK.
        if self.rcv.done && self.rcv.handshake && !self.rcv.our_fin_sent {
            self.rcv.our_fin_sent = true;
            self.rcv.state = TcpState::CloseWait;
            self.push_flagged(
                0, // our FIN occupies our sequence 0
                TcpFlags {
                    fin: true,
                    ack: true,
                    ..TcpFlags::default()
                },
            );
            self.rcv.state = TcpState::LastAck;
        }
    }

    fn advance(&mut self, len: u32, fin: bool, now: SimTime) {
        self.rcv.rcv_nxt = self.rcv.rcv_nxt.wrapping_add(len);
        if fin {
            self.rcv.done = true;
            if self.rcv.handshake {
                self.rcv.state = TcpState::CloseWait;
            }
            self.stats.finished_at = Some(now);
        } else {
            self.stats.bytes_delivered += len as u64;
        }
    }

    fn emit_ack(&mut self) {
        self.push_flagged(
            0,
            TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
        );
    }

    /// Emit a reverse-direction segment carrying our advertised window.
    fn push_flagged(&mut self, seq: u32, flags: TcpFlags) {
        let mut p = Packet::tcp(self.key.reversed(), seq, self.rcv.rcv_nxt, flags, 0);
        if let Header::Tcp { window, .. } = &mut p.header {
            *window = self.rcv.advertised_window;
        }
        self.out.push(p);
    }
}

/// Fold one receiver's complete column set into `d` (the reassembly
/// buffer is a `BTreeMap`, so iteration order is already stable).
pub(crate) fn digest_recv_cols(
    d: &mut StateDigest,
    key: &FlowKey,
    rcv: &RcvState,
    out: &[Packet],
    stats: &ReceiverStats,
) {
    digest_flow_key(d, key);
    d.write_u32(rcv.rcv_nxt);
    d.write_len(rcv.ooo.len());
    for (seq, len) in &rcv.ooo {
        d.write_u32(*seq);
        d.write_u32(*len);
    }
    d.write_opt_u64(rcv.fin_seq.map(u64::from));
    d.write_bool(rcv.done);
    d.write_u32(rcv.advertised_window);
    d.write_u8(rcv.state.code());
    d.write_bool(rcv.handshake);
    d.write_bool(rcv.our_fin_sent);
    d.write_len(out.len());
    for p in out {
        p.state_digest(d);
    }
    d.write_u64(stats.bytes_delivered);
    d.write_u64(stats.duplicate_segments);
    d.write_u64(stats.out_of_order_segments);
    d.write_opt_u64(stats.finished_at.map(|t| t.0));
}

/// The TCP receiver: cumulative ACKs + out-of-order reassembly buffer,
/// owning one column set.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Forward-direction flow key (data flows along `key`, ACKs along
    /// `key.reversed()`).
    key: FlowKey,
    rcv: RcvState,
    out: Vec<Packet>,
    /// Statistics.
    pub stats: ReceiverStats,
}

impl TcpReceiver {
    /// Create a receiver expecting first byte `isn` (handshake-less: born
    /// ESTABLISHED).
    pub fn new(key: FlowKey, isn: u32) -> Self {
        TcpReceiver {
            key,
            rcv: RcvState::new(isn),
            out: Vec::new(),
            stats: ReceiverStats::default(),
        }
    }

    /// Create a passive-open receiver in LISTEN: the first SYN drives it
    /// through SYN-RCVD and the full RFC 9293 teardown.
    pub fn listen(key: FlowKey) -> Self {
        TcpReceiver {
            key,
            rcv: RcvState::listen(),
            out: Vec::new(),
            stats: ReceiverStats::default(),
        }
    }

    fn cols(&mut self) -> RecvCols<'_> {
        RecvCols {
            key: self.key,
            rcv: &mut self.rcv,
            out: &mut self.out,
            stats: &mut self.stats,
        }
    }

    /// Override the advertised receive window (used by the endpoint-attack
    /// experiments: a MitM shrinking the window throttles the sender).
    pub fn set_advertised_window(&mut self, w: u32) {
        self.rcv.advertised_window = w;
    }

    /// FIN consumed?
    pub fn is_done(&self) -> bool {
        self.rcv.done
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TcpState {
        self.rcv.state
    }

    /// Drain outgoing (ACK) packets.
    pub fn take_out(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.out)
    }

    /// A data segment arrived.
    pub fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        self.cols().on_segment(now, pkt);
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv.rcv_nxt
    }

    /// Fold the receiver's complete state into `d`.
    pub fn state_digest(&self, d: &mut StateDigest) {
        digest_recv_cols(d, &self.key, &self.rcv, &self.out, &self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(Addr::new(10, 0, 0, 1), 1000, Addr::new(10, 0, 0, 2), 80)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Pipe sender output into receiver and return receiver ACKs.
    fn exchange(s: &mut TcpSender, r: &mut TcpReceiver, now: SimTime) -> Vec<Packet> {
        let mut acks = Vec::new();
        for pkt in s.take_out() {
            r.on_segment(now, &pkt);
            acks.extend(r.take_out());
        }
        acks
    }

    #[test]
    fn lossless_transfer_completes() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(10_000),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let mut now = 0;
        for _ in 0..100 {
            now += 10;
            let acks = exchange(&mut s, &mut r, t(now));
            for a in &acks {
                s.on_segment(t(now), a);
            }
            if s.is_done() {
                break;
            }
        }
        assert!(s.is_done());
        assert!(r.is_done());
        assert_eq!(r.stats.bytes_delivered, 10_000);
        assert_eq!(s.stats.bytes_acked, 10_000);
        assert_eq!(s.stats.retransmissions, 0);
        assert!(s.stats.completed_at.is_some());
    }

    #[test]
    fn initial_burst_respects_cwnd() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1_000_000),
            initial_cwnd: 4.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        assert_eq!(s.take_out().len(), 4, "IW=4 segments");
    }

    #[test]
    fn lost_segment_recovered_by_fast_retransmit() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460 * 10),
            initial_cwnd: 10.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let mut pkts = s.take_out();
        assert!(pkts.len() >= 4);
        // Drop the first data segment; deliver the rest -> dup ACKs.
        pkts.remove(0);
        for p in &pkts {
            r.on_segment(t(5), p);
        }
        let acks = r.take_out();
        for a in &acks {
            s.on_segment(t(10), a);
        }
        assert_eq!(s.stats.fast_retransmits, 1, "3rd dup ACK triggers");
        // The retransmission carries the original (head) sequence number.
        let rtx = s.take_out();
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].tcp_seq(), Some(1));
        // Deliver it; receiver now has everything contiguous.
        r.on_segment(t(15), &rtx[0]);
        let acks = r.take_out();
        let last = acks.last().unwrap();
        if let Header::Tcp { ack, .. } = last.header {
            assert_eq!(seq_dist(1, ack), 1460 * 10); // all data, FIN not yet sent
        }
    }

    #[test]
    fn rto_fires_when_all_acks_lost() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        let first = s.take_out();
        assert!(!first.is_empty());
        let deadline = s.next_event_time().unwrap();
        assert_eq!(deadline, t(1000), "initial RTO is 1s");
        // Nothing arrives; fire the RTO.
        s.on_tick(deadline);
        assert_eq!(s.stats.timeouts, 1);
        let rtx = s.take_out();
        assert!(rtx.iter().any(|p| p.tcp_seq() == Some(1)));
        // Backoff doubled.
        assert_eq!(
            s.next_event_time().unwrap(),
            deadline + SimDuration::from_secs(2)
        );
    }

    #[test]
    fn rto_retransmission_reuses_sequence_number() {
        // This is the Blink-visible signature: same 5-tuple, same seq.
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        let orig = s.take_out();
        s.on_tick(t(1000));
        let rtx = s.take_out();
        assert_eq!(orig[0].tcp_seq(), rtx[0].tcp_seq());
        assert_eq!(orig[0].key, rtx[0].key);
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        let mut r = TcpReceiver::new(key(), 1);
        let p1 = Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000);
        let p2 = Packet::tcp(key(), 1001, 0, TcpFlags::default(), 1000);
        let p3 = Packet::tcp(key(), 2001, 0, TcpFlags::default(), 1000);
        r.on_segment(t(0), &p3);
        r.on_segment(t(1), &p2);
        assert_eq!(r.stats.bytes_delivered, 0);
        assert_eq!(r.stats.out_of_order_segments, 2);
        r.on_segment(t(2), &p1);
        assert_eq!(r.stats.bytes_delivered, 3000);
        assert_eq!(r.rcv_nxt(), 3001);
        // Last ACK acknowledges everything.
        let acks = r.take_out();
        if let Header::Tcp { ack, .. } = acks.last().unwrap().header {
            assert_eq!(ack, 3001);
        }
    }

    #[test]
    fn duplicate_data_detected() {
        let mut r = TcpReceiver::new(key(), 1);
        let p1 = Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000);
        r.on_segment(t(0), &p1);
        r.on_segment(t(1), &p1);
        assert_eq!(r.stats.duplicate_segments, 1);
        assert_eq!(r.stats.bytes_delivered, 1000);
    }

    #[test]
    fn paced_sender_spreads_transmissions() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(14_600),
            app_rate: Some(14_600), // 10 MSS over 1 second
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        // At t=0 nothing is available yet.
        assert!(s.take_out().is_empty());
        let wake = s.next_event_time().expect("pacing wake armed");
        assert!(wake > t(0) && wake <= t(150));
        s.on_tick(t(100)); // 1460 bytes available
        let sent = s.take_out();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].payload, 1460);
    }

    #[test]
    fn receiver_window_throttles_sender() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1_000_000),
            initial_cwnd: 100.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        r.set_advertised_window(2 * 1460); // 2 segments
        s.on_start(t(0));
        let first_burst = s.take_out(); // full IW before any ACK
        assert_eq!(first_burst.len(), 100);
        // Deliver + ACK: sender learns the tiny window.
        for p in &first_burst {
            r.on_segment(t(5), p);
        }
        for a in r.take_out() {
            s.on_segment(t(10), &a);
        }
        // All data ACKed, so in_flight = 0; next burst limited to 2 segments.
        let next = s.take_out();
        assert!(
            next.len() <= 2,
            "window clamp must limit burst, got {}",
            next.len()
        );
    }

    #[test]
    fn unbounded_flow_never_finishes() {
        let cfg = TcpSenderConfig {
            total_bytes: None,
            app_rate: Some(100_000),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        for ms in (100..5000).step_by(100) {
            s.on_tick(t(ms));
            for a in exchange(&mut s, &mut r, t(ms)) {
                s.on_segment(t(ms), &a);
            }
        }
        assert!(!s.is_done());
        assert!(s.stats.bytes_acked > 100_000);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let _ = s.take_out(); // lost
        s.on_tick(t(1000)); // RTO
        let rtx = s.take_out();
        r.on_segment(t(1005), &rtx[0]);
        for a in r.take_out() {
            s.on_segment(t(1010), &a);
        }
        // The only ACK covered a retransmitted segment: no RTT sample.
        assert!(s.srtt().is_none());
    }

    #[test]
    fn fin_completes_stream() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(100),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        for step in 1..20 {
            let now = t(step * 10);
            for a in exchange(&mut s, &mut r, now) {
                s.on_segment(now, &a);
            }
            if s.is_done() {
                break;
            }
        }
        assert!(s.is_done());
        assert!(r.is_done());
        assert_eq!(s.stats.bytes_acked, 100);
        assert_eq!(r.stats.bytes_delivered, 100);
    }

    /// Drive a handshake sender/receiver pair until both settle or `steps`
    /// run out, ticking the sender's deadlines along the way.
    fn run_handshake_pair(
        s: &mut TcpSender,
        r: &mut TcpReceiver,
        steps: u64,
    ) -> (Vec<TcpState>, Vec<TcpState>) {
        let mut s_states = vec![s.state()];
        let mut r_states = vec![r.state()];
        for step in 1..=steps {
            let now = t(step * 10);
            s.on_tick(now);
            for pkt in s.take_out() {
                r.on_segment(now, &pkt);
                if *r_states.last().unwrap() != r.state() {
                    r_states.push(r.state());
                }
            }
            for ack in r.take_out() {
                s.on_segment(now, &ack);
                if *s_states.last().unwrap() != s.state() {
                    s_states.push(s.state());
                }
            }
            if *r_states.last().unwrap() != r.state() {
                r_states.push(r.state());
            }
            if *s_states.last().unwrap() != s.state() {
                s_states.push(s.state());
            }
        }
        (s_states, r_states)
    }

    #[test]
    fn handshake_walks_full_lifecycle() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(2920),
            handshake: true,
            time_wait: SimDuration::from_millis(50),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::listen(key());
        assert_eq!(r.state(), TcpState::Listen);
        s.on_start(t(0));
        assert_eq!(s.state(), TcpState::SynSent);
        let (s_states, r_states) = run_handshake_pair(&mut s, &mut r, 60);
        assert!(s.is_done(), "sender states: {s_states:?}");
        assert_eq!(r.state(), TcpState::Closed, "receiver states: {r_states:?}");
        // The harness samples state between packets, so ESTABLISHED is not
        // observable on the sender: the SYN-ACK completes the handshake AND
        // drains the whole 2-segment flow (plus FIN) in one call.
        assert_eq!(
            s_states,
            vec![
                TcpState::SynSent,
                TcpState::FinWait1,
                TcpState::FinWait2,
                TcpState::TimeWait,
                TcpState::Closed,
            ]
        );
        assert_eq!(
            r_states,
            vec![
                TcpState::Listen,
                TcpState::SynRcvd,
                TcpState::Established,
                TcpState::LastAck,
                TcpState::Closed,
            ]
        );
        // Phantom SYN/FIN bytes are not application data.
        assert_eq!(s.stats.bytes_acked, 2920);
        assert_eq!(r.stats.bytes_delivered, 2920);
    }

    #[test]
    fn lost_syn_is_retransmitted_with_syn_flag() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            handshake: true,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        let syn = s.take_out();
        assert_eq!(syn.len(), 1);
        assert!(syn[0].tcp_flags().unwrap().syn);
        // SYN lost: RTO fires, the retransmission still carries SYN.
        s.on_tick(t(1000));
        assert_eq!(s.stats.timeouts, 1);
        let rtx = s.take_out();
        assert_eq!(rtx.len(), 1);
        assert!(rtx[0].tcp_flags().unwrap().syn);
        assert_eq!(rtx[0].tcp_seq(), Some(1));
    }

    #[test]
    fn duplicate_syn_draws_duplicate_synack() {
        let mut r = TcpReceiver::listen(key());
        let syn = Packet::tcp(
            key(),
            7,
            0,
            TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            0,
        );
        r.on_segment(t(0), &syn);
        let first = r.take_out();
        assert_eq!(first.len(), 1);
        let f = first[0].tcp_flags().unwrap();
        assert!(f.syn && f.ack);
        r.on_segment(t(5), &syn);
        let second = r.take_out();
        assert_eq!(second.len(), 1, "duplicate SYN re-draws the SYN-ACK");
        assert_eq!(r.stats.duplicate_segments, 1);
        assert_eq!(r.state(), TcpState::SynRcvd);
    }

    #[test]
    fn time_wait_expires_via_tick() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(100),
            handshake: true,
            time_wait: SimDuration::from_millis(200),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::listen(key());
        s.on_start(t(0));
        let _ = run_handshake_pair(&mut s, &mut r, 40);
        // run_handshake_pair ticks in 10 ms steps, so TIME-WAIT (200 ms)
        // has expired within 20 steps and the sender is fully closed.
        assert!(s.is_done());
        assert!(s.next_event_time().is_none());
    }
}
