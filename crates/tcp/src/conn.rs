//! Sans-I/O TCP sender and receiver state machines.
//!
//! Both machines consume events (`on_segment`, `on_tick`) and produce
//! outgoing packets into an internal buffer drained with `take_out`, plus a
//! `next_event_time` deadline the host must arm a timer for. No simulator
//! types beyond `Packet`/`SimTime` leak in, so every protocol behavior is
//! unit-testable below without an event loop.

use crate::reno::Reno;
use crate::rtt::RttEstimator;
use crate::seq::{seq_dist, seq_ge, seq_gt, seq_lt};
use dui_netsim::packet::{FlowKey, Header, Packet, TcpFlags};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use std::collections::{BTreeMap, HashMap};

/// Fold a flow key into `d` field by field (src, dst, sport, dport, proto).
pub(crate) fn digest_flow_key(d: &mut StateDigest, key: &FlowKey) {
    d.write_u32(key.src.0);
    d.write_u32(key.dst.0);
    d.write_u16(key.sport);
    d.write_u16(key.dport);
    d.write_u8(key.proto.code());
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct TcpSenderConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Total application bytes to transfer; `None` = unbounded stream.
    pub total_bytes: Option<u64>,
    /// Application pacing in bytes/second; `None` = send as fast as the
    /// window allows. Pacing models app-limited flows (video, interactive),
    /// which dominate the CAIDA-like workloads.
    pub app_rate: Option<u64>,
    /// Initial congestion window (segments).
    pub initial_cwnd: f64,
}

impl Default for TcpSenderConfig {
    fn default() -> Self {
        TcpSenderConfig {
            mss: 1460,
            total_bytes: None,
            app_rate: None,
            initial_cwnd: 10.0,
        }
    }
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SenderStats {
    /// Application bytes acknowledged.
    pub bytes_acked: u64,
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmissions: u64,
    /// Fast retransmissions (3 dup ACKs).
    pub fast_retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// When the FIN was acknowledged, if the flow completed.
    pub completed_at: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    Idle,
    Established,
    FinSent,
    Closed,
}

#[derive(Debug, Clone, Copy)]
struct SegmentRecord {
    sent_at: SimTime,
    retransmitted: bool,
    len: u32,
}

/// The TCP sender: Reno + RFC 6298 timers + fast retransmit.
#[derive(Debug)]
pub struct TcpSender {
    key: FlowKey,
    cfg: TcpSenderConfig,
    cc: Reno,
    rtt: RttEstimator,
    isn: u32,
    snd_una: u32,
    snd_nxt: u32,
    app_sent: u64,
    started_at: SimTime,
    segments: HashMap<u32, SegmentRecord>,
    dupacks: u32,
    rto_deadline: Option<SimTime>,
    pace_deadline: Option<SimTime>,
    peer_rwnd: u32,
    fin_seq: Option<u32>,
    /// NewReno-style recovery: while `Some(r)`, every partial ACK below `r`
    /// immediately retransmits the new head instead of waiting an RTO.
    recovery_until: Option<u32>,
    state: SenderState,
    out: Vec<Packet>,
    /// Statistics.
    pub stats: SenderStats,
}

impl TcpSender {
    /// Create a sender for the forward-direction flow `key`.
    pub fn new(key: FlowKey, cfg: TcpSenderConfig, isn: u32) -> Self {
        let cc = Reno::new(cfg.initial_cwnd);
        TcpSender {
            key,
            cfg,
            cc,
            rtt: RttEstimator::default(),
            isn,
            snd_una: isn,
            snd_nxt: isn,
            app_sent: 0,
            started_at: SimTime::ZERO,
            segments: HashMap::new(),
            dupacks: 0,
            rto_deadline: None,
            pace_deadline: None,
            peer_rwnd: u32::MAX,
            fin_seq: None,
            recovery_until: None,
            state: SenderState::Idle,
            out: Vec::new(),
            stats: SenderStats::default(),
        }
    }

    /// Flow key (forward direction).
    pub fn key(&self) -> FlowKey {
        self.key
    }

    /// Begin transmitting.
    pub fn on_start(&mut self, now: SimTime) {
        assert_eq!(self.state, SenderState::Idle, "already started");
        self.state = SenderState::Established;
        self.started_at = now;
        self.try_send(now);
    }

    /// Flow finished (FIN acknowledged)?
    pub fn is_done(&self) -> bool {
        self.state == SenderState::Closed
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> u32 {
        seq_dist(self.snd_una, self.snd_nxt)
    }

    /// Current congestion window in segments.
    pub fn cwnd_segments(&self) -> u32 {
        self.cc.cwnd_segments()
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Drain outgoing packets.
    pub fn take_out(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.out)
    }

    /// Earliest time this sender needs a tick (RTO or pacing wake).
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.pace_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// A segment for this connection arrived (we only care about ACKs).
    pub fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        let Header::Tcp {
            ack, flags, window, ..
        } = pkt.header
        else {
            return;
        };
        if !flags.ack || self.state == SenderState::Idle || self.state == SenderState::Closed {
            return;
        }
        self.peer_rwnd = window;
        if seq_gt(ack, self.snd_una) {
            // New data acknowledged.
            let advanced = seq_dist(self.snd_una, ack);
            // RTT sample from the segment that started at old snd_una,
            // if it was never retransmitted (Karn's rule).
            if let Some(rec) = self.segments.get(&self.snd_una) {
                if !rec.retransmitted {
                    self.rtt.sample(now.since(rec.sent_at));
                }
            }
            // ACK counting: one on_ack per fully-acked segment.
            let mut cursor = self.snd_una;
            while seq_lt(cursor, ack) {
                let len = self
                    .segments
                    .get(&cursor)
                    .map(|r| r.len)
                    .unwrap_or(self.cfg.mss);
                self.segments.remove(&cursor);
                self.cc.on_ack();
                cursor = cursor.wrapping_add(len.max(1));
            }
            self.snd_una = ack;
            self.dupacks = 0;
            // Don't count the FIN's phantom byte as application data.
            let fin_bytes = match self.fin_seq {
                Some(f) if seq_ge(ack, f.wrapping_add(1)) => 1,
                _ => 0,
            };
            self.stats.bytes_acked = self
                .stats
                .bytes_acked
                .saturating_add(advanced as u64)
                .saturating_sub(fin_bytes);
            if let Some(fin) = self.fin_seq {
                if seq_ge(ack, fin.wrapping_add(1)) {
                    self.state = SenderState::Closed;
                    self.stats.completed_at = Some(now);
                    self.rto_deadline = None;
                    self.pace_deadline = None;
                    return;
                }
            }
            // NewReno partial-ACK handling: if we are recovering from loss
            // and this ACK does not cover the recovery point, the next hole
            // starts at the new head — retransmit it immediately.
            match self.recovery_until {
                Some(r) if seq_lt(ack, r) => {
                    self.retransmit_head(now);
                }
                Some(_) => self.recovery_until = None,
                None => {}
            }
            self.rearm_rto(now);
            self.try_send(now);
        } else if ack == self.snd_una && self.in_flight() > 0 {
            self.dupacks += 1;
            if self.dupacks == 3 {
                self.fast_retransmit(now);
            }
        }
    }

    /// Clock tick: check RTO and pacing deadlines.
    pub fn on_tick(&mut self, now: SimTime) {
        if self.state == SenderState::Closed || self.state == SenderState::Idle {
            return;
        }
        if let Some(d) = self.rto_deadline {
            if now >= d && self.in_flight() > 0 {
                self.on_rto(now);
            }
        }
        if let Some(d) = self.pace_deadline {
            if now >= d {
                self.pace_deadline = None;
                self.try_send(now);
            }
        }
    }

    fn on_rto(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        self.cc.on_timeout();
        self.rtt.on_timeout();
        self.dupacks = 0;
        self.recovery_until = Some(self.snd_nxt);
        self.retransmit_head(now);
        self.rearm_rto(now);
    }

    fn fast_retransmit(&mut self, now: SimTime) {
        self.stats.fast_retransmits += 1;
        self.cc.on_fast_retransmit();
        self.recovery_until = Some(self.snd_nxt);
        self.retransmit_head(now);
        self.rearm_rto(now);
    }

    fn retransmit_head(&mut self, now: SimTime) {
        let head = self.snd_una;
        let Some(rec) = self.segments.get_mut(&head) else {
            return;
        };
        rec.retransmitted = true;
        rec.sent_at = now;
        let len = rec.len;
        self.stats.retransmissions += 1;
        self.stats.segments_sent += 1;
        let is_fin = self.fin_seq == Some(head);
        let flags = TcpFlags {
            fin: is_fin,
            ..TcpFlags::default()
        };
        let payload = if is_fin { 0 } else { len };
        self.out
            .push(Packet::tcp(self.key, head, 0, flags, payload));
    }

    fn rearm_rto(&mut self, now: SimTime) {
        self.rto_deadline = if self.in_flight() > 0 {
            Some(now + self.rtt.rto())
        } else {
            None
        };
    }

    /// Application bytes available to transmit by `now` under pacing.
    fn app_available(&self, now: SimTime) -> u64 {
        let offered = match self.cfg.app_rate {
            None => u64::MAX,
            Some(rate) => {
                let elapsed = now.since(self.started_at).as_secs_f64();
                (rate as f64 * elapsed) as u64
            }
        };
        match self.cfg.total_bytes {
            Some(total) => offered.min(total),
            None => offered,
        }
    }

    fn try_send(&mut self, now: SimTime) {
        if self.state != SenderState::Established {
            return;
        }
        let win_bytes =
            (self.cc.cwnd_segments() as u64 * self.cfg.mss as u64).min(self.peer_rwnd as u64);
        let available = self.app_available(now);
        loop {
            let in_flight = self.in_flight() as u64;
            if in_flight + self.cfg.mss as u64 > win_bytes {
                break; // window-limited
            }
            let remaining_now = available.saturating_sub(self.app_sent);
            let total_remaining = self
                .cfg
                .total_bytes
                .map(|t| t.saturating_sub(self.app_sent))
                .unwrap_or(u64::MAX);
            if total_remaining == 0 {
                // All data queued; send FIN once.
                if self.fin_seq.is_none() {
                    let fin = self.snd_nxt;
                    self.fin_seq = Some(fin);
                    self.segments.insert(
                        fin,
                        SegmentRecord {
                            sent_at: now,
                            retransmitted: false,
                            len: 1, // FIN occupies one sequence number
                        },
                    );
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = SenderState::FinSent;
                    self.stats.segments_sent += 1;
                    self.out.push(Packet::tcp(
                        self.key,
                        fin,
                        0,
                        TcpFlags {
                            fin: true,
                            ..TcpFlags::default()
                        },
                        0,
                    ));
                    self.rearm_rto(now);
                }
                break;
            }
            // Send whole MSS segments only (or the flow's final short
            // tail); partial credit waits for the pacing clock, otherwise
            // ACK-triggered sends would fragment the stream into sub-MSS
            // packets and inflate the packet rate.
            let len = (self.cfg.mss as u64).min(total_remaining) as u32;
            if remaining_now < len as u64 {
                // App-limited: schedule a pacing wake for this segment.
                if let Some(rate) = self.cfg.app_rate {
                    let next_bytes = self.app_sent + len as u64;
                    let at = self.started_at
                        + SimDuration::from_secs_f64(next_bytes as f64 / rate as f64);
                    self.pace_deadline = Some(at.max(now + SimDuration::from_nanos(1)));
                }
                break;
            }
            let seq = self.snd_nxt;
            self.segments.insert(
                seq,
                SegmentRecord {
                    sent_at: now,
                    retransmitted: false,
                    len,
                },
            );
            self.snd_nxt = self.snd_nxt.wrapping_add(len);
            self.app_sent += len as u64;
            self.stats.segments_sent += 1;
            self.out
                .push(Packet::tcp(self.key, seq, 0, TcpFlags::default(), len));
        }
        if self.in_flight() > 0 && self.rto_deadline.is_none() {
            self.rearm_rto(now);
        }
    }

    /// Initial sequence number.
    pub fn isn(&self) -> u32 {
        self.isn
    }

    /// Fold the sender's complete state into `d`: configuration,
    /// congestion control, RTT estimator, sequence space, the
    /// outstanding-segment map (iterated in sorted key order) and
    /// statistics.
    pub fn state_digest(&self, d: &mut StateDigest) {
        digest_flow_key(d, &self.key);
        d.write_u32(self.cfg.mss);
        d.write_opt_u64(self.cfg.total_bytes);
        d.write_opt_u64(self.cfg.app_rate);
        d.write_f64(self.cfg.initial_cwnd);
        self.cc.state_digest(d);
        self.rtt.state_digest(d);
        d.write_u32(self.isn);
        d.write_u32(self.snd_una);
        d.write_u32(self.snd_nxt);
        d.write_u64(self.app_sent);
        d.write_u64(self.started_at.0);
        // HashMap iteration order is arbitrary: sort keys first (sorted).
        let mut seqs: Vec<u32> = self.segments.keys().copied().collect();
        seqs.sort_unstable();
        d.write_len(seqs.len());
        for seq in seqs {
            let rec = &self.segments[&seq];
            d.write_u32(seq);
            d.write_u64(rec.sent_at.0);
            d.write_bool(rec.retransmitted);
            d.write_u32(rec.len);
        }
        d.write_u32(self.dupacks);
        d.write_opt_u64(self.rto_deadline.map(|t| t.0));
        d.write_opt_u64(self.pace_deadline.map(|t| t.0));
        d.write_u32(self.peer_rwnd);
        d.write_opt_u64(self.fin_seq.map(u64::from));
        d.write_opt_u64(self.recovery_until.map(u64::from));
        d.write_u8(match self.state {
            SenderState::Idle => 0,
            SenderState::Established => 1,
            SenderState::FinSent => 2,
            SenderState::Closed => 3,
        });
        d.write_len(self.out.len());
        for p in &self.out {
            p.state_digest(d);
        }
        d.write_u64(self.stats.bytes_acked);
        d.write_u64(self.stats.segments_sent);
        d.write_u64(self.stats.retransmissions);
        d.write_u64(self.stats.fast_retransmits);
        d.write_u64(self.stats.timeouts);
        d.write_opt_u64(self.stats.completed_at.map(|t| t.0));
    }
}

/// Receiver-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReceiverStats {
    /// In-order application bytes delivered.
    pub bytes_delivered: u64,
    /// Segments that arrived already-acknowledged (spurious retransmits or
    /// network duplicates).
    pub duplicate_segments: u64,
    /// Segments buffered out of order.
    pub out_of_order_segments: u64,
    /// When the FIN was consumed.
    pub finished_at: Option<SimTime>,
}

/// The TCP receiver: cumulative ACKs + out-of-order reassembly buffer.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Forward-direction flow key (data flows along `key`, ACKs along
    /// `key.reversed()`).
    key: FlowKey,
    rcv_nxt: u32,
    /// Out-of-order segments keyed by absolute sequence number. Segment
    /// boundaries from a single sender are stable, so exact-key lookup at
    /// `rcv_nxt` drains the buffer without wrap-sensitive ordering.
    ooo: BTreeMap<u32, u32>,
    fin_seq: Option<u32>,
    done: bool,
    advertised_window: u32,
    out: Vec<Packet>,
    /// Statistics.
    pub stats: ReceiverStats,
}

impl TcpReceiver {
    /// Create a receiver expecting first byte `isn`.
    pub fn new(key: FlowKey, isn: u32) -> Self {
        TcpReceiver {
            key,
            rcv_nxt: isn,
            ooo: BTreeMap::new(),
            fin_seq: None,
            done: false,
            advertised_window: 1 << 20,
            out: Vec::new(),
            stats: ReceiverStats::default(),
        }
    }

    /// Override the advertised receive window (used by the endpoint-attack
    /// experiments: a MitM shrinking the window throttles the sender).
    pub fn set_advertised_window(&mut self, w: u32) {
        self.advertised_window = w;
    }

    /// FIN consumed?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Drain outgoing (ACK) packets.
    pub fn take_out(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.out)
    }

    /// A data segment arrived.
    pub fn on_segment(&mut self, now: SimTime, pkt: &Packet) {
        let Header::Tcp { seq, flags, .. } = pkt.header else {
            return;
        };
        if flags.ack && pkt.payload == 0 && !flags.fin {
            return; // pure ACK (e.g. misdelivered); receivers ignore
        }
        let len = if flags.fin { 1 } else { pkt.payload };
        if flags.fin {
            self.fin_seq = Some(seq);
        }
        if len == 0 {
            self.emit_ack();
            return;
        }
        if seq_lt(seq, self.rcv_nxt) {
            // Entirely old segment: duplicate.
            self.stats.duplicate_segments += 1;
            self.emit_ack();
            return;
        }
        if seq == self.rcv_nxt {
            let fin_here = flags.fin;
            self.advance(len, fin_here, now);
            // Drain buffered segments that are now contiguous.
            while let Some(blen) = self.ooo.remove(&self.rcv_nxt) {
                let fin_here = self.fin_seq == Some(self.rcv_nxt);
                self.advance(blen, fin_here, now);
            }
        } else {
            // Future segment: buffer by absolute sequence.
            if self.ooo.insert(seq, len).is_none() {
                self.stats.out_of_order_segments += 1;
            } else {
                self.stats.duplicate_segments += 1;
            }
        }
        self.emit_ack();
    }

    fn advance(&mut self, len: u32, fin: bool, now: SimTime) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(len);
        if fin {
            self.done = true;
            self.stats.finished_at = Some(now);
        } else {
            self.stats.bytes_delivered += len as u64;
        }
    }

    fn emit_ack(&mut self) {
        let ack_pkt = Packet::tcp(
            self.key.reversed(),
            0,
            self.rcv_nxt,
            TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            0,
        );
        let mut p = ack_pkt;
        if let Header::Tcp { window, .. } = &mut p.header {
            *window = self.advertised_window;
        }
        self.out.push(p);
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Fold the receiver's complete state into `d` (the reassembly
    /// buffer is a `BTreeMap`, so iteration order is already stable).
    pub fn state_digest(&self, d: &mut StateDigest) {
        digest_flow_key(d, &self.key);
        d.write_u32(self.rcv_nxt);
        d.write_len(self.ooo.len());
        for (seq, len) in &self.ooo {
            d.write_u32(*seq);
            d.write_u32(*len);
        }
        d.write_opt_u64(self.fin_seq.map(u64::from));
        d.write_bool(self.done);
        d.write_u32(self.advertised_window);
        d.write_len(self.out.len());
        for p in &self.out {
            p.state_digest(d);
        }
        d.write_u64(self.stats.bytes_delivered);
        d.write_u64(self.stats.duplicate_segments);
        d.write_u64(self.stats.out_of_order_segments);
        d.write_opt_u64(self.stats.finished_at.map(|t| t.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dui_netsim::packet::Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(Addr::new(10, 0, 0, 1), 1000, Addr::new(10, 0, 0, 2), 80)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Pipe sender output into receiver and return receiver ACKs.
    fn exchange(s: &mut TcpSender, r: &mut TcpReceiver, now: SimTime) -> Vec<Packet> {
        let mut acks = Vec::new();
        for pkt in s.take_out() {
            r.on_segment(now, &pkt);
            acks.extend(r.take_out());
        }
        acks
    }

    #[test]
    fn lossless_transfer_completes() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(10_000),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let mut now = 0;
        for _ in 0..100 {
            now += 10;
            let acks = exchange(&mut s, &mut r, t(now));
            for a in &acks {
                s.on_segment(t(now), a);
            }
            if s.is_done() {
                break;
            }
        }
        assert!(s.is_done());
        assert!(r.is_done());
        assert_eq!(r.stats.bytes_delivered, 10_000);
        assert_eq!(s.stats.bytes_acked, 10_000);
        assert_eq!(s.stats.retransmissions, 0);
        assert!(s.stats.completed_at.is_some());
    }

    #[test]
    fn initial_burst_respects_cwnd() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1_000_000),
            initial_cwnd: 4.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        assert_eq!(s.take_out().len(), 4, "IW=4 segments");
    }

    #[test]
    fn lost_segment_recovered_by_fast_retransmit() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460 * 10),
            initial_cwnd: 10.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let mut pkts = s.take_out();
        assert!(pkts.len() >= 4);
        // Drop the first data segment; deliver the rest -> dup ACKs.
        pkts.remove(0);
        for p in &pkts {
            r.on_segment(t(5), p);
        }
        let acks = r.take_out();
        for a in &acks {
            s.on_segment(t(10), a);
        }
        assert_eq!(s.stats.fast_retransmits, 1, "3rd dup ACK triggers");
        // The retransmission carries the original (head) sequence number.
        let rtx = s.take_out();
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].tcp_seq(), Some(1));
        // Deliver it; receiver now has everything contiguous.
        r.on_segment(t(15), &rtx[0]);
        let acks = r.take_out();
        let last = acks.last().unwrap();
        if let Header::Tcp { ack, .. } = last.header {
            assert_eq!(seq_dist(1, ack), 1460 * 10); // all data, FIN not yet sent
        }
    }

    #[test]
    fn rto_fires_when_all_acks_lost() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        let first = s.take_out();
        assert!(!first.is_empty());
        let deadline = s.next_event_time().unwrap();
        assert_eq!(deadline, t(1000), "initial RTO is 1s");
        // Nothing arrives; fire the RTO.
        s.on_tick(deadline);
        assert_eq!(s.stats.timeouts, 1);
        let rtx = s.take_out();
        assert!(rtx.iter().any(|p| p.tcp_seq() == Some(1)));
        // Backoff doubled.
        assert_eq!(
            s.next_event_time().unwrap(),
            deadline + SimDuration::from_secs(2)
        );
    }

    #[test]
    fn rto_retransmission_reuses_sequence_number() {
        // This is the Blink-visible signature: same 5-tuple, same seq.
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        let orig = s.take_out();
        s.on_tick(t(1000));
        let rtx = s.take_out();
        assert_eq!(orig[0].tcp_seq(), rtx[0].tcp_seq());
        assert_eq!(orig[0].key, rtx[0].key);
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        let mut r = TcpReceiver::new(key(), 1);
        let p1 = Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000);
        let p2 = Packet::tcp(key(), 1001, 0, TcpFlags::default(), 1000);
        let p3 = Packet::tcp(key(), 2001, 0, TcpFlags::default(), 1000);
        r.on_segment(t(0), &p3);
        r.on_segment(t(1), &p2);
        assert_eq!(r.stats.bytes_delivered, 0);
        assert_eq!(r.stats.out_of_order_segments, 2);
        r.on_segment(t(2), &p1);
        assert_eq!(r.stats.bytes_delivered, 3000);
        assert_eq!(r.rcv_nxt(), 3001);
        // Last ACK acknowledges everything.
        let acks = r.take_out();
        if let Header::Tcp { ack, .. } = acks.last().unwrap().header {
            assert_eq!(ack, 3001);
        }
    }

    #[test]
    fn duplicate_data_detected() {
        let mut r = TcpReceiver::new(key(), 1);
        let p1 = Packet::tcp(key(), 1, 0, TcpFlags::default(), 1000);
        r.on_segment(t(0), &p1);
        r.on_segment(t(1), &p1);
        assert_eq!(r.stats.duplicate_segments, 1);
        assert_eq!(r.stats.bytes_delivered, 1000);
    }

    #[test]
    fn paced_sender_spreads_transmissions() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(14_600),
            app_rate: Some(14_600), // 10 MSS over 1 second
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        s.on_start(t(0));
        // At t=0 nothing is available yet.
        assert!(s.take_out().is_empty());
        let wake = s.next_event_time().expect("pacing wake armed");
        assert!(wake > t(0) && wake <= t(150));
        s.on_tick(t(100)); // 1460 bytes available
        let sent = s.take_out();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].payload, 1460);
    }

    #[test]
    fn receiver_window_throttles_sender() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1_000_000),
            initial_cwnd: 100.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        r.set_advertised_window(2 * 1460); // 2 segments
        s.on_start(t(0));
        let first_burst = s.take_out(); // full IW before any ACK
        assert_eq!(first_burst.len(), 100);
        // Deliver + ACK: sender learns the tiny window.
        for p in &first_burst {
            r.on_segment(t(5), p);
        }
        for a in r.take_out() {
            s.on_segment(t(10), &a);
        }
        // All data ACKed, so in_flight = 0; next burst limited to 2 segments.
        let next = s.take_out();
        assert!(
            next.len() <= 2,
            "window clamp must limit burst, got {}",
            next.len()
        );
    }

    #[test]
    fn unbounded_flow_never_finishes() {
        let cfg = TcpSenderConfig {
            total_bytes: None,
            app_rate: Some(100_000),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        for ms in (100..5000).step_by(100) {
            s.on_tick(t(ms));
            for a in exchange(&mut s, &mut r, t(ms)) {
                s.on_segment(t(ms), &a);
            }
        }
        assert!(!s.is_done());
        assert!(s.stats.bytes_acked > 100_000);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(1460),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        let _ = s.take_out(); // lost
        s.on_tick(t(1000)); // RTO
        let rtx = s.take_out();
        r.on_segment(t(1005), &rtx[0]);
        for a in r.take_out() {
            s.on_segment(t(1010), &a);
        }
        // The only ACK covered a retransmitted segment: no RTT sample.
        assert!(s.srtt().is_none());
    }

    #[test]
    fn fin_completes_stream() {
        let cfg = TcpSenderConfig {
            total_bytes: Some(100),
            ..Default::default()
        };
        let mut s = TcpSender::new(key(), cfg, 1);
        let mut r = TcpReceiver::new(key(), 1);
        s.on_start(t(0));
        for step in 1..20 {
            let now = t(step * 10);
            for a in exchange(&mut s, &mut r, now) {
                s.on_segment(now, &a);
            }
            if s.is_done() {
                break;
            }
        }
        assert!(s.is_done());
        assert!(r.is_done());
        assert_eq!(s.stats.bytes_acked, 100);
        assert_eq!(r.stats.bytes_delivered, 100);
    }
}
