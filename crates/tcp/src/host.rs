//! [`TcpHost`]: adapts the sans-I/O TCP machines to the `dui-netsim`
//! event loop. One host can source and sink many connections (the Blink
//! packet-level experiment runs thousands of flows across a handful of
//! hosts).

use crate::conn::{
    digest_flow_key, ReceiverStats, SenderStats, TcpReceiver, TcpSender, TcpSenderConfig,
};
use dui_netsim::packet::{FlowKey, Header, Packet};
use dui_netsim::prelude::{Ctx, NodeLogic};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use std::any::Any;
use std::collections::HashMap;

/// Sort key for deterministic flow-key iteration.
fn key_rank(k: &FlowKey) -> (u32, u32, u16, u16, u8) {
    (k.src.0, k.dst.0, k.sport, k.dport, k.proto.code())
}

/// Declarative description of a flow a host should source.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Forward-direction 5-tuple (src must be this host's address).
    pub key: FlowKey,
    /// When to start.
    pub start: SimTime,
    /// Sender parameters.
    pub config: TcpSenderConfig,
}

enum Endpoint {
    // Boxed: a sender (congestion state, segment map, timers) is ~3x the
    // size of a receiver, and hosts hold thousands of endpoints.
    Sender(Box<TcpSender>),
    Receiver(TcpReceiver),
}

/// A host that runs TCP senders (from [`FlowSpec`]s) and spawns receivers
/// on demand for incoming flows.
pub struct TcpHost {
    /// Flows to source, sorted by start time at `on_start`.
    pending: Vec<FlowSpec>,
    endpoints: HashMap<FlowKey, Endpoint>,
    /// Order senders were created, for stable iteration in stats.
    order: Vec<FlowKey>,
    /// Sender key -> index in `order` (timer token routing).
    sender_index: HashMap<FlowKey, usize>,
    /// Initial sequence number assigned to each new sender.
    next_isn: u32,
}

/// Timer token asking the host to start newly-due flows.
const TOKEN_WAKE: u64 = 1;
/// Sender-specific tokens are `TOKEN_SENDER_BASE + index` into `order`, so
/// a timer wake only ticks the one sender that asked for it.
const TOKEN_SENDER_BASE: u64 = 2;

impl TcpHost {
    /// A host with no outgoing flows (pure receiver).
    pub fn new() -> Self {
        TcpHost {
            pending: Vec::new(),
            endpoints: HashMap::new(),
            order: Vec::new(),
            sender_index: HashMap::new(),
            next_isn: 1,
        }
    }

    /// A host that will source the given flows.
    pub fn with_flows(mut flows: Vec<FlowSpec>) -> Self {
        flows.sort_by_key(|f| f.start);
        TcpHost {
            pending: flows,
            endpoints: HashMap::new(),
            order: Vec::new(),
            sender_index: HashMap::new(),
            next_isn: 1,
        }
    }

    /// Queue another outgoing flow (must be called before the simulation
    /// reaches `spec.start`).
    pub fn add_flow(&mut self, spec: FlowSpec) {
        self.pending.push(spec);
        self.pending.sort_by_key(|f| f.start);
    }

    /// Sender statistics for a flow sourced by this host.
    pub fn sender_stats(&self, key: &FlowKey) -> Option<SenderStats> {
        match self.endpoints.get(key) {
            Some(Endpoint::Sender(s)) => Some(s.stats),
            _ => None,
        }
    }

    /// Receiver statistics for a flow sunk by this host.
    pub fn receiver_stats(&self, key: &FlowKey) -> Option<ReceiverStats> {
        match self.endpoints.get(key) {
            Some(Endpoint::Receiver(r)) => Some(r.stats),
            _ => None,
        }
    }

    /// All sender stats, in flow creation order.
    pub fn all_sender_stats(&self) -> Vec<(FlowKey, SenderStats)> {
        self.order
            .iter()
            .filter_map(|k| match self.endpoints.get(k) {
                Some(Endpoint::Sender(s)) => Some((*k, s.stats)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes delivered across all receivers on this host.
    pub fn total_bytes_received(&self) -> u64 {
        self.endpoints
            .values()
            .filter_map(|e| match e {
                Endpoint::Receiver(r) => Some(r.stats.bytes_delivered),
                _ => None,
            })
            .sum()
    }

    /// Number of sourced flows that have completed.
    pub fn completed_senders(&self) -> usize {
        self.endpoints
            .values()
            .filter(|e| matches!(e, Endpoint::Sender(s) if s.is_done()))
            .count()
    }

    fn start_due_flows(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        while let Some(spec) = self.pending.first() {
            if spec.start > now {
                break;
            }
            let spec = self.pending.remove(0);
            let isn = self.next_isn;
            // Spread ISNs so sequence numbers do not collide across flows.
            self.next_isn = self.next_isn.wrapping_add(0x0100_0000).wrapping_add(1);
            let mut sender = TcpSender::new(spec.key, spec.config, isn);
            sender.on_start(now);
            for pkt in sender.take_out() {
                ctx.send(pkt);
            }
            let idx = self.order.len();
            Self::arm_for(idx, &sender, ctx);
            self.order.push(spec.key);
            self.sender_index.insert(spec.key, idx);
            self.endpoints.insert(spec.key, Endpoint::Sender(Box::new(sender)));
        }
        if let Some(next) = self.pending.first() {
            let delay = next.start.since(now).max(SimDuration::from_nanos(1));
            ctx.set_timer(delay, TOKEN_WAKE);
        }
    }

    fn arm_for(idx: usize, sender: &TcpSender, ctx: &mut Ctx) {
        if let Some(at) = sender.next_event_time() {
            let delay = at.since(ctx.now()).max(SimDuration::from_nanos(1));
            ctx.set_timer(delay, TOKEN_SENDER_BASE + idx as u64);
        }
    }
}

impl Default for TcpHost {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeLogic for TcpHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.start_due_flows(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let Header::Tcp { seq, flags, .. } = pkt.header else {
            return; // hosts here only speak TCP
        };
        let now = ctx.now();
        // An incoming packet belongs to a sender if its *reverse* key is a
        // sender's forward key (it is an ACK), otherwise it is data for a
        // receiver keyed by the forward direction.
        let fwd = pkt.key;
        let rev = pkt.key.reversed();
        if let Some(Endpoint::Sender(s)) = self.endpoints.get_mut(&rev) {
            s.on_segment(now, &pkt);
            let out = s.take_out();
            let rearm = s.next_event_time();
            let idx = self.sender_index[&rev];
            for p in out {
                ctx.send(p);
            }
            if let Some(at) = rearm {
                let delay = at.since(now).max(SimDuration::from_nanos(1));
                ctx.set_timer(delay, TOKEN_SENDER_BASE + idx as u64);
            }
            return;
        }
        let recv = self.endpoints.entry(fwd).or_insert_with(|| {
            if flags.ack && pkt.payload == 0 && !flags.fin {
                // Stray pure ACK with no matching sender: make a receiver
                // anyway; it will ignore the segment.
                Endpoint::Receiver(TcpReceiver::new(fwd, seq))
            } else {
                Endpoint::Receiver(TcpReceiver::new(fwd, seq))
            }
        });
        if let Endpoint::Receiver(r) = recv {
            r.on_segment(now, &pkt);
            for p in r.take_out() {
                ctx.send(p);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let now = ctx.now();
        if token == TOKEN_WAKE {
            self.start_due_flows(ctx);
            return;
        }
        let idx = (token - TOKEN_SENDER_BASE) as usize;
        let Some(key) = self.order.get(idx).copied() else {
            return;
        };
        if let Some(Endpoint::Sender(s)) = self.endpoints.get_mut(&key) {
            s.on_tick(now);
            let out = s.take_out();
            let rearm = s.next_event_time();
            for p in out {
                ctx.send(p);
            }
            if let Some(at) = rearm {
                let delay = at.since(now).max(SimDuration::from_nanos(1));
                ctx.set_timer(delay, TOKEN_SENDER_BASE + idx as u64);
            }
        }
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_len(self.pending.len());
        for spec in &self.pending {
            digest_flow_key(d, &spec.key);
            d.write_u64(spec.start.0);
            d.write_u32(spec.config.mss);
            d.write_opt_u64(spec.config.total_bytes);
            d.write_opt_u64(spec.config.app_rate);
            d.write_f64(spec.config.initial_cwnd);
        }
        // HashMap iteration order is arbitrary: sort keys first (sorted).
        let mut keys: Vec<FlowKey> = self.endpoints.keys().copied().collect();
        keys.sort_unstable_by_key(key_rank);
        d.write_len(keys.len());
        for k in keys {
            match &self.endpoints[&k] {
                Endpoint::Sender(s) => {
                    d.write_u8(0);
                    s.state_digest(d);
                }
                Endpoint::Receiver(r) => {
                    d.write_u8(1);
                    r.state_digest(d);
                }
            }
        }
        d.write_len(self.order.len());
        for k in &self.order {
            digest_flow_key(d, k);
        }
        d.write_u32(self.next_isn);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
