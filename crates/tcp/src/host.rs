//! [`TcpHost`]: adapts the sans-I/O TCP machines to the `dui-netsim`
//! event loop. One host can source and sink many connections — per-flow
//! state lives in a generational [`FlowPool`], so a host scales to
//! millions of concurrent flows (the `flow-scale` bench stage) with
//! handle-indexed columns instead of a `HashMap` of by-value endpoints.
//!
//! Flow arrivals stream in through a [`FlowSource`]: the host admits the
//! next due flow and re-arms one wake timer for the one after, so a
//! million-flow workload never materializes a million `FlowSpec`s up
//! front. Per-flow timers carry the flow's [`FlowRef`] in the token; a
//! timer that outlives its flow fails the pool's generation check and is
//! dropped (counted, never misdelivered).

use crate::conn::{digest_flow_key, ReceiverStats, SenderStats, TcpSenderConfig, TcpState};
use crate::pool::{FlowKind, FlowPool, FlowRef, StaleFlowRef};
use dui_netsim::packet::{FlowKey, Header, Packet};
use dui_netsim::prelude::{Ctx, NodeLogic};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Declarative description of a flow a host should source.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Forward-direction 5-tuple (src must be this host's address).
    pub key: FlowKey,
    /// When to start.
    pub start: SimTime,
    /// Sender parameters.
    pub config: TcpSenderConfig,
}

/// A stream of flow arrivals, consumed in nondecreasing start order.
///
/// The host pulls one due flow at a time ([`FlowSource::pop_due`]) and
/// arms a single wake timer for the next arrival, so sources can generate
/// flows lazily — `dui-flowgen`'s `FlowStream` derives each arrival from
/// the seeded RNG on demand instead of materializing the whole workload.
pub trait FlowSource: Send {
    /// Remove and return the next flow if it starts at or before `now`.
    /// Implementations must yield flows in nondecreasing `start` order.
    fn pop_due(&mut self, now: SimTime) -> Option<FlowSpec>;

    /// Start time of the next (not yet admitted) flow, if any.
    fn peek_start(&self) -> Option<SimTime>;

    /// Add a flow (used by harnesses that script arrivals). Sources that
    /// derive arrivals generatively may refuse.
    fn inject(&mut self, _spec: FlowSpec) -> Result<(), String> {
        Err("this flow source does not support injection".into())
    }

    /// Fold the source's remaining-arrivals state into `d`.
    fn state_digest(&self, d: &mut StateDigest);

    /// Materialize every not-yet-admitted flow for checkpointing.
    /// `None` (the default) marks the source — and thus the host — as
    /// not restorable.
    fn remaining(&self) -> Option<Vec<FlowSpec>> {
        None
    }
}

fn digest_flow_spec(d: &mut StateDigest, spec: &FlowSpec) {
    digest_flow_key(d, &spec.key);
    d.write_u64(spec.start.0);
    d.write_u32(spec.config.mss);
    d.write_opt_u64(spec.config.total_bytes);
    d.write_opt_u64(spec.config.app_rate);
    d.write_f64(spec.config.initial_cwnd);
    d.write_bool(spec.config.handshake);
    d.write_u64(spec.config.time_wait.as_nanos());
}

/// The materialized [`FlowSource`]: a start-sorted queue of specs.
#[derive(Default)]
pub struct VecSource {
    pending: VecDeque<FlowSpec>,
}

impl VecSource {
    /// Source that will yield `flows` (sorted by start time here).
    pub fn new(mut flows: Vec<FlowSpec>) -> Self {
        flows.sort_by_key(|f| f.start);
        VecSource {
            pending: flows.into(),
        }
    }
}

impl FlowSource for VecSource {
    fn pop_due(&mut self, now: SimTime) -> Option<FlowSpec> {
        if self.pending.front()?.start <= now {
            self.pending.pop_front()
        } else {
            None
        }
    }

    fn peek_start(&self) -> Option<SimTime> {
        self.pending.front().map(|f| f.start)
    }

    fn inject(&mut self, spec: FlowSpec) -> Result<(), String> {
        // Insert after every earlier-or-equal start so ties keep insertion
        // order, matching the old stable sort_by_key behavior.
        let at = self.pending.partition_point(|f| f.start <= spec.start);
        self.pending.insert(at, spec);
        Ok(())
    }

    fn state_digest(&self, d: &mut StateDigest) {
        d.write_len(self.pending.len());
        for spec in &self.pending {
            digest_flow_spec(d, spec);
        }
    }

    fn remaining(&self) -> Option<Vec<FlowSpec>> {
        Some(self.pending.iter().cloned().collect())
    }
}

/// Host policy knobs. The default reproduces the original host exactly:
/// no backlog cap, no eviction, no half-open reaper.
#[derive(Debug, Clone, Default)]
pub struct TcpHostConfig {
    /// Maximum simultaneous half-open (SYN-RCVD) connections; further
    /// SYNs are dropped (counted in `syn_dropped`). `None` = unbounded.
    pub listen_backlog: Option<usize>,
    /// Free a flow's pool slot as soon as it reaches CLOSED, folding its
    /// stats into the host aggregates. Required for long churn runs —
    /// without it every flow that ever existed keeps its slot.
    pub evict_closed: bool,
    /// Evict receivers still in SYN-RCVD after this long (SYN-flood
    /// defense / realism knob). `None` = half-open connections persist.
    pub syn_rcvd_timeout: Option<SimDuration>,
}

/// Aggregate host counters: lifecycle transitions observed across all
/// flows plus the stats of evicted (no longer pooled) flows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Flows admitted from the source (senders created).
    pub admitted: u64,
    /// Pool slots freed by eviction (closed flows + reaped half-opens).
    pub evictions: u64,
    /// Timer tokens that arrived after their flow was evicted.
    pub stale_wakes: u64,
    /// SYNs dropped by the `listen_backlog` cap.
    pub syn_dropped: u64,
    /// Half-open connections reaped by `syn_rcvd_timeout`.
    pub syn_timeouts: u64,
    /// Current half-open (SYN-RCVD) connections.
    pub synrcvd_live: u64,
    /// Peak simultaneous half-open connections.
    pub synrcvd_peak: u64,
    /// Total connections that ever entered SYN-RCVD.
    pub synrcvd_total: u64,
    /// Connections that entered TIME-WAIT.
    pub timewait_entered: u64,
    /// Passive-open handshakes completed (SYN-RCVD → ESTABLISHED).
    pub handshakes_completed: u64,
    /// Evicted senders that had completed their transfer.
    pub evicted_completed_senders: u64,
    /// `bytes_acked` carried by evicted senders.
    pub evicted_bytes_acked: u64,
    /// `bytes_delivered` carried by evicted receivers.
    pub evicted_bytes_received: u64,
    /// Evicted receivers that had consumed their FIN.
    pub evicted_done_receivers: u64,
}

impl HostCounters {
    fn state_digest(&self, d: &mut StateDigest) {
        for v in [
            self.admitted,
            self.evictions,
            self.stale_wakes,
            self.syn_dropped,
            self.syn_timeouts,
            self.synrcvd_live,
            self.synrcvd_peak,
            self.synrcvd_total,
            self.timewait_entered,
            self.handshakes_completed,
            self.evicted_completed_senders,
            self.evicted_bytes_acked,
            self.evicted_bytes_received,
            self.evicted_done_receivers,
        ] {
            d.write_u64(v);
        }
    }
}

/// A host that runs TCP senders (from a [`FlowSource`]) and spawns
/// receivers on demand for incoming flows. All per-flow state lives in a
/// [`FlowPool`]; `by_key` is a lookup index only and is never iterated
/// (pool slot order is the canonical iteration order).
pub struct TcpHost {
    source: Box<dyn FlowSource>,
    pool: FlowPool,
    /// Forward key -> live pool handle. Lookup only — never iterated.
    by_key: HashMap<FlowKey, FlowRef>,
    /// Sender creation order, for stable stats iteration.
    order: Vec<FlowKey>,
    cfg: TcpHostConfig,
    agg: HostCounters,
    /// Initial sequence number assigned to each new sender.
    next_isn: u32,
}

/// Unwrap a pool call made through a handle the host owns.
///
/// Host handles are live by construction — they come out of `by_key`
/// (whose entries are removed before any `free`) or were inserted in
/// the same event — so a stale ref here is a host logic bug, not an
/// input condition.
fn live<T>(res: Result<T, StaleFlowRef>) -> T {
    // lint: allow(panic): host-owned handles are live by construction
    res.expect("host-owned flow handle is live")
}

/// Timer token asking the host to start newly-due flows.
const TOKEN_WAKE: u64 = 1;
/// Per-flow tokens are `TOKEN_FLOW_BASE + FlowRef::as_u64()`: the token
/// carries the slot *and its generation*, so a wake for an evicted flow
/// fails the pool's generation check instead of ticking a recycled slot.
const TOKEN_FLOW_BASE: u64 = 2;

impl TcpHost {
    /// A host with no outgoing flows (pure receiver).
    pub fn new() -> Self {
        Self::with_source(Box::new(VecSource::default()))
    }

    /// A host that will source the given flows.
    pub fn with_flows(flows: Vec<FlowSpec>) -> Self {
        Self::with_source(Box::new(VecSource::new(flows)))
    }

    /// A host fed by a streaming flow source.
    pub fn with_source(source: Box<dyn FlowSource>) -> Self {
        TcpHost {
            source,
            pool: FlowPool::new(),
            by_key: HashMap::new(),
            order: Vec::new(),
            cfg: TcpHostConfig::default(),
            agg: HostCounters::default(),
            next_isn: 1,
        }
    }

    /// Set host policy (backlog, eviction, half-open reaper). Call before
    /// the simulation starts.
    pub fn set_config(&mut self, cfg: TcpHostConfig) {
        self.cfg = cfg;
    }

    /// Queue another outgoing flow (must be called before the simulation
    /// reaches `spec.start`, and the source must support injection —
    /// [`VecSource`] does).
    pub fn add_flow(&mut self, spec: FlowSpec) {
        self.source
            .inject(spec)
            // lint: allow(panic): documented contract — add_flow requires an injectable source
            .expect("flow source refused injection");
    }

    /// Sender statistics for a flow sourced by this host (`None` if the
    /// flow never existed or was evicted).
    pub fn sender_stats(&self, key: &FlowKey) -> Option<SenderStats> {
        let r = *self.by_key.get(key)?;
        match self.pool.kind(r).ok()? {
            FlowKind::Sender => self.pool.sender_stats(r).ok(),
            FlowKind::Receiver => None,
        }
    }

    /// Receiver statistics for a flow sunk by this host.
    pub fn receiver_stats(&self, key: &FlowKey) -> Option<ReceiverStats> {
        let r = *self.by_key.get(key)?;
        match self.pool.kind(r).ok()? {
            FlowKind::Receiver => self.pool.receiver_stats(r).ok(),
            FlowKind::Sender => None,
        }
    }

    /// All live sender stats, in flow creation order (evicted flows are
    /// in the [`TcpHost::counters`] aggregates instead).
    pub fn all_sender_stats(&self) -> Vec<(FlowKey, SenderStats)> {
        self.order
            .iter()
            .filter_map(|k| Some((*k, self.sender_stats(k)?)))
            .collect()
    }

    /// Total bytes delivered across all receivers on this host,
    /// including evicted ones.
    pub fn total_bytes_received(&self) -> u64 {
        let live: u64 = self
            .pool
            .iter_refs()
            .filter_map(|r| self.pool.receiver_stats(r).ok())
            .map(|s| s.bytes_delivered)
            .sum();
        live + self.agg.evicted_bytes_received
    }

    /// Number of sourced flows that have completed (including evicted).
    pub fn completed_senders(&self) -> usize {
        let live = self
            .pool
            .iter_refs()
            .filter(|&r| {
                self.pool.kind(r) == Ok(FlowKind::Sender)
                    && self.pool.state(r) == Ok(TcpState::Closed)
            })
            .count();
        live + self.agg.evicted_completed_senders as usize
    }

    /// Aggregate lifecycle counters.
    pub fn counters(&self) -> &HostCounters {
        &self.agg
    }

    /// The flow pool (occupancy/high-water inspection).
    pub fn pool(&self) -> &FlowPool {
        &self.pool
    }

    fn flow_token(r: FlowRef) -> u64 {
        TOKEN_FLOW_BASE.wrapping_add(r.as_u64())
    }

    fn start_due_flows(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        while let Some(spec) = self.source.pop_due(now) {
            let isn = self.next_isn;
            // Spread ISNs so sequence numbers do not collide across flows.
            self.next_isn = self.next_isn.wrapping_add(0x0100_0000).wrapping_add(1);
            let r = self.pool.insert_sender(spec.key, spec.config, isn);
            self.agg.admitted += 1;
            live(self.pool.on_start(r, now));
            for pkt in live(self.pool.take_out(r)) {
                ctx.send(pkt);
            }
            self.arm_for(r, ctx);
            self.order.push(spec.key);
            self.by_key.insert(spec.key, r);
        }
        if let Some(next) = self.source.peek_start() {
            let delay = next.since(now).max(SimDuration::from_nanos(1));
            ctx.set_timer(delay, TOKEN_WAKE);
        }
    }

    fn arm_for(&self, r: FlowRef, ctx: &mut Ctx) {
        if let Ok(Some(at)) = self.pool.next_event_time(r) {
            let delay = at.since(ctx.now()).max(SimDuration::from_nanos(1));
            ctx.set_timer(delay, Self::flow_token(r));
        }
    }

    /// Update handshake counters for an observed state transition.
    fn note_transition(&mut self, pre: TcpState, post: TcpState) {
        if pre == post {
            return;
        }
        if post == TcpState::SynRcvd {
            self.agg.synrcvd_total += 1;
            self.agg.synrcvd_live += 1;
            self.agg.synrcvd_peak = self.agg.synrcvd_peak.max(self.agg.synrcvd_live);
        }
        if pre == TcpState::SynRcvd {
            self.agg.synrcvd_live = self.agg.synrcvd_live.saturating_sub(1);
            if post != TcpState::Closed {
                self.agg.handshakes_completed += 1;
            }
        }
        if post == TcpState::TimeWait {
            self.agg.timewait_entered += 1;
        }
    }

    /// Evict `r` if policy says so and it is fully CLOSED, folding its
    /// stats into the aggregates and recycling the slot.
    fn maybe_evict(&mut self, r: FlowRef) {
        if !self.cfg.evict_closed || self.pool.state(r) != Ok(TcpState::Closed) {
            return;
        }
        let key = live(self.pool.key(r));
        match live(self.pool.kind(r)) {
            FlowKind::Sender => {
                let stats = live(self.pool.sender_stats(r));
                if stats.completed_at.is_some() {
                    self.agg.evicted_completed_senders += 1;
                }
                self.agg.evicted_bytes_acked += stats.bytes_acked;
            }
            FlowKind::Receiver => {
                let stats = live(self.pool.receiver_stats(r));
                self.agg.evicted_bytes_received += stats.bytes_delivered;
                self.agg.evicted_done_receivers += 1;
            }
        }
        self.by_key.remove(&key);
        live(self.pool.free(r));
        self.agg.evictions += 1;
    }

    /// Deliver one event-side effect bundle for `r`: pump its output,
    /// re-arm its timer, account the state transition, maybe evict.
    fn finish_event(&mut self, r: FlowRef, pre: TcpState, ctx: &mut Ctx) {
        for p in live(self.pool.take_out(r)) {
            ctx.send(p);
        }
        self.arm_for(r, ctx);
        let post = live(self.pool.state(r));
        self.note_transition(pre, post);
        self.maybe_evict(r);
    }
}

impl Default for TcpHost {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeLogic for TcpHost {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.start_due_flows(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx, pkt: Packet) {
        let Header::Tcp { seq, flags, .. } = pkt.header else {
            return; // hosts here only speak TCP
        };
        let now = ctx.now();
        // An incoming packet belongs to a sender if its *reverse* key is a
        // sender's forward key (it is an ACK), otherwise it is data for a
        // receiver keyed by the forward direction.
        let fwd = pkt.key;
        let rev = pkt.key.reversed();
        if let Some(&r) = self.by_key.get(&rev) {
            if self.pool.kind(r) == Ok(FlowKind::Sender) {
                let pre = live(self.pool.state(r));
                live(self.pool.on_segment(r, now, &pkt));
                self.finish_event(r, pre, ctx);
                return;
            }
        }
        let r = match self.by_key.get(&fwd) {
            Some(&r) => r,
            None => {
                let r = if flags.syn {
                    // Passive open: a SYN creates a listener walking the
                    // full lifecycle — subject to the backlog cap.
                    if let Some(backlog) = self.cfg.listen_backlog {
                        if self.agg.synrcvd_live as usize >= backlog {
                            self.agg.syn_dropped += 1;
                            return;
                        }
                    }
                    let r = self.pool.insert_listener(fwd);
                    if let Some(timeout) = self.cfg.syn_rcvd_timeout {
                        ctx.set_timer(timeout, Self::flow_token(r));
                    }
                    r
                } else {
                    // Data (or a stray pure ACK) with no matching sender:
                    // spawn a handshake-less receiver expecting `seq`.
                    self.pool.insert_receiver(fwd, seq)
                };
                self.by_key.insert(fwd, r);
                r
            }
        };
        if self.pool.kind(r) != Ok(FlowKind::Receiver) {
            return;
        }
        let pre = live(self.pool.state(r));
        live(self.pool.on_segment(r, now, &pkt));
        self.finish_event(r, pre, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == TOKEN_WAKE {
            self.start_due_flows(ctx);
            return;
        }
        let now = ctx.now();
        let r = FlowRef::from_u64(token.wrapping_sub(TOKEN_FLOW_BASE));
        match self.pool.kind(r) {
            Err(_) => {
                // The flow this timer belonged to was evicted; the
                // generation mismatch proves the wake is stale.
                self.agg.stale_wakes += 1;
            }
            Ok(FlowKind::Sender) => {
                let pre = live(self.pool.state(r));
                live(self.pool.on_tick(r, now));
                self.finish_event(r, pre, ctx);
            }
            Ok(FlowKind::Receiver) => {
                // The only receiver timer is the SYN-RCVD reaper.
                if self.pool.state(r) == Ok(TcpState::SynRcvd) {
                    let key = live(self.pool.key(r));
                    self.by_key.remove(&key);
                    live(self.pool.free(r));
                    self.agg.synrcvd_live = self.agg.synrcvd_live.saturating_sub(1);
                    self.agg.syn_timeouts += 1;
                    self.agg.evictions += 1;
                }
            }
        }
    }

    fn state_digest(&self, d: &mut StateDigest) {
        self.source.state_digest(d);
        // Pool digest walks slots in handle order — already canonical, no
        // key sorting.
        self.pool.state_digest(d);
        d.write_len(self.order.len());
        for k in &self.order {
            digest_flow_key(d, k);
        }
        d.write_u32(self.next_isn);
        self.agg.state_digest(d);
        d.write_opt_u64(self.cfg.listen_backlog.map(|v| v as u64));
        d.write_bool(self.cfg.evict_closed);
        d.write_opt_u64(self.cfg.syn_rcvd_timeout.map(|t| t.as_nanos()));
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // Restorable only when the source can materialize its remainder
        // (VecSource can; generative streams opt out) and every output
        // queue is drained (always true between events).
        let remaining = self.source.remaining()?;
        let pool = self.pool.to_bytes().ok()?;
        let mut b = Vec::new();
        b.extend_from_slice(&(remaining.len() as u32).to_le_bytes());
        for spec in &remaining {
            push_spec(&mut b, spec);
        }
        b.extend_from_slice(&(pool.len() as u64).to_le_bytes());
        b.extend_from_slice(&pool);
        b.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for k in &self.order {
            push_key(&mut b, k);
        }
        b.extend_from_slice(&self.next_isn.to_le_bytes());
        for v in [
            self.agg.admitted,
            self.agg.evictions,
            self.agg.stale_wakes,
            self.agg.syn_dropped,
            self.agg.syn_timeouts,
            self.agg.synrcvd_live,
            self.agg.synrcvd_peak,
            self.agg.synrcvd_total,
            self.agg.timewait_entered,
            self.agg.handshakes_completed,
            self.agg.evicted_completed_senders,
            self.agg.evicted_bytes_acked,
            self.agg.evicted_bytes_received,
            self.agg.evicted_done_receivers,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        push_opt_u64(&mut b, self.cfg.listen_backlog.map(|v| v as u64));
        b.push(u8::from(self.cfg.evict_closed));
        push_opt_u64(&mut b, self.cfg.syn_rcvd_timeout.map(|t| t.as_nanos()));
        Some(b)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut at = 0usize;
        let nspec = read_u32(bytes, &mut at)? as usize;
        let mut specs = Vec::with_capacity(nspec);
        for _ in 0..nspec {
            specs.push(read_spec(bytes, &mut at)?);
        }
        let plen = read_u64(bytes, &mut at)? as usize;
        let pslice = bytes
            .get(at..at + plen)
            .ok_or("truncated tcp host state")?;
        at += plen;
        let pool = FlowPool::from_bytes(pslice)?;
        let norder = read_u32(bytes, &mut at)? as usize;
        let mut order = Vec::with_capacity(norder);
        for _ in 0..norder {
            order.push(read_key(bytes, &mut at)?);
        }
        let next_isn = read_u32(bytes, &mut at)?;
        let mut agg = HostCounters::default();
        for slot in [
            &mut agg.admitted,
            &mut agg.evictions,
            &mut agg.stale_wakes,
            &mut agg.syn_dropped,
            &mut agg.syn_timeouts,
            &mut agg.synrcvd_live,
            &mut agg.synrcvd_peak,
            &mut agg.synrcvd_total,
            &mut agg.timewait_entered,
            &mut agg.handshakes_completed,
            &mut agg.evicted_completed_senders,
            &mut agg.evicted_bytes_acked,
            &mut agg.evicted_bytes_received,
            &mut agg.evicted_done_receivers,
        ] {
            *slot = read_u64(bytes, &mut at)?;
        }
        let listen_backlog = read_opt_u64(bytes, &mut at)?.map(|v| v as usize);
        let evict_closed = read_u8(bytes, &mut at)? != 0;
        let syn_rcvd_timeout = read_opt_u64(bytes, &mut at)?.map(SimDuration);
        if at != bytes.len() {
            return Err("trailing bytes in tcp host state".into());
        }
        // Rebuild the lookup index from the restored pool.
        let mut by_key = HashMap::new();
        for r in pool.iter_refs() {
            by_key.insert(live(pool.key(r)), r);
        }
        self.source = Box::new(VecSource::new(specs));
        self.pool = pool;
        self.by_key = by_key;
        self.order = order;
        self.next_isn = next_isn;
        self.agg = agg;
        self.cfg = TcpHostConfig {
            listen_backlog,
            evict_closed,
            syn_rcvd_timeout,
        };
        Ok(())
    }

    fn export_metrics(&self, reg: &mut dui_telemetry::registry::Registry) {
        let g = reg.gauge("tcp.pool.occupancy");
        reg.observe(g, self.pool.live() as f64);
        let g = reg.gauge("tcp.pool.high_water");
        reg.observe(g, self.pool.high_water() as f64);
        let c = reg.counter("tcp.pool.evictions");
        reg.add(c, self.agg.evictions);
        let c = reg.counter("tcp.pool.stale_refs");
        reg.add(c, self.agg.stale_wakes);
        let c = reg.counter("tcp.pool.recycled");
        reg.add(c, self.pool.recycled());
        let g = reg.gauge("tcp.handshake.synrcvd_live");
        reg.observe(g, self.agg.synrcvd_live as f64);
        let g = reg.gauge("tcp.handshake.synrcvd_peak");
        reg.observe(g, self.agg.synrcvd_peak as f64);
        let c = reg.counter("tcp.handshake.synrcvd");
        reg.add(c, self.agg.synrcvd_total);
        let c = reg.counter("tcp.handshake.timewait");
        reg.add(c, self.agg.timewait_entered);
        let c = reg.counter("tcp.handshake.completed");
        reg.add(c, self.agg.handshakes_completed);
        let c = reg.counter("tcp.handshake.syn_dropped");
        reg.add(c, self.agg.syn_dropped);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn push_key(b: &mut Vec<u8>, k: &FlowKey) {
    b.extend_from_slice(&k.src.0.to_le_bytes());
    b.extend_from_slice(&k.dst.0.to_le_bytes());
    b.extend_from_slice(&k.sport.to_le_bytes());
    b.extend_from_slice(&k.dport.to_le_bytes());
    b.push(k.proto.code());
}

fn push_opt_u64(b: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => b.push(0),
        Some(v) => {
            b.push(1);
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn push_spec(b: &mut Vec<u8>, spec: &FlowSpec) {
    push_key(b, &spec.key);
    b.extend_from_slice(&spec.start.0.to_le_bytes());
    b.extend_from_slice(&spec.config.mss.to_le_bytes());
    push_opt_u64(b, spec.config.total_bytes);
    push_opt_u64(b, spec.config.app_rate);
    b.extend_from_slice(&spec.config.initial_cwnd.to_bits().to_le_bytes());
    b.push(u8::from(spec.config.handshake));
    b.extend_from_slice(&spec.config.time_wait.as_nanos().to_le_bytes());
}

fn read_u8(b: &[u8], at: &mut usize) -> Result<u8, String> {
    let v = *b.get(*at).ok_or("truncated tcp host state")?;
    *at += 1;
    Ok(v)
}

fn read_u16(b: &[u8], at: &mut usize) -> Result<u16, String> {
    let s = b.get(*at..*at + 2).ok_or("truncated tcp host state")?;
    *at += 2;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn read_u32(b: &[u8], at: &mut usize) -> Result<u32, String> {
    let s = b.get(*at..*at + 4).ok_or("truncated tcp host state")?;
    *at += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn read_u64(b: &[u8], at: &mut usize) -> Result<u64, String> {
    let s = b.get(*at..*at + 8).ok_or("truncated tcp host state")?;
    *at += 8;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

fn read_opt_u64(b: &[u8], at: &mut usize) -> Result<Option<u64>, String> {
    match read_u8(b, at)? {
        0 => Ok(None),
        1 => Ok(Some(read_u64(b, at)?)),
        t => Err(format!("bad option tag {t}")),
    }
}

fn read_key(b: &[u8], at: &mut usize) -> Result<FlowKey, String> {
    use dui_netsim::packet::{Addr, Proto};
    let src = Addr(read_u32(b, at)?);
    let dst = Addr(read_u32(b, at)?);
    let sport = read_u16(b, at)?;
    let dport = read_u16(b, at)?;
    let proto = Proto::from_code(read_u8(b, at)?).ok_or("bad proto code")?;
    if proto != Proto::Tcp {
        return Err("tcp host key is not TCP".into());
    }
    Ok(FlowKey::tcp(src, sport, dst, dport))
}

fn read_spec(b: &[u8], at: &mut usize) -> Result<FlowSpec, String> {
    let key = read_key(b, at)?;
    let start = SimTime(read_u64(b, at)?);
    let mss = read_u32(b, at)?;
    let total_bytes = read_opt_u64(b, at)?;
    let app_rate = read_opt_u64(b, at)?;
    let initial_cwnd = f64::from_bits(read_u64(b, at)?);
    let handshake = read_u8(b, at)? != 0;
    let time_wait = SimDuration(read_u64(b, at)?);
    Ok(FlowSpec {
        key,
        start,
        config: TcpSenderConfig {
            mss,
            total_bytes,
            app_rate,
            initial_cwnd,
            handshake,
            time_wait,
        },
    })
}
