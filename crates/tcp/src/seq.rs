//! Wrapping 32-bit sequence-number arithmetic (RFC 793 style).
//!
//! TCP sequence numbers live on a mod-2³² circle; comparisons are defined
//! relative to a window of less than 2³¹. Blink's retransmission detector
//! and our receiver both rely on these comparisons being wrap-safe.

/// `a < b` on the sequence circle.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` on the sequence circle.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` on the sequence circle.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` on the sequence circle.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    a == b || seq_gt(a, b)
}

/// Forward distance from `a` to `b` (how many bytes ahead `b` is of `a`).
#[inline]
pub fn seq_dist(a: u32, b: u32) -> u32 {
    b.wrapping_sub(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(seq_le(2, 2));
        assert!(seq_gt(5, 3));
        assert!(seq_ge(5, 5));
    }

    #[test]
    fn wrapping_ordering() {
        let near_max = u32::MAX - 10;
        let wrapped = 5u32;
        assert!(seq_lt(near_max, wrapped), "wrapped value is 'after'");
        assert!(seq_gt(wrapped, near_max));
    }

    #[test]
    fn distance_wraps() {
        assert_eq!(seq_dist(10, 20), 10);
        assert_eq!(seq_dist(u32::MAX, 4), 5);
    }

    #[test]
    fn antisymmetric() {
        for (a, b) in [(0u32, 1u32), (100, 200), (u32::MAX, 0), (u32::MAX - 5, 10)] {
            assert_ne!(seq_lt(a, b), seq_lt(b, a));
        }
    }
}
