//! # dui-tcp
//!
//! A compact TCP model: Reno congestion control, Jacobson/Karn RTT
//! estimation, fast retransmit and RTO with exponential backoff, cumulative
//! ACKs with out-of-order buffering.
//!
//! Two roles in the `dui` reproduction of *"(Self) Driving Under the
//! Influence"* (HotNets'19):
//!
//! 1. **Signal source for Blink** (§3.1): on a real path failure, every TCP
//!    flow starts retransmitting on RTO — exactly the data-plane signal
//!    Blink infers failures from, and the signal the attack forges.
//! 2. **Baseline for PCC** (§4.2): PCC's paper positions it against
//!    hard-coded-rule TCP; our PCC experiments compare against this Reno.
//!
//! The connection state machines are *sans-I/O*: they consume segments and
//! clock ticks, and emit outgoing packets into an internal queue plus a
//! "next timer deadline". [`host::TcpHost`] adapts them to the
//! `dui-netsim` event loop. This keeps the protocol logic directly
//! unit-testable.
//!
//! Simplifications (documented per DESIGN.md): no three-way handshake (the
//! systems under study act on data segments), segment-granularity windows
//! (MSS-sized), no SACK/Nagle/delayed-ACK. None of these affect the
//! retransmission *timing* signals the paper's attacks target.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conn;
pub mod host;
pub mod reno;
pub mod rtt;
pub mod seq;

pub use conn::{TcpReceiver, TcpSender, TcpSenderConfig};
pub use host::{FlowSpec, TcpHost};
pub use reno::Reno;
pub use rtt::RttEstimator;
