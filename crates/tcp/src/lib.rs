//! # dui-tcp
//!
//! A compact TCP model: Reno congestion control, Jacobson/Karn RTT
//! estimation, fast retransmit and RTO with exponential backoff, cumulative
//! ACKs with out-of-order buffering.
//!
//! Two roles in the `dui` reproduction of *"(Self) Driving Under the
//! Influence"* (HotNets'19):
//!
//! 1. **Signal source for Blink** (§3.1): on a real path failure, every TCP
//!    flow starts retransmitting on RTO — exactly the data-plane signal
//!    Blink infers failures from, and the signal the attack forges.
//! 2. **Baseline for PCC** (§4.2): PCC's paper positions it against
//!    hard-coded-rule TCP; our PCC experiments compare against this Reno.
//!
//! The connection state machines are *sans-I/O*: they consume segments and
//! clock ticks, and emit outgoing packets into an internal queue plus a
//! "next timer deadline". [`host::TcpHost`] adapts them to the
//! `dui-netsim` event loop. This keeps the protocol logic directly
//! unit-testable.
//!
//! Per-flow state is stored column-wise in a generational
//! [`pool::FlowPool`] (same handle contract as `dui-netsim`'s
//! `PacketArena`): 8-byte [`pool::FlowRef`] handles, an intrusive free
//! list, and typed stale-handle errors. The protocol cores are written
//! once against column *views*, so the standalone [`TcpSender`] /
//! [`TcpReceiver`] and the million-flow pool run byte-identical logic.
//!
//! Connections walk the full RFC 9293 lifecycle when
//! [`TcpSenderConfig::handshake`] is set — LISTEN/SYN-RCVD passive open,
//! FIN/TIME-WAIT teardown — which unlocks SYN-flood and churn workloads.
//! With `handshake` off (the default) flows behave exactly as the
//! original handshake-less model: the systems under study act on data
//! segments, and retransmission *timing* signals are unaffected.
//! Remaining simplifications (documented per DESIGN.md):
//! segment-granularity windows (MSS-sized), no SACK/Nagle/delayed-ACK.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conn;
pub mod host;
pub mod pool;
pub mod reno;
pub mod rtt;
pub mod seq;

pub use conn::{TcpReceiver, TcpSender, TcpSenderConfig, TcpState};
pub use host::{FlowSource, FlowSpec, HostCounters, TcpHost, TcpHostConfig, VecSource};
pub use pool::{FlowKind, FlowPool, FlowRef, StaleFlowRef};
pub use reno::Reno;
pub use rtt::RttEstimator;
