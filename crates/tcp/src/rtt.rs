//! RTT estimation and retransmission timeout per RFC 6298 (Jacobson /
//! Karn).
//!
//! The RTO produced here is security-relevant: the paper's §5 Blink
//! countermeasure checks whether observed retransmission timing is
//! *plausible* given the RTT distribution of legitimate flows — attackers
//! emitting fake retransmissions at arbitrary times violate the RTO
//! back-off pattern this module encodes.

use dui_netsim::time::SimDuration;

/// Jacobson/Karn smoothed RTT estimator with RFC 6298 RTO computation and
/// exponential back-off.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff_exp: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// New estimator. `min_rto` bounds the computed RTO from below
    /// (RFC 6298 mandates 1 s, the [`RttEstimator::default`]; some modern
    /// stacks use ~200 ms).
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            backoff_exp: 0,
            min_rto,
            max_rto,
        }
    }

    /// Feed one RTT sample (must be from a never-retransmitted segment —
    /// Karn's rule — which the caller enforces).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
        self.backoff_exp = 0;
        self.recompute();
    }

    fn recompute(&mut self) {
        let base = match self.srtt {
            Some(srtt) => {
                let var4 = SimDuration::from_nanos(4 * self.rttvar.as_nanos());
                srtt + var4
            }
            None => self.rto,
        };
        let backed_off =
            SimDuration::from_nanos(base.as_nanos().saturating_mul(1u64 << self.backoff_exp));
        self.rto = backed_off.clamp(self.min_rto, self.max_rto);
    }

    /// An RTO expired: double the timeout (bounded by `max_rto`).
    pub fn on_timeout(&mut self) {
        self.backoff_exp = (self.backoff_exp + 1).min(16);
        self.recompute();
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Current smoothed RTT, if any sample was taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Raw state for checkpoint codecs (paired with
    /// [`RttEstimator::from_parts`]): `(srtt, rttvar, rto, backoff_exp,
    /// min_rto, max_rto)`, durations in nanoseconds.
    pub fn to_parts(&self) -> (Option<u64>, u64, u64, u32, u64, u64) {
        (
            self.srtt.map(|s| s.as_nanos()),
            self.rttvar.as_nanos(),
            self.rto.as_nanos(),
            self.backoff_exp,
            self.min_rto.as_nanos(),
            self.max_rto.as_nanos(),
        )
    }

    /// Restore from [`RttEstimator::to_parts`] output.
    pub fn from_parts(
        srtt: Option<u64>,
        rttvar: u64,
        rto: u64,
        backoff_exp: u32,
        min_rto: u64,
        max_rto: u64,
    ) -> Self {
        RttEstimator {
            srtt: srtt.map(SimDuration::from_nanos),
            rttvar: SimDuration::from_nanos(rttvar),
            rto: SimDuration::from_nanos(rto),
            backoff_exp,
            min_rto: SimDuration::from_nanos(min_rto),
            max_rto: SimDuration::from_nanos(max_rto),
        }
    }

    /// Fold the estimator state into `d`.
    pub fn state_digest(&self, d: &mut dui_stats::digest::StateDigest) {
        d.write_opt_u64(self.srtt.map(|s| s.as_nanos()));
        d.write_u64(self.rttvar.as_nanos());
        d.write_u64(self.rto.as_nanos());
        d.write_u32(self.backoff_exp);
        d.write_u64(self.min_rto.as_nanos());
        d.write_u64(self.max_rto.as_nanos());
    }
}

impl Default for RttEstimator {
    /// 1 s initial RTO and 1 s floor (both per RFC 6298), 60 s ceiling.
    ///
    /// The RFC floor matters for the §5 Blink countermeasure: with it,
    /// genuine failure-driven first retransmissions arrive ≥1 s after the
    /// last delivered segment, clearly separable from an attacker's
    /// sub-second keep-alive cadence.
    fn default() -> Self {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        );
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300ms
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.08).abs() < 0.001);
        // With zero variance the RFC 6298 1 s floor dominates.
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        );
        e.sample(SimDuration::from_millis(100)); // rto 300ms
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "capped at max");
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = RttEstimator::default();
        e.sample(SimDuration::from_millis(100));
        e.on_timeout();
        e.on_timeout();
        assert!(e.rto() > SimDuration::from_secs(1));
        e.sample(SimDuration::from_millis(100));
        assert!(e.rto() <= SimDuration::from_secs(1));
    }

    #[test]
    fn variance_raises_rto() {
        let floor = SimDuration::from_millis(50);
        let mut stable =
            RttEstimator::new(SimDuration::from_secs(1), floor, SimDuration::from_secs(60));
        let mut jittery =
            RttEstimator::new(SimDuration::from_secs(1), floor, SimDuration::from_secs(60));
        for i in 0..50 {
            stable.sample(SimDuration::from_millis(100));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn initial_rto_used_before_samples() {
        let e = RttEstimator::default();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }
}
