//! Generational struct-of-arrays storage for per-flow TCP state.
//!
//! [`crate::host::TcpHost`] used to hold a `HashMap<FlowKey, Endpoint>` of
//! by-value connection structs: every lookup hashed a 13-byte key, every
//! digest sorted the keys, and a million flows meant a million scattered
//! heap boxes. The pool applies the `PacketArena` pattern (dui-netsim) to
//! flows instead of packets: each column of connection state — congestion
//! window, RTT estimator, sequence space, retransmission queue, lifecycle
//! metadata — lives in its own `Vec`, and an 8-byte generational
//! [`FlowRef`] handle addresses one flow across all columns.
//!
//! Slots are recycled through an intrusive free list, so connection churn
//! (SYN floods, short flows) allocates nothing in steady state. Generations
//! make recycling safe: freeing a slot bumps its generation, and every
//! accessor checks the handle's generation first — a stale [`FlowRef`]
//! (e.g. a timer that fires after its flow was evicted) is a typed
//! [`StaleFlowRef`] error, never a silent read of whichever flow now
//! occupies the slot.
//!
//! The protocol logic itself is *not* duplicated here: the pool assembles
//! borrowed `SenderCols`/`RecvCols` views over its columns and calls
//! the same `conn.rs` implementation the standalone [`crate::TcpSender`] /
//! [`crate::TcpReceiver`] use.

use crate::conn::{
    digest_recv_cols, digest_sender_cols, RcvState, RecvCols, RtxQueue, SegmentRecord, SenderCols,
    SenderMeta, SenderStats, SeqState, ReceiverStats, TcpSenderConfig, TcpState,
};
use crate::reno::Reno;
use crate::rtt::RttEstimator;
use dui_netsim::packet::{Addr, FlowKey, Packet, Proto};
use dui_netsim::time::{SimDuration, SimTime};
use dui_stats::digest::StateDigest;
use std::fmt;

/// Sentinel for "no next free slot" in the intrusive free list.
const NIL: u32 = u32::MAX;

/// An 8-byte generational handle to a flow stored in a [`FlowPool`].
///
/// Handles are created by the `insert_*` constructors and become invalid
/// (stale) when the flow is freed with [`FlowPool::free`]. All accessors
/// verify the generation, so a stale handle can be *detected* but never
/// dereferenced to the wrong flow. Handles round-trip through a `u64`
/// ([`FlowRef::as_u64`]) so hosts can encode them into timer tokens; a
/// token that outlives its flow fails the generation check on decode,
/// which is exactly how stale timer wakes are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowRef {
    idx: u32,
    gen: u32,
}

impl FlowRef {
    /// Slot index (diagnostics and digests only).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Slot generation this handle was issued under.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Pack into a `u64` (`gen << 32 | idx`) for timer tokens.
    pub fn as_u64(&self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.idx)
    }

    /// Inverse of [`FlowRef::as_u64`]. The result is only as trustworthy
    /// as its source — every pool accessor re-checks the generation.
    pub fn from_u64(v: u64) -> FlowRef {
        FlowRef {
            idx: v as u32,
            gen: (v >> 32) as u32,
        }
    }
}

impl fmt::Display for FlowRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}g{}", self.idx, self.gen)
    }
}

/// Typed error for an access through an out-of-date [`FlowRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleFlowRef {
    /// Slot index the handle pointed at.
    pub idx: u32,
    /// Generation the handle was issued under.
    pub expected_gen: u32,
    /// Generation the slot is at now.
    pub current_gen: u32,
    /// True if the slot is currently vacant (false: recycled and occupied
    /// by a different flow).
    pub vacant: bool,
}

impl fmt::Display for StaleFlowRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale flow ref: slot {} gen {} is {} at gen {}",
            self.idx,
            self.expected_gen,
            if self.vacant { "vacant" } else { "recycled" },
            self.current_gen
        )
    }
}

impl std::error::Error for StaleFlowRef {}

/// What occupies a pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Active-open data sender.
    Sender,
    /// Passive data receiver (with or without the handshake lifecycle).
    Receiver,
}

/// Slot occupancy column: a live endpoint or a link in the free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Free { next_free: u32 },
    Sender,
    Receiver,
}

/// Generational struct-of-arrays pool of TCP connection state.
///
/// Every column is indexed by slot; a slot holds either a sender (its
/// sender columns are meaningful) or a receiver (its `rcv` column is).
/// The unused columns of a slot sit at their cheap `Default` values.
#[derive(Debug, Default)]
pub struct FlowPool {
    gens: Vec<u32>,
    kind: Vec<SlotKind>,
    keys: Vec<FlowKey>,
    // Sender columns.
    cfgs: Vec<TcpSenderConfig>,
    cc: Vec<Reno>,
    rtt: Vec<RttEstimator>,
    seq: Vec<SeqState>,
    rtx: Vec<RtxQueue>,
    meta: Vec<SenderMeta>,
    sstats: Vec<SenderStats>,
    // Receiver column.
    rcv: Vec<RcvState>,
    rstats: Vec<ReceiverStats>,
    // Shared.
    out: Vec<Vec<Packet>>,
    free_head: u32,
    live: usize,
    high_water: usize,
    recycled: u64,
}

impl FlowPool {
    /// Empty pool.
    pub fn new() -> Self {
        FlowPool {
            free_head: NIL,
            ..FlowPool::default()
        }
    }

    fn placeholder_key() -> FlowKey {
        FlowKey::tcp(Addr(0), 0, Addr(0), 0)
    }

    /// Claim a slot (recycling LIFO) and return `(idx, gen)`.
    fn claim(&mut self) -> (u32, u32) {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if self.free_head != NIL {
            let idx = self.free_head;
            let next_free = match self.kind[idx as usize] {
                SlotKind::Free { next_free } => next_free,
                _ => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            self.recycled += 1;
            (idx, self.gens[idx as usize])
        } else {
            let idx = self.gens.len() as u32;
            assert!(idx != NIL, "flow pool exhausted u32 index space");
            self.gens.push(0);
            self.kind.push(SlotKind::Free { next_free: NIL });
            self.keys.push(Self::placeholder_key());
            self.cfgs.push(TcpSenderConfig::default());
            self.cc.push(Reno::default());
            self.rtt.push(RttEstimator::default());
            self.seq.push(SeqState::default());
            self.rtx.push(RtxQueue::default());
            self.meta.push(SenderMeta::default());
            self.sstats.push(SenderStats::default());
            self.rcv.push(RcvState::default());
            self.rstats.push(ReceiverStats::default());
            self.out.push(Vec::new());
            (idx, 0)
        }
    }

    /// Store a new sender for `key` (ISN `isn`), returning its handle.
    pub fn insert_sender(&mut self, key: FlowKey, cfg: TcpSenderConfig, isn: u32) -> FlowRef {
        let (idx, gen) = self.claim();
        let i = idx as usize;
        self.kind[i] = SlotKind::Sender;
        self.keys[i] = key;
        self.cc[i] = Reno::new(cfg.initial_cwnd);
        self.cfgs[i] = cfg;
        self.rtt[i] = RttEstimator::default();
        self.seq[i] = SeqState::new(isn);
        self.meta[i] = SenderMeta::default();
        self.sstats[i] = SenderStats::default();
        FlowRef { idx, gen }
    }

    /// Store a new handshake-less receiver expecting first byte `isn`.
    pub fn insert_receiver(&mut self, key: FlowKey, isn: u32) -> FlowRef {
        let (idx, gen) = self.claim();
        let i = idx as usize;
        self.kind[i] = SlotKind::Receiver;
        self.keys[i] = key;
        self.rcv[i] = RcvState::new(isn);
        self.rstats[i] = ReceiverStats::default();
        FlowRef { idx, gen }
    }

    /// Store a new passive-open (LISTEN) receiver for `key`.
    pub fn insert_listener(&mut self, key: FlowKey) -> FlowRef {
        let (idx, gen) = self.claim();
        let i = idx as usize;
        self.kind[i] = SlotKind::Receiver;
        self.keys[i] = key;
        self.rcv[i] = RcvState::listen();
        self.rstats[i] = ReceiverStats::default();
        FlowRef { idx, gen }
    }

    fn stale(&self, r: FlowRef) -> StaleFlowRef {
        match (self.gens.get(r.idx as usize), self.kind.get(r.idx as usize)) {
            (Some(gen), Some(kind)) => StaleFlowRef {
                idx: r.idx,
                expected_gen: r.gen,
                current_gen: *gen,
                vacant: matches!(kind, SlotKind::Free { .. }),
            },
            _ => StaleFlowRef {
                idx: r.idx,
                expected_gen: r.gen,
                current_gen: 0,
                vacant: true,
            },
        }
    }

    /// Generation-check `r`; `Ok(idx)` only for a live, matching slot.
    fn check(&self, r: FlowRef) -> Result<usize, StaleFlowRef> {
        let i = r.idx as usize;
        match (self.gens.get(i), self.kind.get(i)) {
            (Some(gen), Some(kind))
                if *gen == r.gen && !matches!(kind, SlotKind::Free { .. }) =>
            {
                Ok(i)
            }
            _ => Err(self.stale(r)),
        }
    }

    /// What kind of endpoint `r` addresses.
    pub fn kind(&self, r: FlowRef) -> Result<FlowKind, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(match self.kind[i] {
            SlotKind::Sender => FlowKind::Sender,
            SlotKind::Receiver => FlowKind::Receiver,
            SlotKind::Free { .. } => unreachable!("check() rejects free slots"),
        })
    }

    /// Forward-direction flow key of `r`.
    pub fn key(&self, r: FlowRef) -> Result<FlowKey, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(self.keys[i])
    }

    fn check_kind(&self, r: FlowRef, want: SlotKind) -> Result<usize, StaleFlowRef> {
        let i = self.check(r)?;
        assert_eq!(
            self.kind[i], want,
            "flow {r} is not a {want:?} (host dispatch bug)"
        );
        Ok(i)
    }

    /// Borrowed sender view over slot `r` (panics if `r` is a receiver —
    /// the host's by-key dispatch guarantees the kind).
    pub(crate) fn sender_cols(&mut self, r: FlowRef) -> Result<SenderCols<'_>, StaleFlowRef> {
        let i = self.check_kind(r, SlotKind::Sender)?;
        Ok(SenderCols {
            key: self.keys[i],
            cfg: &self.cfgs[i],
            cc: &mut self.cc[i],
            rtt: &mut self.rtt[i],
            seq: &mut self.seq[i],
            rtx: &mut self.rtx[i],
            meta: &mut self.meta[i],
            out: &mut self.out[i],
            stats: &mut self.sstats[i],
        })
    }

    /// Borrowed receiver view over slot `r`.
    pub(crate) fn recv_cols(&mut self, r: FlowRef) -> Result<RecvCols<'_>, StaleFlowRef> {
        let i = self.check_kind(r, SlotKind::Receiver)?;
        Ok(RecvCols {
            key: self.keys[i],
            rcv: &mut self.rcv[i],
            out: &mut self.out[i],
            stats: &mut self.rstats[i],
        })
    }

    /// Begin transmitting on sender `r`.
    pub fn on_start(&mut self, r: FlowRef, now: SimTime) -> Result<(), StaleFlowRef> {
        self.sender_cols(r)?.on_start(now);
        Ok(())
    }

    /// Deliver a segment to the endpoint behind `r`.
    pub fn on_segment(&mut self, r: FlowRef, now: SimTime, pkt: &Packet) -> Result<(), StaleFlowRef> {
        match self.kind(r)? {
            FlowKind::Sender => self.sender_cols(r)?.on_segment(now, pkt),
            FlowKind::Receiver => self.recv_cols(r)?.on_segment(now, pkt),
        }
        Ok(())
    }

    /// Clock tick for sender `r` (receivers are purely reactive).
    pub fn on_tick(&mut self, r: FlowRef, now: SimTime) -> Result<(), StaleFlowRef> {
        if self.kind(r)? == FlowKind::Sender {
            self.sender_cols(r)?.on_tick(now);
        }
        Ok(())
    }

    /// Drain outgoing packets of `r`.
    pub fn take_out(&mut self, r: FlowRef) -> Result<Vec<Packet>, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(std::mem::take(&mut self.out[i]))
    }

    /// Earliest time sender `r` needs a tick (`None` for receivers).
    pub fn next_event_time(&self, r: FlowRef) -> Result<Option<SimTime>, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(match self.kind[i] {
            SlotKind::Sender => crate::conn::sender_next_event_time(&self.meta[i]),
            _ => None,
        })
    }

    /// Lifecycle state of `r`.
    pub fn state(&self, r: FlowRef) -> Result<TcpState, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(match self.kind[i] {
            SlotKind::Sender => self.meta[i].state,
            SlotKind::Receiver => self.rcv[i].state,
            SlotKind::Free { .. } => unreachable!("check() rejects free slots"),
        })
    }

    /// Did the endpoint behind `r` finish (sender fully closed, receiver
    /// consumed the FIN)?
    pub fn is_done(&self, r: FlowRef) -> Result<bool, StaleFlowRef> {
        let i = self.check(r)?;
        Ok(match self.kind[i] {
            SlotKind::Sender => self.meta[i].state == TcpState::Closed,
            SlotKind::Receiver => self.rcv[i].done,
            SlotKind::Free { .. } => unreachable!("check() rejects free slots"),
        })
    }

    /// Sender statistics of `r`.
    pub fn sender_stats(&self, r: FlowRef) -> Result<SenderStats, StaleFlowRef> {
        let i = self.check_kind(r, SlotKind::Sender)?;
        Ok(self.sstats[i])
    }

    /// Receiver statistics of `r`.
    pub fn receiver_stats(&self, r: FlowRef) -> Result<ReceiverStats, StaleFlowRef> {
        let i = self.check_kind(r, SlotKind::Receiver)?;
        Ok(self.rstats[i])
    }

    /// Override receiver `r`'s advertised window.
    pub fn set_advertised_window(&mut self, r: FlowRef, w: u32) -> Result<(), StaleFlowRef> {
        let i = self.check_kind(r, SlotKind::Receiver)?;
        self.rcv[i].advertised_window = w;
        Ok(())
    }

    /// Free the flow behind `r`, recycling its slot (LIFO). The handle
    /// (and any copy of it, e.g. inside a pending timer token) is stale
    /// afterwards. Buffered allocations (retransmission queue, reassembly
    /// map, output queue) are cleared in place so churn reuses them.
    pub fn free(&mut self, r: FlowRef) -> Result<(), StaleFlowRef> {
        let i = self.check(r)?;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.kind[i] = SlotKind::Free {
            next_free: self.free_head,
        };
        self.free_head = r.idx;
        self.live -= 1;
        self.keys[i] = Self::placeholder_key();
        self.cfgs[i] = TcpSenderConfig::default();
        self.cc[i] = Reno::default();
        self.rtt[i] = RttEstimator::default();
        self.seq[i] = SeqState::default();
        self.rtx[i] = RtxQueue::default();
        self.meta[i] = SenderMeta::default();
        self.sstats[i] = SenderStats::default();
        self.rcv[i] = RcvState::default();
        self.rstats[i] = ReceiverStats::default();
        self.out[i].clear();
        Ok(())
    }

    /// Live handles in slot order — the canonical iteration order for
    /// digests and aggregate accounting (no key sorting required).
    pub fn iter_refs(&self) -> impl Iterator<Item = FlowRef> + '_ {
        self.kind
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, SlotKind::Free { .. }))
            .map(|(i, _)| FlowRef {
                idx: i as u32,
                gen: self.gens[i],
            })
    }

    /// Number of live flows.
    pub fn live(&self) -> usize {
        self.live
    }

    /// True if no flows are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots allocated (live + vacant).
    pub fn capacity(&self) -> usize {
        self.gens.len()
    }

    /// Highest simultaneous live count seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of inserts served by recycling a vacant slot.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Fold every live flow into `d` in slot order (handle order *is* the
    /// canonical order — this is what retired the sort-keys-then-iterate
    /// dance the HashMap layout forced on `TcpHost::state_digest`).
    pub fn state_digest(&self, d: &mut StateDigest) {
        d.write_len(self.live);
        for (i, kind) in self.kind.iter().enumerate() {
            match kind {
                SlotKind::Free { .. } => continue,
                SlotKind::Sender => {
                    d.write_u32(i as u32);
                    d.write_u32(self.gens[i]);
                    d.write_u8(0);
                    digest_sender_cols(
                        d,
                        &self.keys[i],
                        &self.cfgs[i],
                        &self.cc[i],
                        &self.rtt[i],
                        &self.seq[i],
                        &self.rtx[i],
                        &self.meta[i],
                        &self.out[i],
                        &self.sstats[i],
                    );
                }
                SlotKind::Receiver => {
                    d.write_u32(i as u32);
                    d.write_u32(self.gens[i]);
                    d.write_u8(1);
                    digest_recv_cols(d, &self.keys[i], &self.rcv[i], &self.out[i], &self.rstats[i]);
                }
            }
        }
        d.write_u64(self.recycled);
        d.write_usize(self.high_water);
    }

    /// Serialize the whole pool for checkpointing. Fails if any output
    /// queue is undrained (hosts drain after every event, so a checkpoint
    /// boundary never sees buffered packets — serializing them would drag
    /// the full packet codec in here for a case that cannot occur).
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        let mut b = Vec::new();
        put_u32(&mut b, self.gens.len() as u32);
        for i in 0..self.gens.len() {
            if !self.out[i].is_empty() {
                return Err(format!("flow slot {i} has undrained output"));
            }
            put_u32(&mut b, self.gens[i]);
            match self.kind[i] {
                SlotKind::Free { next_free } => {
                    b.push(0);
                    put_u32(&mut b, next_free);
                }
                SlotKind::Sender => {
                    b.push(1);
                    put_key(&mut b, &self.keys[i]);
                    put_cfg(&mut b, &self.cfgs[i]);
                    let (cwnd, ssthresh) = self.cc[i].to_parts();
                    put_u64(&mut b, cwnd.to_bits());
                    put_u64(&mut b, ssthresh.to_bits());
                    let (srtt, rttvar, rto, backoff, min_rto, max_rto) = self.rtt[i].to_parts();
                    put_opt_u64(&mut b, srtt);
                    put_u64(&mut b, rttvar);
                    put_u64(&mut b, rto);
                    put_u32(&mut b, backoff);
                    put_u64(&mut b, min_rto);
                    put_u64(&mut b, max_rto);
                    let s = &self.seq[i];
                    put_u32(&mut b, s.isn);
                    put_u32(&mut b, s.snd_una);
                    put_u32(&mut b, s.snd_nxt);
                    put_u64(&mut b, s.app_sent);
                    put_opt_u32(&mut b, s.fin_seq);
                    put_opt_u32(&mut b, s.syn_seq);
                    put_opt_u32(&mut b, s.recovery_until);
                    let q = &self.rtx[i];
                    put_u32(&mut b, q.len() as u32);
                    for (seq, rec) in q.iter() {
                        put_u32(&mut b, seq);
                        put_u64(&mut b, rec.sent_at.0);
                        b.push(u8::from(rec.retransmitted));
                        put_u32(&mut b, rec.len);
                    }
                    let m = &self.meta[i];
                    put_u64(&mut b, m.started_at.0);
                    put_u32(&mut b, m.dupacks);
                    put_opt_u64(&mut b, m.rto_deadline.map(|t| t.0));
                    put_opt_u64(&mut b, m.pace_deadline.map(|t| t.0));
                    put_opt_u64(&mut b, m.timewait_deadline.map(|t| t.0));
                    put_u32(&mut b, m.peer_rwnd);
                    b.push(m.state.code());
                    let st = &self.sstats[i];
                    put_u64(&mut b, st.bytes_acked);
                    put_u64(&mut b, st.segments_sent);
                    put_u64(&mut b, st.retransmissions);
                    put_u64(&mut b, st.fast_retransmits);
                    put_u64(&mut b, st.timeouts);
                    put_opt_u64(&mut b, st.completed_at.map(|t| t.0));
                }
                SlotKind::Receiver => {
                    b.push(2);
                    put_key(&mut b, &self.keys[i]);
                    let rv = &self.rcv[i];
                    put_u32(&mut b, rv.rcv_nxt);
                    put_u32(&mut b, rv.ooo.len() as u32);
                    for (seq, len) in &rv.ooo {
                        put_u32(&mut b, *seq);
                        put_u32(&mut b, *len);
                    }
                    put_opt_u32(&mut b, rv.fin_seq);
                    b.push(u8::from(rv.done));
                    put_u32(&mut b, rv.advertised_window);
                    b.push(rv.state.code());
                    b.push(u8::from(rv.handshake));
                    b.push(u8::from(rv.our_fin_sent));
                    let st = &self.rstats[i];
                    put_u64(&mut b, st.bytes_delivered);
                    put_u64(&mut b, st.duplicate_segments);
                    put_u64(&mut b, st.out_of_order_segments);
                    put_opt_u64(&mut b, st.finished_at.map(|t| t.0));
                }
            }
        }
        put_u32(&mut b, self.free_head);
        put_u64(&mut b, self.live as u64);
        put_u64(&mut b, self.high_water as u64);
        put_u64(&mut b, self.recycled);
        Ok(b)
    }

    /// Restore a pool serialized with [`FlowPool::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<FlowPool, String> {
        let mut at = 0usize;
        let cap = get_u32(bytes, &mut at)? as usize;
        let mut p = FlowPool::new();
        for _ in 0..cap {
            let gen = get_u32(bytes, &mut at)?;
            let tag = get_u8(bytes, &mut at)?;
            p.gens.push(gen);
            p.keys.push(Self::placeholder_key());
            p.cfgs.push(TcpSenderConfig::default());
            p.cc.push(Reno::default());
            p.rtt.push(RttEstimator::default());
            p.seq.push(SeqState::default());
            p.rtx.push(RtxQueue::default());
            p.meta.push(SenderMeta::default());
            p.sstats.push(SenderStats::default());
            p.rcv.push(RcvState::default());
            p.rstats.push(ReceiverStats::default());
            p.out.push(Vec::new());
            let i = p.gens.len() - 1;
            match tag {
                0 => {
                    let next_free = get_u32(bytes, &mut at)?;
                    p.kind.push(SlotKind::Free { next_free });
                }
                1 => {
                    p.kind.push(SlotKind::Sender);
                    p.keys[i] = get_key(bytes, &mut at)?;
                    p.cfgs[i] = get_cfg(bytes, &mut at)?;
                    let cwnd = f64::from_bits(get_u64(bytes, &mut at)?);
                    let ssthresh = f64::from_bits(get_u64(bytes, &mut at)?);
                    p.cc[i] = Reno::from_parts(cwnd, ssthresh);
                    let srtt = get_opt_u64(bytes, &mut at)?;
                    let rttvar = get_u64(bytes, &mut at)?;
                    let rto = get_u64(bytes, &mut at)?;
                    let backoff = get_u32(bytes, &mut at)?;
                    let min_rto = get_u64(bytes, &mut at)?;
                    let max_rto = get_u64(bytes, &mut at)?;
                    p.rtt[i] = RttEstimator::from_parts(srtt, rttvar, rto, backoff, min_rto, max_rto);
                    let s = &mut p.seq[i];
                    s.isn = get_u32(bytes, &mut at)?;
                    s.snd_una = get_u32(bytes, &mut at)?;
                    s.snd_nxt = get_u32(bytes, &mut at)?;
                    s.app_sent = get_u64(bytes, &mut at)?;
                    s.fin_seq = get_opt_u32(bytes, &mut at)?;
                    s.syn_seq = get_opt_u32(bytes, &mut at)?;
                    s.recovery_until = get_opt_u32(bytes, &mut at)?;
                    let qlen = get_u32(bytes, &mut at)?;
                    for _ in 0..qlen {
                        let seq = get_u32(bytes, &mut at)?;
                        let sent_at = SimTime(get_u64(bytes, &mut at)?);
                        let retransmitted = get_u8(bytes, &mut at)? != 0;
                        let len = get_u32(bytes, &mut at)?;
                        p.rtx[i].push(
                            seq,
                            SegmentRecord {
                                sent_at,
                                retransmitted,
                                len,
                            },
                        );
                    }
                    let m = &mut p.meta[i];
                    m.started_at = SimTime(get_u64(bytes, &mut at)?);
                    m.dupacks = get_u32(bytes, &mut at)?;
                    m.rto_deadline = get_opt_u64(bytes, &mut at)?.map(SimTime);
                    m.pace_deadline = get_opt_u64(bytes, &mut at)?.map(SimTime);
                    m.timewait_deadline = get_opt_u64(bytes, &mut at)?.map(SimTime);
                    m.peer_rwnd = get_u32(bytes, &mut at)?;
                    m.state = TcpState::from_code(get_u8(bytes, &mut at)?)
                        .ok_or_else(|| "bad sender state code".to_string())?;
                    let st = &mut p.sstats[i];
                    st.bytes_acked = get_u64(bytes, &mut at)?;
                    st.segments_sent = get_u64(bytes, &mut at)?;
                    st.retransmissions = get_u64(bytes, &mut at)?;
                    st.fast_retransmits = get_u64(bytes, &mut at)?;
                    st.timeouts = get_u64(bytes, &mut at)?;
                    st.completed_at = get_opt_u64(bytes, &mut at)?.map(SimTime);
                }
                2 => {
                    p.kind.push(SlotKind::Receiver);
                    p.keys[i] = get_key(bytes, &mut at)?;
                    let rv = &mut p.rcv[i];
                    rv.rcv_nxt = get_u32(bytes, &mut at)?;
                    let olen = get_u32(bytes, &mut at)?;
                    for _ in 0..olen {
                        let seq = get_u32(bytes, &mut at)?;
                        let len = get_u32(bytes, &mut at)?;
                        rv.ooo.insert(seq, len);
                    }
                    rv.fin_seq = get_opt_u32(bytes, &mut at)?;
                    rv.done = get_u8(bytes, &mut at)? != 0;
                    rv.advertised_window = get_u32(bytes, &mut at)?;
                    rv.state = TcpState::from_code(get_u8(bytes, &mut at)?)
                        .ok_or_else(|| "bad receiver state code".to_string())?;
                    rv.handshake = get_u8(bytes, &mut at)? != 0;
                    rv.our_fin_sent = get_u8(bytes, &mut at)? != 0;
                    let st = &mut p.rstats[i];
                    st.bytes_delivered = get_u64(bytes, &mut at)?;
                    st.duplicate_segments = get_u64(bytes, &mut at)?;
                    st.out_of_order_segments = get_u64(bytes, &mut at)?;
                    st.finished_at = get_opt_u64(bytes, &mut at)?.map(SimTime);
                }
                t => return Err(format!("bad flow slot tag {t}")),
            }
        }
        p.free_head = get_u32(bytes, &mut at)?;
        p.live = get_u64(bytes, &mut at)? as usize;
        p.high_water = get_u64(bytes, &mut at)? as usize;
        p.recycled = get_u64(bytes, &mut at)?;
        if at != bytes.len() {
            return Err(format!(
                "trailing bytes in flow pool state: {} of {}",
                at,
                bytes.len()
            ));
        }
        Ok(p)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
    }
}

fn put_key(out: &mut Vec<u8>, key: &FlowKey) {
    put_u32(out, key.src.0);
    put_u32(out, key.dst.0);
    out.extend_from_slice(&key.sport.to_le_bytes());
    out.extend_from_slice(&key.dport.to_le_bytes());
    out.push(key.proto.code());
}

fn put_cfg(out: &mut Vec<u8>, cfg: &TcpSenderConfig) {
    put_u32(out, cfg.mss);
    put_opt_u64(out, cfg.total_bytes);
    put_opt_u64(out, cfg.app_rate);
    put_u64(out, cfg.initial_cwnd.to_bits());
    out.push(u8::from(cfg.handshake));
    put_u64(out, cfg.time_wait.as_nanos());
}

fn get_u8(b: &[u8], at: &mut usize) -> Result<u8, String> {
    let v = *b.get(*at).ok_or("truncated flow pool state")?;
    *at += 1;
    Ok(v)
}

fn get_u16(b: &[u8], at: &mut usize) -> Result<u16, String> {
    let s = b
        .get(*at..*at + 2)
        .ok_or("truncated flow pool state")?;
    *at += 2;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn get_u32(b: &[u8], at: &mut usize) -> Result<u32, String> {
    let s = b
        .get(*at..*at + 4)
        .ok_or("truncated flow pool state")?;
    *at += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn get_u64(b: &[u8], at: &mut usize) -> Result<u64, String> {
    let s = b
        .get(*at..*at + 8)
        .ok_or("truncated flow pool state")?;
    *at += 8;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

fn get_opt_u64(b: &[u8], at: &mut usize) -> Result<Option<u64>, String> {
    match get_u8(b, at)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(b, at)?)),
        t => Err(format!("bad option tag {t}")),
    }
}

fn get_opt_u32(b: &[u8], at: &mut usize) -> Result<Option<u32>, String> {
    match get_u8(b, at)? {
        0 => Ok(None),
        1 => Ok(Some(get_u32(b, at)?)),
        t => Err(format!("bad option tag {t}")),
    }
}

fn get_key(b: &[u8], at: &mut usize) -> Result<FlowKey, String> {
    let src = Addr(get_u32(b, at)?);
    let dst = Addr(get_u32(b, at)?);
    let sport = get_u16(b, at)?;
    let dport = get_u16(b, at)?;
    let proto = Proto::from_code(get_u8(b, at)?).ok_or("bad proto code")?;
    if proto != Proto::Tcp {
        return Err("flow pool key is not TCP".to_string());
    }
    Ok(FlowKey::tcp(src, sport, dst, dport))
}

fn get_cfg(b: &[u8], at: &mut usize) -> Result<TcpSenderConfig, String> {
    Ok(TcpSenderConfig {
        mss: get_u32(b, at)?,
        total_bytes: get_opt_u64(b, at)?,
        app_rate: get_opt_u64(b, at)?,
        initial_cwnd: f64::from_bits(get_u64(b, at)?),
        handshake: get_u8(b, at)? != 0,
        time_wait: SimDuration::from_nanos(get_u64(b, at)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(Addr::new(10, 0, 0, 1), sport, Addr::new(10, 0, 0, 2), 80)
    }

    fn cfg(total: u64) -> TcpSenderConfig {
        TcpSenderConfig {
            total_bytes: Some(total),
            ..Default::default()
        }
    }

    #[test]
    fn insert_start_take_free_round_trip() {
        let mut p = FlowPool::new();
        let r = p.insert_sender(key(1000), cfg(1460), 1);
        assert_eq!(p.live(), 1);
        assert_eq!(p.kind(r).unwrap(), FlowKind::Sender);
        p.on_start(r, SimTime::ZERO).unwrap();
        // Bounded flows emit their data followed by a FIN.
        let pkts = p.take_out(r).unwrap();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].payload, 1460);
        assert!(pkts[1].tcp_flags().unwrap().fin);
        p.free(r).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn stale_after_free_is_typed_error() {
        let mut p = FlowPool::new();
        let r = p.insert_sender(key(1000), cfg(100), 1);
        p.free(r).unwrap();
        let err = p.on_tick(r, SimTime::ZERO).unwrap_err();
        assert_eq!(err.idx, r.index());
        assert_eq!(err.expected_gen, 0);
        assert_eq!(err.current_gen, 1);
        assert!(err.vacant);
        assert!(p.take_out(r).is_err());
        assert!(p.state(r).is_err());
        assert!(p.free(r).is_err());
    }

    #[test]
    fn recycled_slot_never_serves_old_handle() {
        let mut p = FlowPool::new();
        let r1 = p.insert_sender(key(1000), cfg(100), 1);
        p.free(r1).unwrap();
        let r2 = p.insert_receiver(key(2000), 1);
        assert_eq!(r1.index(), r2.index());
        assert_ne!(r1.generation(), r2.generation());
        let err = p.key(r1).unwrap_err();
        assert!(!err.vacant, "slot is occupied by a different flow");
        assert_eq!(err.current_gen, r2.generation());
        assert_eq!(p.key(r2).unwrap(), key(2000));
    }

    #[test]
    fn free_list_is_lifo_and_pool_does_not_grow() {
        let mut p = FlowPool::new();
        let refs: Vec<_> = (0..8)
            .map(|i| p.insert_sender(key(1000 + i), cfg(100), 1))
            .collect();
        assert_eq!(p.capacity(), 8);
        assert_eq!(p.high_water(), 8);
        for r in refs.iter().rev() {
            p.free(*r).unwrap();
        }
        for i in 0..8u32 {
            let r = p.insert_listener(key(5000 + i as u16));
            assert_eq!(r.index(), i, "LIFO recycling");
        }
        assert_eq!(p.capacity(), 8, "no growth under churn");
        assert_eq!(p.recycled(), 8);
    }

    #[test]
    fn ref_round_trips_through_u64() {
        let mut p = FlowPool::new();
        p.insert_sender(key(1), cfg(1), 1);
        p.free(FlowRef { idx: 0, gen: 0 }).unwrap();
        let r = p.insert_sender(key(2), cfg(1), 1);
        assert_eq!(FlowRef::from_u64(r.as_u64()), r);
        // A forged/stale token decodes, but every access rejects it.
        let stale = FlowRef::from_u64(FlowRef { idx: 0, gen: 0 }.as_u64());
        assert!(p.state(stale).is_err());
    }

    #[test]
    fn pool_runs_same_protocol_as_standalone() {
        // One lossless transfer driven through the pool must finish with
        // identical stats to the standalone TcpSender/TcpReceiver pair.
        let mut p = FlowPool::new();
        let s = p.insert_sender(key(1000), cfg(10_000), 1);
        let r = p.insert_receiver(key(1000), 1);
        p.on_start(s, SimTime::ZERO).unwrap();
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now = now + SimDuration::from_millis(10);
            let pkts = p.take_out(s).unwrap();
            for pkt in pkts {
                p.on_segment(r, now, &pkt).unwrap();
            }
            let acks = p.take_out(r).unwrap();
            for a in acks {
                p.on_segment(s, now, &a).unwrap();
            }
            if p.is_done(s).unwrap() {
                break;
            }
        }
        assert!(p.is_done(s).unwrap());
        assert_eq!(p.sender_stats(s).unwrap().bytes_acked, 10_000);
        assert_eq!(p.receiver_stats(r).unwrap().bytes_delivered, 10_000);
    }

    #[test]
    fn codec_round_trips_mid_transfer() {
        let mut p = FlowPool::new();
        let s = p.insert_sender(key(1000), cfg(100_000), 7);
        let l = p.insert_listener(key(2000));
        let dead = p.insert_receiver(key(3000), 1);
        p.free(dead).unwrap();
        p.on_start(s, SimTime::ZERO).unwrap();
        let _ = p.take_out(s).unwrap(); // drain before checkpoint
        let bytes = p.to_bytes().unwrap();
        let q = FlowPool::from_bytes(&bytes).unwrap();
        assert_eq!(q.live(), p.live());
        assert_eq!(q.capacity(), p.capacity());
        assert_eq!(q.recycled(), p.recycled());
        let mut d1 = StateDigest::new();
        let mut d2 = StateDigest::new();
        p.state_digest(&mut d1);
        q.state_digest(&mut d2);
        assert_eq!(d1.finish(), d2.finish(), "digest survives codec");
        assert_eq!(q.state(l).unwrap(), TcpState::Listen);
    }

    #[test]
    fn undrained_output_refuses_checkpoint() {
        let mut p = FlowPool::new();
        let s = p.insert_sender(key(1000), cfg(1460), 1);
        p.on_start(s, SimTime::ZERO).unwrap();
        assert!(p.to_bytes().is_err(), "output queue not drained");
    }

    #[test]
    fn display_formats() {
        let mut p = FlowPool::new();
        let r = p.insert_sender(key(1), cfg(1), 1);
        assert_eq!(format!("{r}"), "flow#0g0");
        p.free(r).unwrap();
        let err = p.state(r).unwrap_err();
        assert!(format!("{err}").contains("vacant"));
    }
}
