//! TCP Reno congestion control (slow start, congestion avoidance, fast
//! recovery entry) at segment granularity.
//!
//! This is the "hard-coded rules (e.g., cut rate by half on loss)" control
//! the PCC paper — and the HotNets'19 paper's §4.2 — contrast PCC against.

/// Reno congestion state. `cwnd` is in segments (fractional during
/// congestion avoidance).
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// New controller with the given initial window (segments).
    pub fn new(initial_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "cwnd must be at least one segment");
        Reno {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
        }
    }

    /// Current congestion window in whole segments (at least 1).
    pub fn cwnd_segments(&self) -> u32 {
        self.cwnd.max(1.0) as u32
    }

    /// Raw fractional window.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// In slow start?
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// One (new, non-duplicate) ACK for one segment arrived.
    pub fn on_ack(&mut self) {
        if self.in_slow_start() {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    /// Triple-duplicate-ACK loss: halve (fast recovery entry).
    pub fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    /// Retransmission timeout: collapse to one segment (RFC 5681).
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    /// Fold the congestion-control state into `d`.
    pub fn state_digest(&self, d: &mut dui_stats::digest::StateDigest) {
        d.write_f64(self.cwnd);
        d.write_f64(self.ssthresh);
    }

    /// Raw state for checkpoint codecs (paired with
    /// [`Reno::from_parts`]). `ssthresh` may be infinite.
    pub fn to_parts(&self) -> (f64, f64) {
        (self.cwnd, self.ssthresh)
    }

    /// Restore from [`Reno::to_parts`] output.
    pub fn from_parts(cwnd: f64, ssthresh: f64) -> Self {
        Reno { cwnd, ssthresh }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Reno::new(10.0) // RFC 6928 IW10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new(2.0);
        // One ACK per in-flight segment => +1 per ACK => doubling per RTT.
        for _ in 0..2 {
            r.on_ack();
        }
        assert_eq!(r.cwnd_segments(), 4);
        for _ in 0..4 {
            r.on_ack();
        }
        assert_eq!(r.cwnd_segments(), 8);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut r = Reno::new(10.0);
        r.on_fast_retransmit(); // ssthresh = 5, cwnd = 5 -> now in CA
        assert!(!r.in_slow_start());
        let start = r.cwnd();
        // cwnd ACKs ≈ one RTT => +1 segment.
        for _ in 0..(start as u32) {
            r.on_ack();
        }
        // cwnd-many ACKs give slightly less than +1 (harmonic sum), ~0.93.
        assert!((r.cwnd() - (start + 1.0)).abs() < 0.15);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut r = Reno::new(16.0);
        r.on_fast_retransmit();
        assert_eq!(r.cwnd_segments(), 8);
        assert_eq!(r.ssthresh(), 8.0);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut r = Reno::new(16.0);
        r.on_timeout();
        assert_eq!(r.cwnd_segments(), 1);
        assert_eq!(r.ssthresh(), 8.0);
        assert!(r.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_is_two() {
        let mut r = Reno::new(1.0);
        r.on_timeout();
        assert_eq!(r.ssthresh(), 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        Reno::new(0.0);
    }
}
