//! Deterministic parallel task runner for the experiment harness.
//!
//! Replicated experiments (the 50 Fig. 2 simulations, the `(tR, qm)`
//! sweep grid, the defense/fuzz ablations) are embarrassingly parallel:
//! every task is a pure function of its configuration and its seed. The
//! runner exploits that while keeping the output *bit-identical* to a
//! sequential run:
//!
//! 1. **Tasks are indexed.** The work is `f(0), f(1), …, f(n-1)`;
//!    results are collected and returned **in index order**, whatever
//!    order the worker threads finish in. Scheduling therefore cannot
//!    leak into results.
//! 2. **Seeds are derived, never shared.** A task must not pull from a
//!    shared RNG stream (the draw order would depend on scheduling).
//!    Instead each task derives its own seed from the master seed with
//!    [`task_seed`], and seeds a fresh generator from it.
//!
//! Together these give the harness guarantee that `--jobs N` and
//! `--jobs 1` produce byte-identical CSVs (enforced by
//! `crates/bench/tests/determinism.rs`).
//!
//! ```
//! use dui_bench::par;
//!
//! // Squares, computed on however many workers — order is by index.
//! let seq = par::run_indexed(8, 1, |i| i * i);
//! let par4 = par::run_indexed(8, 4, |i| i * i);
//! assert_eq!(seq, par4);
//! ```

use dui_core::stats::rng::mix64;

/// Derive the seed for task `index` from the experiment's `master` seed.
///
/// The derivation is `mix64(master, index)` — two rounds of splitmix64
/// finalization over the pair — so per-task seeds are decorrelated even
/// for adjacent indices and *documented*: any external implementation
/// can reproduce the seed of replicate `i` from the master seed printed
/// in the experiment header.
///
/// ```
/// use dui_bench::par::task_seed;
///
/// // Stable across releases: these values are part of the experiment
/// // artifact format.
/// assert_eq!(task_seed(1, 0), task_seed(1, 0));
/// assert_ne!(task_seed(1, 0), task_seed(1, 1));
/// assert_ne!(task_seed(1, 0), task_seed(2, 0));
/// ```
pub fn task_seed(master: u64, index: u64) -> u64 {
    mix64(master, index)
}

/// Number of worker threads to use when `--jobs` is not given: the
/// machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(0), …, f(tasks-1)` on up to `jobs` worker threads and return
/// the results **in index order**.
///
/// With `jobs <= 1` (or fewer than two tasks) the closure runs on the
/// calling thread, sequentially — the parallel path returns exactly the
/// same vector, it just finishes sooner. Worker threads claim indices
/// from a shared atomic counter (dynamic scheduling, so uneven task
/// costs still balance) and stash `(index, result)` pairs; the pairs
/// are re-assembled into index order before returning.
///
/// Panics in `f` propagate: if any worker panics, `run_indexed` panics.
pub fn run_indexed<T, F>(tasks: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Wall-clock attribution per task when the self-profiler is on
    // (`experiments --metrics`); a single relaxed atomic load otherwise.
    // Timing never feeds back into results, so determinism is untouched.
    let f = |i: usize| {
        if dui_core::telemetry::wallclock::is_enabled() {
            let t0 = std::time::Instant::now();
            let r = f(i);
            dui_core::telemetry::wallclock::record_task(
                "run_indexed",
                i,
                t0.elapsed().as_nanos() as u64,
            );
            r
        } else {
            f(i)
        }
    };
    if jobs <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let workers = jobs.min(tasks);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise the worker's panic payload on the caller's
                // thread instead of swallowing it behind a join error.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), tasks);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_regardless_of_jobs() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = run_indexed(37, jobs, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn uneven_task_costs_still_ordered() {
        // Early indices sleep longest: completion order is roughly the
        // reverse of index order, so this exercises the reassembly.
        let out = run_indexed(12, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((12 - i) as u64));
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn task_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| task_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        run_indexed(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
